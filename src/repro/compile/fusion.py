"""Block-diagonal fusion of many compiled lineage kernels into one artefact.

The batch scheduler of :mod:`repro.service.scheduler` collapses candidate
tuples sharing a formula skeleton into one group, but a request over a table
whose rows carry *distinct* constants (every generated tuple owns private
nulls multiplied by its own concrete values) still produces one skeleton
group per row -- and the per-group scheduler then launches one kernel
estimate per group.  At realistic epsilons an estimate is a few hundred
directions, so each launch is dominated by fixed costs: generator spawning,
tiny-matrix BLAS calls, Python dispatch.

:func:`fuse_formulas` stacks many groups' lowering artefacts block-diagonally
so a *single* kernel pass decides one Monte-Carlo round for every group at
once:

* exponent/coefficient tables are block-stacked -- the fused monomial matrix
  has ``sum(M_g)`` rows over ``sum(n_g)`` variable columns, declaring one
  ``(m, sum M) @ (sum M, sum A * width)`` profile operator;
* linear fast-path groups fuse their dense ``(n_g, A_g)`` matrices into one
  block-diagonal ``(sum n, sum A)`` matrix, keeping the one-matmul,
  two-way-select decision of the unfused kernel.  Both operators are
  *evaluated* block-wise (one small GEMM per group, scattered into the fused
  atom axis): off-diagonal entries are structural zeros, so the dense product
  would spend ``G``x the arithmetic computing exact no-ops -- everything
  after the GEMMs (thresholding, sign decisions, the program sweep) runs
  fused over the concatenated atom axis;
* boolean programs are concatenated with their atom columns shifted by the
  group's atom offset; the dominant flat shapes (one connective over plain
  atoms) collapse into a single counts matmul over all groups -- the "one
  program sweep" -- with the general stack machine as a per-group fallback.

**Bit-identity contract.**  Fused results must be bit-identical to the
per-group path, because the service's result cache and differential oracles
compare floats exactly.  Three properties deliver that:

1. groups are only fused with groups taking the *same* kernel branch
   (:func:`fusion_mode`), so every value is produced by the same arithmetic
   expression as the unfused kernel;
2. each group keeps its own direction block (drawn from its own
   digest-spawned stream -- sampling is never fused, only deciding), and the
   block-wise evaluation feeds it to *the same GEMM call* the unfused kernel
   makes -- the profile values are bit-identical by construction, and every
   step after them (thresholds, sign decisions, the 0/1 counts sweep, whose
   small-integer sums are exact in float64 under any association) is
   elementwise per atom or per group;
3. degree padding in the fused profile tensor adds all-zero columns, which
   can never become the leading significant degree.

The property-based differential suite asserts the contract end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.compile.kernels import CompiledFormula
from repro.constraints.asymptotic import RELATIVE_ZERO_EPS

#: The two kernel branches of ``asymptotic_truth_batch``; fusing across
#: branches would mix arithmetic expressions and break bit-identity.
FUSION_MODES = ("linear", "general")


class FusionError(ValueError):
    """Raised when a set of compiled formulas cannot be fused together."""


def fusion_mode(compiled: CompiledFormula) -> str:
    """Which fused batch a compiled formula may join.

    Mirrors the branch predicate of
    :meth:`CompiledFormula.asymptotic_truth_batch` exactly: the linear fast
    path handles linear tables of width 2 (degrees 0 and 1); everything else
    -- higher degrees, constant-only atoms, atom-free constants -- runs the
    general profile sweep.
    """
    table = compiled.table
    if table.num_atoms and table.is_linear and table.max_degree + 1 == 2:
        return "linear"
    return "general"


@dataclass(frozen=True)
class FusedFormula:
    """Many compiled formulas stacked into one block-diagonal kernel.

    ``asymptotic_truth_batch`` takes one direction block *per group* (each
    drawn from that group's own stream) and returns an ``(m, G)`` decision
    matrix whose column ``g`` is bit-identical to
    ``compiled[g].asymptotic_truth_batch(blocks[g])``.
    """

    compiled: tuple[CompiledFormula, ...]
    mode: str
    #: Per-group ambient dimensions (``dimensions[g] == blocks[g].shape[1]``).
    dimensions: tuple[int, ...]
    #: Prefix offsets into the fused variable axis, length ``G + 1``.
    variable_offsets: np.ndarray
    #: Prefix offsets into the fused atom axis, length ``G + 1``.
    atom_offsets: np.ndarray
    #: Fused per-atom decision codes / zero-profile truths, ``(sum A,)``.
    sign_codes: np.ndarray
    zero_truth: np.ndarray
    #: Linear mode: block-diagonal ``(sum n, sum A)`` matrix and ``(sum A,)``
    #: constants; ``None`` in general mode.
    linear_matrix: Optional[np.ndarray]
    linear_constant: Optional[np.ndarray]
    #: General mode: fused profile width (``max_g (D_g + 1)``), prefix
    #: offsets into the fused monomial axis, and the block-stacked
    #: ``(sum M, sum A * width)`` profile selector; ``None``/empty otherwise.
    width: int
    monomial_offsets: np.ndarray
    profile_selector: Optional[np.ndarray]
    #: The fused program sweep: ``sweep_selector`` is ``(sum A, K)`` with a
    #: unit entry per (atom, sweep column), ``sweep_required[k]`` is the
    #: true-atom count group ``sweep_groups[k]`` needs (its arity for "and",
    #: 1 for "or"/"atom").  Groups not expressible as one connective over
    #: plain atoms fall back to their own stack machine.
    sweep_selector: Optional[np.ndarray]
    sweep_required: Optional[np.ndarray]
    sweep_groups: tuple[int, ...]
    fallback_groups: tuple[int, ...]

    @property
    def num_groups(self) -> int:
        return len(self.compiled)

    @property
    def num_atoms(self) -> int:
        return int(self.atom_offsets[-1])

    @property
    def num_monomials(self) -> int:
        return int(self.monomial_offsets[-1])

    def asymptotic_truth_batch(self, blocks: Sequence[np.ndarray]) -> np.ndarray:
        """Decide one Monte-Carlo round for every fused group at once.

        ``blocks[g]`` is the ``(m, n_g)`` direction block of group ``g``
        (all groups share the round's ``m``); the result is ``(m, G)``.
        """
        blocks = self._check_blocks(blocks)
        count = blocks[0].shape[0] if blocks else 0
        truths = self._atom_truths(blocks, count)
        return self._run_programs(truths, count)

    # -- internals ---------------------------------------------------------

    def _check_blocks(self, blocks: Sequence[np.ndarray]) -> list[np.ndarray]:
        if len(blocks) != self.num_groups:
            raise FusionError(
                f"expected {self.num_groups} direction blocks, got {len(blocks)}")
        checked = []
        count = None
        for index, block in enumerate(blocks):
            block = np.asarray(block, dtype=float)
            if block.ndim != 2 or block.shape[1] != self.dimensions[index]:
                raise FusionError(
                    f"block {index} must have shape (m, {self.dimensions[index]}), "
                    f"got {block.shape}")
            if count is None:
                count = block.shape[0]
            elif block.shape[0] != count:
                raise FusionError(
                    f"block {index} has {block.shape[0]} rows, expected {count}")
            checked.append(block)
        return checked

    def _atom_truths(self, blocks: list[np.ndarray], count: int) -> np.ndarray:
        num_atoms = self.num_atoms
        if num_atoms == 0:
            return np.zeros((count, 0), dtype=bool)
        if self.mode == "linear":
            # The block-diagonal product is evaluated block-wise: group g's
            # columns only read group g's direction block, so one small GEMM
            # per group computes exactly the dense result while skipping the
            # structural-zero FLOPs (a 64-group batch of dim-1 lineages would
            # otherwise pay 64x the arithmetic).  Each block GEMM is the
            # *same call* the unfused kernel makes -- bit-identity by
            # construction, not by the zeros-are-exact argument.
            degree_one = np.empty((count, num_atoms))
            for group, block in enumerate(blocks):
                start, stop = self.atom_offsets[group], self.atom_offsets[group + 1]
                if stop > start:
                    degree_one[:, start:stop] = \
                        block @ self.compiled[group].table.linear_matrix
            degree_zero = self.linear_constant
            magnitude_one = np.abs(degree_one)
            scale = np.maximum(magnitude_one, np.abs(degree_zero)[None, :])
            threshold = scale * RELATIVE_ZERO_EPS
            significant_one = magnitude_one > threshold
            significant_zero = np.abs(degree_zero)[None, :] > threshold
            identically_zero = ~significant_one & ~significant_zero
            positive = np.where(significant_one, degree_one > 0.0,
                                degree_zero[None, :] > 0.0)
        else:
            # Same block-wise evaluation as the linear branch: each group's
            # profile slab comes from its own (m, M_g) @ (M_g, A_g * w_g)
            # product -- the unfused kernel's exact call -- scattered into
            # the fused tensor at the group's atom offset.  The degree-pad
            # columns beyond a group's own width stay exactly zero and can
            # never become the leading significant degree.
            width = self.width
            profiles = np.zeros((count, num_atoms, width))
            for group, compiled in enumerate(self.compiled):
                table = compiled.table
                start = self.atom_offsets[group]
                stop = self.atom_offsets[group + 1]
                if stop == start or not table.num_monomials:
                    continue
                group_width = table.max_degree + 1
                term_values = compiled._term_values(blocks[group])
                profiles[:, start:stop, :group_width] = (
                    term_values @ compiled.profile_selector).reshape(
                        count, stop - start, group_width)
            magnitudes = np.abs(profiles)
            scale = magnitudes.max(axis=2)
            significant = magnitudes > (scale * RELATIVE_ZERO_EPS)[:, :, None]
            identically_zero = ~significant.any(axis=2)
            leading = (width - 1) - np.argmax(significant[:, :, ::-1], axis=2)
            leading_values = np.take_along_axis(profiles, leading[:, :, None],
                                                axis=2)[:, :, 0]
            positive = leading_values > 0.0

        codes = self.sign_codes[None, :]
        truths = ((codes == -1) & ~positive) | ((codes == 1) & positive) | (codes == 2)
        return np.where(identically_zero, self.zero_truth[None, :], truths)

    def _run_programs(self, truths: np.ndarray, count: int) -> np.ndarray:
        decisions = np.empty((count, self.num_groups), dtype=bool)
        if self.sweep_groups:
            # One counts matmul decides every flat-program group: a group is
            # true where at least ``required`` of its atoms are (its arity
            # for "and", 1 for "or"/"atom").  0/1 sums are exact in float64.
            counts = truths @ self.sweep_selector
            swept = counts >= (self.sweep_required[None, :] - 0.5)
            decisions[:, list(self.sweep_groups)] = swept
        for group in self.fallback_groups:
            start = self.atom_offsets[group]
            stop = self.atom_offsets[group + 1]
            decisions[:, group] = self.compiled[group]._run_program(
                truths[:, start:stop], count)
        return decisions


def fuse_formulas(compiled: Sequence[CompiledFormula]) -> FusedFormula:
    """Stack compiled formulas of one :func:`fusion_mode` into a fused kernel."""
    compiled = tuple(compiled)
    if not compiled:
        raise FusionError("cannot fuse an empty group list")
    modes = {fusion_mode(entry) for entry in compiled}
    if len(modes) != 1:
        raise FusionError(
            f"cannot fuse across kernel modes {sorted(modes)}; "
            "partition by fusion_mode first")
    mode = modes.pop()

    dimensions = tuple(entry.dimension for entry in compiled)
    variable_offsets = np.concatenate(
        ([0], np.cumsum([entry.dimension for entry in compiled])))
    atom_counts = [entry.table.num_atoms for entry in compiled]
    atom_offsets = np.concatenate(([0], np.cumsum(atom_counts)))
    total_atoms = int(atom_offsets[-1])

    sign_codes = (np.concatenate([entry.sign_codes for entry in compiled])
                  if total_atoms else np.zeros(0, dtype=np.int64))
    zero_truth = (np.concatenate([entry.zero_truth for entry in compiled])
                  if total_atoms else np.zeros(0, dtype=bool))

    linear_matrix = None
    linear_constant = None
    width = 0
    monomial_counts = [entry.table.num_monomials for entry in compiled]
    monomial_offsets = np.concatenate(([0], np.cumsum(monomial_counts)))
    profile_selector = None

    if mode == "linear":
        linear_matrix = np.zeros((int(variable_offsets[-1]), total_atoms))
        for group, entry in enumerate(compiled):
            linear_matrix[variable_offsets[group]:variable_offsets[group + 1],
                          atom_offsets[group]:atom_offsets[group + 1]] = \
                entry.table.linear_matrix
        linear_constant = np.concatenate(
            [entry.table.linear_constant for entry in compiled])
    else:
        width = max((entry.table.max_degree + 1 for entry in compiled),
                    default=1)
        total_monomials = int(monomial_offsets[-1])
        profile_selector = np.zeros((total_monomials, total_atoms * width))
        for group, entry in enumerate(compiled):
            table = entry.table
            if not table.num_monomials:
                continue
            rows = np.arange(table.num_monomials) + monomial_offsets[group]
            columns = (atom_offsets[group] + table.atom_index) * width + table.degrees
            profile_selector[rows, columns] = table.coefficients

    sweep_entries: list[tuple[int, np.ndarray, int]] = []
    fallback_groups: list[int] = []
    for group, entry in enumerate(compiled):
        fused_program = entry.fused_program
        if fused_program is None:
            fallback_groups.append(group)
            continue
        kind, columns = fused_program
        required = len(columns) if kind == "and" else 1
        sweep_entries.append((group, columns + atom_offsets[group], required))

    sweep_selector = None
    sweep_required = None
    if sweep_entries:
        sweep_selector = np.zeros((total_atoms, len(sweep_entries)))
        sweep_required = np.zeros(len(sweep_entries))
        for position, (_, columns, required) in enumerate(sweep_entries):
            sweep_selector[columns, position] = 1.0
            sweep_required[position] = required

    return FusedFormula(
        compiled=compiled,
        mode=mode,
        dimensions=dimensions,
        variable_offsets=variable_offsets,
        atom_offsets=atom_offsets,
        sign_codes=sign_codes,
        zero_truth=zero_truth,
        linear_matrix=linear_matrix,
        linear_constant=linear_constant,
        width=width,
        monomial_offsets=monomial_offsets,
        profile_selector=profile_selector,
        sweep_selector=sweep_selector,
        sweep_required=sweep_required,
        sweep_groups=tuple(entry[0] for entry in sweep_entries),
        fallback_groups=tuple(fallback_groups),
    )
