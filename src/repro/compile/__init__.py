"""Compiled-kernel sampling engine: formulae lowered to batched NumPy kernels.

The Monte-Carlo schemes of the paper (the CQ(+,<) FPRAS of Theorem 7.1 and
the FO(+,·,<) AFPRAS of Theorem 8.1) decide a constraint formula at tens of
thousands of sample points per estimate.  This subpackage compiles a
:class:`~repro.constraints.formula.ConstraintFormula` once -- into coefficient
matrices plus a flat boolean program (:mod:`repro.compile.lower`) -- and then
decides whole ``(m, n)`` blocks of points or directions with a handful of
matrix products (:mod:`repro.compile.kernels`).

The scalar tree-walking evaluators remain in place as reference oracles; the
equivalence tests assert that the kernels reach the same decisions.  See
DESIGN.md for the architecture notes and the perf-measurement protocol.
"""

from repro.compile.fusion import (
    FUSION_MODES,
    FusedFormula,
    FusionError,
    fuse_formulas,
    fusion_mode,
)
from repro.compile.kernels import (
    DEFAULT_BLOCK_SIZE,
    DEFAULT_COMPILE_CACHE_SIZE,
    CompiledFormula,
    compile_cache_stats,
    compile_formula,
    configure_compile_cache,
)
from repro.compile.lower import AtomTable, LoweringError, lower

__all__ = [
    "AtomTable",
    "CompiledFormula",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_COMPILE_CACHE_SIZE",
    "FUSION_MODES",
    "FusedFormula",
    "FusionError",
    "LoweringError",
    "compile_cache_stats",
    "compile_formula",
    "configure_compile_cache",
    "fuse_formulas",
    "fusion_mode",
    "lower",
]
