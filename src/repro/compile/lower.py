"""Lowering of constraint formulae to flat NumPy-friendly tables.

The scalar evaluators in :mod:`repro.constraints` walk the formula tree once
per sample point, looking every variable up in a dict.  The Monte-Carlo
schemes of the paper draw ``ln(2/delta) / (2 eps^2)`` points per estimate, so
that walk dominates the whole certainty subsystem.  This module performs the
walk exactly once, producing three flat artefacts a NumPy kernel can replay
over an entire ``(m, n)`` block of points at once:

* an **atom table**: the distinct atomic constraints of the formula, with all
  their monomials stacked into a single exponent matrix ``E`` of shape
  ``(M, n)``, a coefficient vector ``c`` of length ``M``, and an index vector
  mapping each monomial back to its atom.  Summing monomial values by atom is
  then a single ``(m, M) @ (M, A)`` matrix product;
* a **linear fast path**: when every atom is linear the table additionally
  carries a dense ``(n, A)`` coefficient matrix and an ``(A,)`` constant
  vector, so atom values are one ``points @ W + b``;
* a **boolean program**: the connective structure flattened into a post-order
  stack program (push atom column / negate / reduce the top ``k`` entries
  with and/or) evaluated with NumPy logical ops on whole columns.

The lowering preserves the scalar semantics exactly -- including the
tolerance conventions of :meth:`Comparison.holds` and the relative-threshold
leading-sign rule of Lemma 8.4 -- so the kernels of
:mod:`repro.compile.kernels` can serve as drop-in replacements whose
decisions match the scalar reference oracles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.constraints.atoms import Comparison, Constraint
from repro.constraints.formula import (
    And,
    Atom,
    ConstraintFormula,
    FalseFormula,
    Not,
    Or,
    TrueFormula,
)

# Boolean-program opcodes.  A program is a tuple of instructions; each
# instruction is ``(opcode, operand)`` with the operand an atom column for
# PUSH_ATOM, an arity for AND/OR, and ignored otherwise.
PUSH_ATOM = 0
PUSH_TRUE = 1
PUSH_FALSE = 2
OP_NOT = 3
OP_AND = 4
OP_OR = 5

Instruction = tuple[int, int]


@dataclass(frozen=True)
class AtomTable:
    """The distinct atoms of a formula in stacked coefficient-matrix form.

    Attributes
    ----------
    variables:
        The ordered ambient variables; column ``j`` of a points block holds
        the value of ``variables[j]``.
    constraints:
        The distinct atomic constraints, in first-occurrence order.
    ops:
        ``ops[a]`` is the comparison operator of atom ``a``.
    exponents:
        ``(M, n)`` integer matrix: row ``k`` holds the per-variable exponents
        of the ``k``-th monomial (all zeros for a constant term).
    coefficients:
        ``(M,)`` float vector of monomial coefficients.
    atom_index:
        ``(M,)`` integer vector mapping each monomial to its atom.
    degrees:
        ``(M,)`` integer vector of monomial total degrees (the grouping key
        of the Lemma 8.4 directional profile).
    linear_matrix, linear_constant:
        Dense ``(n, A)`` / ``(A,)`` fast path, present iff ``is_linear``.
    """

    variables: tuple[str, ...]
    constraints: tuple[Constraint, ...]
    ops: tuple[Comparison, ...]
    exponents: np.ndarray
    coefficients: np.ndarray
    atom_index: np.ndarray
    degrees: np.ndarray
    linear_matrix: np.ndarray | None
    linear_constant: np.ndarray | None

    @property
    def num_atoms(self) -> int:
        return len(self.constraints)

    @property
    def num_monomials(self) -> int:
        return int(self.coefficients.shape[0])

    @property
    def is_linear(self) -> bool:
        return self.linear_matrix is not None

    @property
    def max_degree(self) -> int:
        """Largest total degree over all monomials (0 for constant atoms)."""
        if self.degrees.size == 0:
            return 0
        return int(self.degrees.max())


class LoweringError(ValueError):
    """Raised when a formula cannot be lowered over the given variables."""


def _collect_atoms(formula: ConstraintFormula) -> list[Constraint]:
    """Distinct atomic constraints in first-occurrence order."""
    seen: dict[Constraint, int] = {}
    for constraint in formula.atoms():
        if constraint not in seen:
            seen[constraint] = len(seen)
    return list(seen)


def _build_atom_table(constraints: Sequence[Constraint],
                      variables: tuple[str, ...]) -> AtomTable:
    column = {name: j for j, name in enumerate(variables)}
    dimension = len(variables)
    exponent_rows: list[np.ndarray] = []
    coefficient_values: list[float] = []
    atom_indices: list[int] = []
    degree_values: list[int] = []
    for index, constraint in enumerate(constraints):
        unknown = constraint.variables() - set(variables)
        if unknown:
            raise LoweringError(
                f"formula mentions variables not in the ambient tuple: {sorted(unknown)}")
        for monomial, coefficient in constraint.polynomial.coefficients.items():
            row = np.zeros(dimension, dtype=np.int64)
            degree = 0
            for name, exponent in monomial:
                row[column[name]] = exponent
                degree += exponent
            exponent_rows.append(row)
            coefficient_values.append(float(coefficient))
            atom_indices.append(index)
            degree_values.append(degree)

    if exponent_rows:
        exponents = np.vstack(exponent_rows)
    else:
        exponents = np.zeros((0, dimension), dtype=np.int64)
    coefficients = np.asarray(coefficient_values, dtype=float)
    atom_index = np.asarray(atom_indices, dtype=np.int64)
    degrees = np.asarray(degree_values, dtype=np.int64)

    linear_matrix = None
    linear_constant = None
    if all(constraint.is_linear() for constraint in constraints):
        linear_matrix = np.zeros((dimension, len(constraints)))
        linear_constant = np.zeros(len(constraints))
        for index, constraint in enumerate(constraints):
            linear_constant[index] = constraint.polynomial.constant_term()
            for name, coefficient in constraint.polynomial.linear_coefficients().items():
                linear_matrix[column[name], index] = coefficient

    return AtomTable(
        variables=variables,
        constraints=tuple(constraints),
        ops=tuple(constraint.op for constraint in constraints),
        exponents=exponents,
        coefficients=coefficients,
        atom_index=atom_index,
        degrees=degrees,
        linear_matrix=linear_matrix,
        linear_constant=linear_constant,
    )


def _lower_program(formula: ConstraintFormula,
                   atom_slot: dict[Constraint, int],
                   program: list[Instruction]) -> None:
    if isinstance(formula, TrueFormula):
        program.append((PUSH_TRUE, 0))
    elif isinstance(formula, FalseFormula):
        program.append((PUSH_FALSE, 0))
    elif isinstance(formula, Atom):
        program.append((PUSH_ATOM, atom_slot[formula.constraint]))
    elif isinstance(formula, Not):
        _lower_program(formula.child, atom_slot, program)
        program.append((OP_NOT, 0))
    elif isinstance(formula, And):
        for child in formula.children:
            _lower_program(child, atom_slot, program)
        program.append((OP_AND, len(formula.children)))
    elif isinstance(formula, Or):
        for child in formula.children:
            _lower_program(child, atom_slot, program)
        program.append((OP_OR, len(formula.children)))
    else:
        raise LoweringError(f"unexpected formula node: {type(formula).__name__}")


def lower(formula: ConstraintFormula,
          variables: Sequence[str]) -> tuple[AtomTable, tuple[Instruction, ...]]:
    """Lower a formula over an ordered variable tuple to (table, program)."""
    variables = tuple(variables)
    if len(set(variables)) != len(variables):
        raise LoweringError(f"duplicate variables in ambient tuple: {variables}")
    constraints = _collect_atoms(formula)
    table = _build_atom_table(constraints, variables)
    atom_slot = {constraint: index for index, constraint in enumerate(constraints)}
    program: list[Instruction] = []
    _lower_program(formula, atom_slot, program)
    return table, tuple(program)
