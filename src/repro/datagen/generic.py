"""Schema-driven random data generation (the DataFiller substitute).

The paper produced its experimental data with DataFiller, a tool that fills
an SQL schema with random values and NULLs.  This module plays the same role
for our in-memory databases: a :class:`TableSpec` describes, for each column,
how to draw values and how often to leave the entry null, and
:func:`generate_database` produces a reproducible instance of any schema.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.geometry.ball import RngLike, as_generator
from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema
from repro.relational.values import BaseNull, NumNull, Value

#: A value factory: receives the generator and the row index, returns a value.
ValueFactory = Callable[[np.random.Generator, int], Value]


@dataclass(frozen=True)
class ColumnSpec:
    """How to fill one column.

    Exactly one of ``choices``, ``uniform``, ``factory`` or ``serial`` should
    be provided:

    * ``choices`` -- draw uniformly from a finite pool (categorical columns);
    * ``uniform`` -- draw a float uniformly from ``(low, high)``;
    * ``factory`` -- arbitrary callable;
    * ``serial`` -- ``f"{serial}{row_index}"`` identifiers (primary keys).

    ``null_rate`` is the probability that the entry is a fresh marked null
    instead of a generated value.
    """

    choices: Optional[Sequence[Value]] = None
    uniform: Optional[tuple[float, float]] = None
    factory: Optional[ValueFactory] = None
    serial: Optional[str] = None
    null_rate: float = 0.0

    def __post_init__(self) -> None:
        provided = sum(option is not None
                       for option in (self.choices, self.uniform, self.factory, self.serial))
        if provided != 1:
            raise ValueError("exactly one of choices/uniform/factory/serial must be given")
        if not 0.0 <= self.null_rate <= 1.0:
            raise ValueError(f"null_rate must be in [0, 1], got {self.null_rate}")

    def draw(self, generator: np.random.Generator, row_index: int) -> Value:
        if self.choices is not None:
            return self.choices[int(generator.integers(0, len(self.choices)))]
        if self.uniform is not None:
            low, high = self.uniform
            return float(generator.uniform(low, high))
        if self.factory is not None:
            return self.factory(generator, row_index)
        return f"{self.serial}{row_index}"

    def draw_batch(self, generator: np.random.Generator, count: int) -> list[Value]:
        """Draw a whole column at once (the columnar generation path).

        Vectorizes the ``choices`` and ``uniform`` families; ``factory``
        columns necessarily fall back to a per-row loop.  The draw *order*
        differs from ``count`` individual :meth:`draw` calls (one stream
        consumption per column instead of per entry), so columnar-generated
        data is reproducible per backend but not bit-identical to the row
        backend's data at the same seed -- convert with
        ``Database.with_backend`` when both backends must see one instance.
        """
        if self.choices is not None:
            picks = generator.integers(0, len(self.choices), size=count)
            return [self.choices[int(index)] for index in picks]
        if self.uniform is not None:
            low, high = self.uniform
            return generator.uniform(low, high, size=count).tolist()
        if self.factory is not None:
            return [self.factory(generator, index) for index in range(count)]
        return [f"{self.serial}{index}" for index in range(count)]


@dataclass(frozen=True)
class TableSpec:
    """How to fill one table: number of rows and one :class:`ColumnSpec` per column."""

    rows: int
    columns: dict[str, ColumnSpec] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.rows < 0:
            raise ValueError(f"rows must be non-negative, got {self.rows}")


def generate_database(schema: DatabaseSchema,
                      specs: dict[str, TableSpec],
                      rng: RngLike = None,
                      null_prefix: str = "g",
                      backend: str = "rows",
                      shards: int = 1) -> Database:
    """Generate a database instance of ``schema`` according to ``specs``.

    Every generated null is a fresh marked null (``⊥``/``⊤`` depending on the
    column type), so the result is a well-formed incomplete database in the
    paper's model.  Tables of the schema without a spec are left empty.

    With ``backend="columnar"`` the generator works column-wise: null masks
    and values are drawn as whole arrays and land directly in a
    :class:`~repro.relational.columnar.ColumnarRelation` without any per-row
    ``validate_tuple`` -- the DataFiller-scale path for 10^5-10^6-row
    instances.  Both backends are reproducible at a fixed seed, but the
    column-wise draw order differs from the row-wise one, so the two
    backends generate different (same-distribution) instances at the same
    seed; use :meth:`Database.with_backend` to hand one instance to both.

    ``shards`` declares the generated snapshot's shard count for the
    sharded execution path; it does not change the generated content (the
    draw order is shard-independent), only how queries over the result may
    be parallelised.
    """
    generator = as_generator(rng)
    null_counter = itertools.count(1)
    if backend == "columnar":
        return _generate_columnar(schema, specs, generator, null_prefix,
                                  null_counter, shards)
    database = Database(schema, backend=backend, shards=shards)
    for table_name, spec in specs.items():
        relation_schema = schema.relation(table_name)
        _check_specs(relation_schema, spec, table_name)
        for row_index in range(spec.rows):
            row: list[Value] = []
            for attribute in relation_schema.attributes:
                column_spec = spec.columns[attribute.name]
                if generator.random() < column_spec.null_rate:
                    label = f"{null_prefix}{next(null_counter)}"
                    row.append(NumNull(label) if attribute.is_numeric else BaseNull(label))
                else:
                    row.append(column_spec.draw(generator, row_index))
            database.add(table_name, row)
    return database


def _check_specs(relation_schema, spec: TableSpec, table_name: str) -> None:
    missing = [attribute.name for attribute in relation_schema.attributes
               if attribute.name not in spec.columns]
    if missing:
        raise ValueError(
            f"table {table_name!r} is missing column specs for {missing}")


def _generate_columnar(schema: DatabaseSchema, specs: dict[str, TableSpec],
                       generator: np.random.Generator, null_prefix: str,
                       null_counter, shards: int = 1) -> Database:
    """Column-wise generation straight into columnar storage."""
    from repro.relational.columnar import ColumnarRelation

    database = Database(schema, backend="columnar", shards=shards)
    for table_name, spec in specs.items():
        relation_schema = schema.relation(table_name)
        _check_specs(relation_schema, spec, table_name)
        columns: dict[str, list[Value]] = {}
        for attribute in relation_schema.attributes:
            column_spec = spec.columns[attribute.name]
            null_mask = generator.random(spec.rows) < column_spec.null_rate
            values = column_spec.draw_batch(generator, spec.rows)
            make_null = NumNull if attribute.is_numeric else BaseNull
            for position in np.flatnonzero(null_mask):
                values[position] = make_null(f"{null_prefix}{next(null_counter)}")
            columns[attribute.name] = values
        database.install_relation(ColumnarRelation.from_columns(
            relation_schema, columns, dedupe=True, validate=False))
    return database
