"""Schema-driven random data generation (the DataFiller substitute).

The paper produced its experimental data with DataFiller, a tool that fills
an SQL schema with random values and NULLs.  This module plays the same role
for our in-memory databases: a :class:`TableSpec` describes, for each column,
how to draw values and how often to leave the entry null, and
:func:`generate_database` produces a reproducible instance of any schema.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.geometry.ball import RngLike, as_generator
from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema
from repro.relational.values import BaseNull, NumNull, Value

#: A value factory: receives the generator and the row index, returns a value.
ValueFactory = Callable[[np.random.Generator, int], Value]


@dataclass(frozen=True)
class ColumnSpec:
    """How to fill one column.

    Exactly one of ``choices``, ``uniform``, ``factory`` or ``serial`` should
    be provided:

    * ``choices`` -- draw uniformly from a finite pool (categorical columns);
    * ``uniform`` -- draw a float uniformly from ``(low, high)``;
    * ``factory`` -- arbitrary callable;
    * ``serial`` -- ``f"{serial}{row_index}"`` identifiers (primary keys).

    ``null_rate`` is the probability that the entry is a fresh marked null
    instead of a generated value.
    """

    choices: Optional[Sequence[Value]] = None
    uniform: Optional[tuple[float, float]] = None
    factory: Optional[ValueFactory] = None
    serial: Optional[str] = None
    null_rate: float = 0.0

    def __post_init__(self) -> None:
        provided = sum(option is not None
                       for option in (self.choices, self.uniform, self.factory, self.serial))
        if provided != 1:
            raise ValueError("exactly one of choices/uniform/factory/serial must be given")
        if not 0.0 <= self.null_rate <= 1.0:
            raise ValueError(f"null_rate must be in [0, 1], got {self.null_rate}")

    def draw(self, generator: np.random.Generator, row_index: int) -> Value:
        if self.choices is not None:
            return self.choices[int(generator.integers(0, len(self.choices)))]
        if self.uniform is not None:
            low, high = self.uniform
            return float(generator.uniform(low, high))
        if self.factory is not None:
            return self.factory(generator, row_index)
        return f"{self.serial}{row_index}"


@dataclass(frozen=True)
class TableSpec:
    """How to fill one table: number of rows and one :class:`ColumnSpec` per column."""

    rows: int
    columns: dict[str, ColumnSpec] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.rows < 0:
            raise ValueError(f"rows must be non-negative, got {self.rows}")


def generate_database(schema: DatabaseSchema,
                      specs: dict[str, TableSpec],
                      rng: RngLike = None,
                      null_prefix: str = "g") -> Database:
    """Generate a database instance of ``schema`` according to ``specs``.

    Every generated null is a fresh marked null (``⊥``/``⊤`` depending on the
    column type), so the result is a well-formed incomplete database in the
    paper's model.  Tables of the schema without a spec are left empty.
    """
    generator = as_generator(rng)
    database = Database(schema)
    null_counter = itertools.count(1)
    for table_name, spec in specs.items():
        relation_schema = schema.relation(table_name)
        missing = [attribute.name for attribute in relation_schema.attributes
                   if attribute.name not in spec.columns]
        if missing:
            raise ValueError(
                f"table {table_name!r} is missing column specs for {missing}")
        for row_index in range(spec.rows):
            row: list[Value] = []
            for attribute in relation_schema.attributes:
                column_spec = spec.columns[attribute.name]
                if generator.random() < column_spec.null_rate:
                    label = f"{null_prefix}{next(null_counter)}"
                    row.append(NumNull(label) if attribute.is_numeric else BaseNull(label))
                else:
                    row.append(column_spec.draw(generator, row_index))
            database.add(table_name, row)
    return database
