"""Synthetic data generators reproducing the paper's workloads.

* :mod:`repro.datagen.intro` -- the introduction's sales-campaign example
  (Products / Competition / Excluded, three nulls) together with the paper's
  query (1), used to check the closed-form value ``(pi/2 - arctan(10/7)) /
  (2*pi) ≈ 0.097``;
* :mod:`repro.datagen.experiments` -- the Section 9 sales schema (Products /
  Orders / Market) at configurable scale and null rate, plus the three
  decision-support SQL queries of the experimental study;
* :mod:`repro.datagen.generic` -- a schema-driven random generator (the
  stand-in for the DataFiller tool the paper used);
* :mod:`repro.datagen.mutations` -- random INSERT/DELETE/UPDATE scripts
  over a generated schema, for the versioned differential harness.
"""

from repro.datagen.experiments import (
    EXPERIMENT_QUERIES,
    ExperimentScale,
    generate_sales_database,
    sales_schema,
)
from repro.datagen.generic import ColumnSpec, TableSpec, generate_database
from repro.datagen.intro import intro_database, intro_query, intro_schema
from repro.datagen.mutations import random_mutation_script, random_statement

__all__ = [
    "EXPERIMENT_QUERIES",
    "ColumnSpec",
    "ExperimentScale",
    "TableSpec",
    "generate_database",
    "generate_sales_database",
    "intro_database",
    "intro_query",
    "intro_schema",
    "random_mutation_script",
    "random_statement",
    "sales_schema",
]
