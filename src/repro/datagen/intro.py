"""The introduction's sales-campaign example.

The paper's running example has three relations::

    Products(id, seg, rrp, dis)      -- rrp, dis numerical
    Competition(id, seg, p)          -- p numerical
    Excluded(id, seg)

with the instance

    Products:    (id1, s, 10, 0.8), (id2, s, ⊤rrp2, 0.7)
    Competition: (c, s, ⊤price)
    Excluded:    (⊥excluded, s)

and the query (the paper's displayed FO formula)::

    q(s) = ∀ i, r, d, i', p .
        (Products(i, s, r, d) ∧ ¬Excluded(i, s) ∧ Competition(i', s, p))
            → (r · d ≤ p ∧ r ≥ 0 ∧ d ≥ 0 ∧ p ≥ 0)

A note on the expected value.  The paper derives the constraint system (1)
``(α' ≥ 0) ∧ (α ≥ 8) ∧ (0.7·α' ≥ α)`` and computes its density as
``(π/2 − arctan(10/7)) / (2π) ≈ 0.097`` (≈ 0.388 of the positive quadrant).
The query as displayed, however, yields ``0.7·α' ≤ α`` for product ``id2``
(our discounted price must be *below* the competition), whose density is
``arctan(10/7) / (2π) ≈ 0.153``.  The two differ only in the direction of
that one inequality; we expose both so the tests can check the paper's
headline number against the literal formula (1) *and* check the
query-derived value for internal consistency across all our backends.  See
EXPERIMENTS.md for the discussion.
"""

from __future__ import annotations

import math

from repro.constraints.atoms import Comparison, Constraint
from repro.constraints.formula import Atom, ConstraintFormula, conjunction
from repro.constraints.polynomials import Polynomial
from repro.logic.builder import base_var, forall, implies, neg, num_var, rel
from repro.logic.formulas import Query
from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.values import BaseNull, NumNull

#: The market segment used throughout the example.
SEGMENT = "s"

#: Density of the paper's constraint system (1): (pi/2 - arctan(10/7)) / (2*pi).
EXPECTED_MEASURE_FORMULA_1 = (math.pi / 2 - math.atan(10.0 / 7.0)) / (2 * math.pi)

#: The same value as a fraction of the positive quadrant (the paper's ≈ 0.388).
EXPECTED_POSITIVE_QUADRANT = 4 * EXPECTED_MEASURE_FORMULA_1

#: Density of the constraint system derived literally from the displayed query
#: (the inequality of product id2 points the other way): arctan(10/7) / (2*pi).
EXPECTED_MEASURE_QUERY = math.atan(10.0 / 7.0) / (2 * math.pi)


def intro_schema() -> DatabaseSchema:
    """Schema of the introduction example."""
    return DatabaseSchema.of(
        RelationSchema.of("Products", id="base", seg="base", rrp="num", dis="num"),
        RelationSchema.of("Competition", id="base", seg="base", p="num"),
        RelationSchema.of("Excluded", id="base", seg="base"),
    )


def intro_database() -> Database:
    """The instance of the introduction: two products, one competitor, one exclusion."""
    database = Database(intro_schema())
    database.add("Products", ("id1", SEGMENT, 10.0, 0.8))
    database.add("Products", ("id2", SEGMENT, NumNull("rrp2"), 0.7))
    database.add("Competition", ("c", SEGMENT, NumNull("price")))
    database.add("Excluded", (BaseNull("excluded"), SEGMENT))
    return database


def intro_query() -> Query:
    """The paper's query, as displayed in the introduction."""
    segment = base_var("s")
    item = base_var("i")
    competitor = base_var("i2")
    rrp = num_var("r")
    dis = num_var("d")
    price = num_var("p")

    condition = (rrp * dis <= price) & (rrp >= 0) & (dis >= 0) & (price >= 0)
    premise = (rel("Products", item, segment, rrp, dis)
               & neg(rel("Excluded", item, segment))
               & rel("Competition", competitor, segment, price))
    body = forall([item, rrp, dis, competitor, price], implies(premise, condition))
    return Query(head=(segment,), body=body, name="competitive_segments")


def intro_constraint_formula() -> tuple[ConstraintFormula, tuple[str, str]]:
    """The paper's constraint system (1), verbatim, over the two numerical nulls.

    Returns the formula ``(α' ≥ 0) ∧ (α ≥ 8) ∧ (0.7·α' ≥ α)`` together with
    the variable names ``(α, α')`` used for the competition price and the
    rrp of product ``id2`` respectively.
    """
    alpha = NumNull("price").variable        # α  : the competitor's price
    alpha_prime = NumNull("rrp2").variable   # α' : the rrp of product id2
    formula = conjunction([
        Atom(Constraint(Polynomial.variable(alpha_prime), Comparison.GE)),
        Atom(Constraint(Polynomial.variable(alpha) - 8.0, Comparison.GE)),
        Atom(Constraint(0.7 * Polynomial.variable(alpha_prime)
                        - Polynomial.variable(alpha), Comparison.GE)),
    ])
    return formula, (alpha, alpha_prime)
