"""Random mutation scripts for the versioned differential harness.

The live data plane's correctness claim is *differential*: replaying a
script of INSERT/DELETE/UPDATE statements through the incremental MVCC
path must be observationally identical -- candidates, witness order,
lineage digests, certainties -- to rebuilding the database from scratch
at every version.  This module generates the scripts: random statements
over a generated schema, drawn from the same value pools as the data so
predicates actually match rows and inserts actually join.

Statements are plain SQL text (the harness feeds them through
:func:`repro.engine.sql.parse_statement` / the service), so the same
scripts also exercise the parser and the wire path.  All randomness
flows from the caller's generator: a fixed seed replays the exact same
script, which is what makes failures reproducible one case at a time.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.relational.schema import DatabaseSchema, RelationSchema

__all__ = ["random_mutation_script", "random_statement"]

#: How often a generated literal is NULL (a fresh marked null).
_NULL_RATE = 0.15

_COMPARATORS = ("=", "<>", "<", "<=", ">", ">=")


def _numeric_literal(rng: np.random.Generator) -> str:
    return f"{float(rng.uniform(-5.0, 8.0)):.3f}"


def _column_literal(rng: np.random.Generator, numeric: bool,
                    pool: Sequence[str]) -> str:
    if rng.random() < _NULL_RATE:
        return "NULL"
    if numeric:
        return _numeric_literal(rng)
    return f"'{rng.choice(pool)}'"


def _where_clause(rng: np.random.Generator, relation: RelationSchema,
                  pool: Sequence[str]) -> str:
    """A random predicate over the relation's own columns (possibly none).

    Biased toward predicates that match *some* rows: equality on pool
    values and loose numeric bounds.  A missing WHERE (full-table match)
    stays in rotation with low probability -- it exercises the rebuild of
    an emptied table and the frontier cache's epoch bump.
    """
    if rng.random() < 0.08:
        return ""
    conditions = []
    for attribute in relation.attributes:
        if rng.random() > 0.45:
            continue
        if attribute.is_numeric:
            operator = str(rng.choice(_COMPARATORS))
            conditions.append(
                f"{attribute.name} {operator} {_numeric_literal(rng)}")
        else:
            operator = "=" if rng.random() < 0.7 else "<>"
            conditions.append(f"{attribute.name} {operator} '{rng.choice(pool)}'")
    if not conditions:
        attribute = relation.attributes[int(rng.integers(0, len(relation.attributes)))]
        if attribute.is_numeric:
            conditions.append(f"{attribute.name} <= {_numeric_literal(rng)}")
        else:
            conditions.append(f"{attribute.name} = '{rng.choice(pool)}'")
    return " WHERE " + " AND ".join(conditions)


def random_statement(rng: np.random.Generator, schema: DatabaseSchema,
                     pool: Sequence[str],
                     table: Optional[str] = None) -> str:
    """One random INSERT/DELETE/UPDATE statement against ``schema``.

    ``pool`` supplies the base-column values (use the pools the data was
    generated from, so predicates hit).  Inserts are weighted heaviest:
    appends keep the incremental frontier path -- the expensive claim --
    in rotation more often than the rebuild paths deletes force.
    """
    names = schema.names()
    if table is None:
        table = str(names[int(rng.integers(0, len(names)))])
    relation = schema.relation(table)
    kind = rng.random()
    if kind < 0.5:  # INSERT, possibly multi-row
        rows = []
        for _ in range(int(rng.integers(1, 4))):
            values = ", ".join(
                _column_literal(rng, attribute.is_numeric, pool)
                for attribute in relation.attributes)
            rows.append(f"({values})")
        return f"INSERT INTO {table} VALUES {', '.join(rows)}"
    if kind < 0.75:  # DELETE
        return f"DELETE FROM {table}{_where_clause(rng, relation, pool)}"
    # UPDATE: one or two SET targets; occasionally arithmetic over the
    # row's own numeric column (``SET x0 = x0 + 1``).
    attributes = list(relation.attributes)
    count = min(len(attributes), int(rng.integers(1, 3)))
    picked = [attributes[int(index)] for index in
              rng.choice(len(attributes), size=count, replace=False)]
    assignments = []
    for attribute in picked:
        if attribute.is_numeric and rng.random() < 0.3:
            delta = f"{float(rng.uniform(0.1, 2.0)):.3f}"
            operator = "+" if rng.random() < 0.5 else "-"
            assignments.append(
                f"{attribute.name} = {attribute.name} {operator} {delta}")
        else:
            assignments.append(
                f"{attribute.name} = "
                f"{_column_literal(rng, attribute.is_numeric, pool)}")
    return (f"UPDATE {table} SET {', '.join(assignments)}"
            f"{_where_clause(rng, relation, pool)}")


def random_mutation_script(rng: np.random.Generator, schema: DatabaseSchema,
                           pool: Sequence[str],
                           statements: int = 6) -> list[str]:
    """A script of ``statements`` random mutations over ``schema``."""
    return [random_statement(rng, schema, pool)
            for _ in range(max(0, statements))]
