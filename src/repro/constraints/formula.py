"""Boolean combinations of polynomial constraints.

The output of the Proposition 5.3 translation is a quantifier-free formula
over the real field: a Boolean combination of the atomic constraints of
:mod:`repro.constraints.atoms`.  Besides evaluation, the two operations the
approximation schemes rely on are negation-normal form (negation is pushed
into the atoms, which is possible because the comparison operators are closed
under negation) and disjunctive normal form (the FPRAS of Section 7 needs the
disjuncts to build one convex cone each).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from repro.constraints.atoms import Constraint, EVALUATION_EPS


class ConstraintFormula:
    """Base class for quantifier-free constraint formulae over the reals."""

    def evaluate(self, assignment: Mapping[str, float],
                 tolerance: float = EVALUATION_EPS) -> bool:
        """Truth value under a concrete assignment of the variables."""
        raise NotImplementedError

    def variables(self) -> frozenset[str]:
        """All variables occurring in the formula."""
        raise NotImplementedError

    def atoms(self) -> Iterator[Constraint]:
        """Iterate over the atomic constraints (with repetition)."""
        raise NotImplementedError

    def negate(self) -> "ConstraintFormula":
        """Logical negation (kept lazy; use :meth:`to_nnf` to push it inward)."""
        return Not(self)

    def to_nnf(self, negated: bool = False) -> "ConstraintFormula":
        """Negation normal form: negations appear only inside atoms."""
        raise NotImplementedError

    def to_dnf(self) -> list[list[Constraint]]:
        """Disjunctive normal form as a list of conjunctions of atoms.

        The empty disjunction denotes ``False``; a disjunct that is an empty
        conjunction denotes ``True``.  The formula is first put in NNF, then
        distributed; trivially false disjuncts (containing a variable-free
        atom that evaluates to false) are dropped and trivially true atoms are
        removed from their disjunct.
        """
        return _to_dnf(self.to_nnf())

    def is_linear(self) -> bool:
        """Whether every atom is a linear constraint (the CQ(+,<) case)."""
        return all(atom.is_linear() for atom in self.atoms())

    def simplify(self) -> "ConstraintFormula":
        """Constant-fold variable-free atoms and collapse trivial connectives."""
        return _simplify(self)


@dataclass(frozen=True)
class TrueFormula(ConstraintFormula):
    """The formula that is always true."""

    def evaluate(self, assignment: Mapping[str, float],
                 tolerance: float = EVALUATION_EPS) -> bool:
        return True

    def variables(self) -> frozenset[str]:
        return frozenset()

    def atoms(self) -> Iterator[Constraint]:
        return iter(())

    def to_nnf(self, negated: bool = False) -> ConstraintFormula:
        return FalseFormula() if negated else self


@dataclass(frozen=True)
class FalseFormula(ConstraintFormula):
    """The formula that is always false."""

    def evaluate(self, assignment: Mapping[str, float],
                 tolerance: float = EVALUATION_EPS) -> bool:
        return False

    def variables(self) -> frozenset[str]:
        return frozenset()

    def atoms(self) -> Iterator[Constraint]:
        return iter(())

    def to_nnf(self, negated: bool = False) -> ConstraintFormula:
        return TrueFormula() if negated else self


@dataclass(frozen=True)
class Atom(ConstraintFormula):
    """A single polynomial constraint."""

    constraint: Constraint

    def evaluate(self, assignment: Mapping[str, float],
                 tolerance: float = EVALUATION_EPS) -> bool:
        return self.constraint.evaluate(assignment, tolerance)

    def variables(self) -> frozenset[str]:
        return self.constraint.variables()

    def atoms(self) -> Iterator[Constraint]:
        yield self.constraint

    def to_nnf(self, negated: bool = False) -> ConstraintFormula:
        return Atom(self.constraint.negate()) if negated else self


@dataclass(frozen=True)
class And(ConstraintFormula):
    """Conjunction of sub-formulae."""

    children: tuple[ConstraintFormula, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "children", tuple(self.children))

    def evaluate(self, assignment: Mapping[str, float],
                 tolerance: float = EVALUATION_EPS) -> bool:
        return all(child.evaluate(assignment, tolerance) for child in self.children)

    def variables(self) -> frozenset[str]:
        return frozenset().union(*(child.variables() for child in self.children)) \
            if self.children else frozenset()

    def atoms(self) -> Iterator[Constraint]:
        for child in self.children:
            yield from child.atoms()

    def to_nnf(self, negated: bool = False) -> ConstraintFormula:
        children = tuple(child.to_nnf(negated) for child in self.children)
        return Or(children) if negated else And(children)


@dataclass(frozen=True)
class Or(ConstraintFormula):
    """Disjunction of sub-formulae."""

    children: tuple[ConstraintFormula, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "children", tuple(self.children))

    def evaluate(self, assignment: Mapping[str, float],
                 tolerance: float = EVALUATION_EPS) -> bool:
        return any(child.evaluate(assignment, tolerance) for child in self.children)

    def variables(self) -> frozenset[str]:
        return frozenset().union(*(child.variables() for child in self.children)) \
            if self.children else frozenset()

    def atoms(self) -> Iterator[Constraint]:
        for child in self.children:
            yield from child.atoms()

    def to_nnf(self, negated: bool = False) -> ConstraintFormula:
        children = tuple(child.to_nnf(negated) for child in self.children)
        return And(children) if negated else Or(children)


@dataclass(frozen=True)
class Not(ConstraintFormula):
    """Negation of a sub-formula."""

    child: ConstraintFormula

    def evaluate(self, assignment: Mapping[str, float],
                 tolerance: float = EVALUATION_EPS) -> bool:
        return not self.child.evaluate(assignment, tolerance)

    def variables(self) -> frozenset[str]:
        return self.child.variables()

    def atoms(self) -> Iterator[Constraint]:
        yield from self.child.atoms()

    def to_nnf(self, negated: bool = False) -> ConstraintFormula:
        return self.child.to_nnf(not negated)


def conjunction(children: Iterable[ConstraintFormula]) -> ConstraintFormula:
    """Conjunction with the obvious simplifications for 0 or 1 children."""
    children = tuple(children)
    if not children:
        return TrueFormula()
    if len(children) == 1:
        return children[0]
    return And(children)


def disjunction(children: Iterable[ConstraintFormula]) -> ConstraintFormula:
    """Disjunction with the obvious simplifications for 0 or 1 children."""
    children = tuple(children)
    if not children:
        return FalseFormula()
    if len(children) == 1:
        return children[0]
    return Or(children)


def _simplify(formula: ConstraintFormula) -> ConstraintFormula:
    if isinstance(formula, Atom):
        if formula.constraint.is_trivial():
            return TrueFormula() if formula.constraint.trivial_value() else FalseFormula()
        return formula
    if isinstance(formula, Not):
        child = _simplify(formula.child)
        if isinstance(child, TrueFormula):
            return FalseFormula()
        if isinstance(child, FalseFormula):
            return TrueFormula()
        if isinstance(child, Atom):
            return Atom(child.constraint.negate())
        return Not(child)
    if isinstance(formula, And):
        simplified: list[ConstraintFormula] = []
        for child in formula.children:
            child = _simplify(child)
            if isinstance(child, FalseFormula):
                return FalseFormula()
            if isinstance(child, TrueFormula):
                continue
            if isinstance(child, And):
                simplified.extend(child.children)
            else:
                simplified.append(child)
        return conjunction(simplified)
    if isinstance(formula, Or):
        simplified = []
        for child in formula.children:
            child = _simplify(child)
            if isinstance(child, TrueFormula):
                return TrueFormula()
            if isinstance(child, FalseFormula):
                continue
            if isinstance(child, Or):
                simplified.extend(child.children)
            else:
                simplified.append(child)
        return disjunction(simplified)
    return formula


def _to_dnf(nnf: ConstraintFormula) -> list[list[Constraint]]:
    nnf = _simplify(nnf)
    if isinstance(nnf, TrueFormula):
        return [[]]
    if isinstance(nnf, FalseFormula):
        return []
    if isinstance(nnf, Atom):
        return [[nnf.constraint]]
    if isinstance(nnf, Or):
        disjuncts: list[list[Constraint]] = []
        for child in nnf.children:
            disjuncts.extend(_to_dnf(child))
        return disjuncts
    if isinstance(nnf, And):
        disjuncts = [[]]
        for child in nnf.children:
            child_disjuncts = _to_dnf(child)
            disjuncts = [existing + extra
                         for existing in disjuncts
                         for extra in child_disjuncts]
            if not disjuncts:
                return []
        return disjuncts
    raise TypeError(f"unexpected node in NNF formula: {type(nnf).__name__}")


def dnf_size_bound(formula: ConstraintFormula, cap: int = 1_000_000) -> int:
    """Upper bound on the number of DNF disjuncts, capped at ``cap``.

    Converting to DNF can blow up exponentially (a conjunction of ``k``
    disjunctions multiplies out to the product of their widths), so callers
    that need the DNF -- the FPRAS and the exact planar backend -- first check
    this bound and fall back to the AFPRAS when it exceeds their budget.  The
    bound is computed on the negation normal form without building anything.
    """
    def bound(node: ConstraintFormula) -> int:
        if isinstance(node, (TrueFormula, FalseFormula, Atom)):
            return 1
        if isinstance(node, Or):
            total = 0
            for child in node.children:
                total += bound(child)
                if total >= cap:
                    return cap
            return max(total, 1)
        if isinstance(node, And):
            product = 1
            for child in node.children:
                product *= bound(child)
                if product >= cap:
                    return cap
            return product
        raise TypeError(f"unexpected node in NNF formula: {type(node).__name__}")

    return bound(formula.to_nnf())


def dnf_formula(disjuncts: Sequence[Sequence[Constraint]]) -> ConstraintFormula:
    """Rebuild a formula from DNF disjuncts (inverse of :meth:`to_dnf`)."""
    return disjunction(
        conjunction(Atom(constraint) for constraint in disjunct)
        for disjunct in disjuncts
    )
