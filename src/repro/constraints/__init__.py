"""Arithmetic constraints over the reals.

After the reductions of Section 5, the measure of certainty of a candidate
answer is the asymptotic density ``nu(phi)`` of a quantifier-free formula
``phi`` over the real field: a Boolean combination of polynomial constraints
``p(z) {<, <=, =, !=, >=, >} 0`` whose variables stand for the numerical
nulls of the database.  This subpackage implements that constraint language:

* :mod:`repro.constraints.polynomials` -- sparse multivariate polynomials;
* :mod:`repro.constraints.atoms` -- atomic constraints ``p(z) op 0``;
* :mod:`repro.constraints.formula` -- Boolean combinations with NNF/DNF
  normal forms;
* :mod:`repro.constraints.linear` -- recognition and homogenisation of linear
  constraints, and conversion to polyhedral cones (Section 7);
* :mod:`repro.constraints.asymptotic` -- the directional-limit test of
  Lemma 8.4 (Section 8);
* :mod:`repro.constraints.translate` -- the Proposition 5.3 translation of a
  (query, database, candidate tuple) triple into a constraint formula.
"""

from repro.constraints.atoms import Comparison, Constraint
from repro.constraints.formula import (
    And,
    Atom,
    ConstraintFormula,
    FalseFormula,
    Not,
    Or,
    TrueFormula,
    conjunction,
    disjunction,
)
from repro.constraints.linear import LinearAtom, formula_to_cones, linearise
from repro.constraints.polynomials import Polynomial
from repro.constraints.asymptotic import asymptotic_truth, atom_asymptotic_truth

__all__ = [
    "And",
    "Atom",
    "Comparison",
    "Constraint",
    "ConstraintFormula",
    "FalseFormula",
    "LinearAtom",
    "Not",
    "Or",
    "Polynomial",
    "TrueFormula",
    "asymptotic_truth",
    "atom_asymptotic_truth",
    "conjunction",
    "disjunction",
    "formula_to_cones",
    "linearise",
]
