"""Directional asymptotic evaluation of constraint formulae (Lemma 8.4).

The additive approximation scheme of Section 8 evaluates, for a sampled
direction ``a`` of the unit ball, the limit ``lim_{k -> inf} f_{phi,a}(k)``:
whether the formula eventually becomes (and stays) true as the point ``k*a``
moves away from the origin along ``a``.  By Lemma 8.2 that limit always
exists, and by Lemma 8.4 it can be read off symbolically: substituting ``z_i
= k * a_i`` turns every atomic polynomial into a univariate polynomial in
``k`` whose eventual sign is the sign of its leading non-zero coefficient.
No numeric limit-taking is involved.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.constraints.atoms import Constraint
from repro.constraints.formula import (
    And,
    Atom,
    ConstraintFormula,
    FalseFormula,
    Not,
    Or,
    TrueFormula,
)

#: Directional coefficients below this threshold are treated as exact zeros.
#: The threshold is relative to the largest coefficient of the profile so
#: that badly scaled constraints do not mis-classify their leading term.
RELATIVE_ZERO_EPS = 1e-12


def _leading_sign(profile: Sequence[float]) -> tuple[int, bool]:
    """Sign of the leading non-zero coefficient, and whether all vanish."""
    scale = max((abs(coefficient) for coefficient in profile), default=0.0)
    if scale <= 0.0:
        return 0, True
    threshold = scale * RELATIVE_ZERO_EPS
    for coefficient in reversed(profile):
        if abs(coefficient) > threshold:
            return (1 if coefficient > 0 else -1), False
    return 0, True


def atom_asymptotic_truth(constraint: Constraint,
                          direction: Mapping[str, float]) -> bool:
    """Eventual truth of ``constraint`` along ``direction`` (Lemma 8.4)."""
    profile = constraint.polynomial.directional_profile(direction)
    sign, identically_zero = _leading_sign(profile)
    return constraint.op.holds_for_sign(sign, identically_zero)


def asymptotic_truth(formula: ConstraintFormula,
                     direction: Mapping[str, float]) -> bool:
    """Eventual truth of a whole formula along ``direction``.

    The Boolean structure commutes with the limit because every atom's truth
    value is eventually constant along the direction (Lemma 8.2): past the
    largest root of any atomic polynomial, the formula's truth value no longer
    changes, so the limit of the formula is the formula of the limits.
    """
    if isinstance(formula, TrueFormula):
        return True
    if isinstance(formula, FalseFormula):
        return False
    if isinstance(formula, Atom):
        return atom_asymptotic_truth(formula.constraint, direction)
    if isinstance(formula, Not):
        return not asymptotic_truth(formula.child, direction)
    if isinstance(formula, And):
        return all(asymptotic_truth(child, direction) for child in formula.children)
    if isinstance(formula, Or):
        return any(asymptotic_truth(child, direction) for child in formula.children)
    raise TypeError(f"unexpected formula node: {type(formula).__name__}")


def direction_assignment(variables: Sequence[str], vector: np.ndarray) -> dict[str, float]:
    """Pair an ordered list of variables with the components of a direction vector."""
    vector = np.asarray(vector, dtype=float)
    if vector.shape != (len(variables),):
        raise ValueError(
            f"direction has {vector.shape} components for {len(variables)} variables")
    return {name: float(component) for name, component in zip(variables, vector)}
