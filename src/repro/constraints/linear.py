"""Linear constraints, homogenisation, and conversion to polyhedral cones.

The FPRAS of Section 7 applies to conjunctive queries with linear
constraints: the translated formula ``phi`` is a DNF whose atoms are linear,
and replacing each atom ``c . z < c'`` by its homogenised version ``c . z <
0`` turns each disjunct into a convex cone without changing the asymptotic
density ``nu(phi)`` (the paper cites its companion IJCAI'19 result for this).
This module recognises linear atoms, homogenises them, and converts DNF
disjuncts into the :class:`~repro.geometry.cones.PolyhedralCone` objects the
volume estimators consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.constraints.atoms import Comparison, Constraint
from repro.constraints.formula import ConstraintFormula
from repro.geometry.cones import PolyhedralCone


class NonLinearConstraintError(ValueError):
    """Raised when an operation that needs linear constraints meets a non-linear one."""


@dataclass(frozen=True)
class LinearAtom:
    """The linear constraint ``sum_i coefficients[v_i] * v_i + constant op 0``."""

    coefficients: Mapping[str, float]
    constant: float
    op: Comparison

    @classmethod
    def from_constraint(cls, constraint: Constraint) -> "LinearAtom":
        """Extract the linear form of a constraint; raises if it is not linear."""
        if not constraint.is_linear():
            raise NonLinearConstraintError(
                f"constraint is not linear: {constraint!r}")
        return cls(
            coefficients=dict(constraint.polynomial.linear_coefficients()),
            constant=constraint.polynomial.constant_term(),
            op=constraint.op,
        )

    def is_homogeneous(self) -> bool:
        return self.constant == 0.0

    def homogenise(self) -> "LinearAtom":
        """Drop the constant term (the Section 7 homogenisation step)."""
        return LinearAtom(coefficients=dict(self.coefficients), constant=0.0, op=self.op)

    def is_trivial(self) -> bool:
        """Whether no variable has a non-zero coefficient."""
        return all(value == 0.0 for value in self.coefficients.values())

    def normal_vector(self, variables: Sequence[str]) -> np.ndarray:
        """Coefficient vector in the order given by ``variables``.

        The vector is oriented so that the constraint reads ``normal . z op'
        0`` with ``op'`` one of ``<, <=, =, !=`` (``>`` and ``>=`` are flipped
        by negating the normal).
        """
        vector = np.asarray([self.coefficients.get(name, 0.0) for name in variables],
                            dtype=float)
        if self.op in (Comparison.GT, Comparison.GE):
            return -vector
        return vector

    def oriented_op(self) -> Comparison:
        """The comparison matching :meth:`normal_vector`'s orientation."""
        if self.op is Comparison.GT:
            return Comparison.LT
        if self.op is Comparison.GE:
            return Comparison.LE
        return self.op


def linearise(constraint: Constraint) -> LinearAtom:
    """Public alias of :meth:`LinearAtom.from_constraint`."""
    return LinearAtom.from_constraint(constraint)


def disjunct_to_cone(disjunct: Sequence[Constraint],
                     variables: Sequence[str]) -> PolyhedralCone | None:
    """Convert one DNF disjunct of linear atoms into its homogenised cone.

    Returns ``None`` when the disjunct is recognisably measure-zero or
    unsatisfiable after homogenisation:

    * an equality with a non-trivial normal confines the cone to a hyperplane;
    * a variable-free atom that is false kills the disjunct.

    Inequalities ``!= 0`` with a non-trivial normal only remove a hyperplane,
    which does not change the measure, so they are dropped.
    """
    strict_rows: list[np.ndarray] = []
    weak_rows: list[np.ndarray] = []
    for constraint in disjunct:
        if constraint.is_trivial():
            # Variable-free atoms keep their constant: evaluate them before
            # homogenisation so "5 < 0" kills the disjunct and "-5 < 0" is a
            # no-op.
            if not constraint.trivial_value():
                return None
            continue
        atom = LinearAtom.from_constraint(constraint).homogenise()
        if atom.is_trivial():
            # All variable coefficients vanished: the homogenised atom
            # compares 0 with 0.
            if not atom.oriented_op().holds(0.0):
                return None
            continue
        normal = atom.normal_vector(variables)
        op = atom.oriented_op()
        if op is Comparison.EQ:
            return None
        if op is Comparison.NE:
            continue
        if op is Comparison.LT:
            strict_rows.append(normal)
        else:  # LE
            weak_rows.append(normal)
    return PolyhedralCone.from_rows(
        dimension=len(variables),
        strict=strict_rows,
        weak=weak_rows,
    )


def formula_to_cones(formula: ConstraintFormula,
                     variables: Sequence[str]) -> list[PolyhedralCone]:
    """Homogenised cones of a linear formula's DNF disjuncts (Section 7).

    Raises :class:`NonLinearConstraintError` if the formula contains a
    non-linear atom; callers should fall back to the AFPRAS in that case.
    """
    if len(variables) == 0:
        raise ValueError("formula_to_cones requires at least one variable")
    cones: list[PolyhedralCone] = []
    for disjunct in formula.to_dnf():
        cone = disjunct_to_cone(disjunct, variables)
        if cone is not None:
            cones.append(cone)
    return cones
