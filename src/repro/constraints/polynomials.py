"""Sparse multivariate polynomials with rational-friendly float coefficients.

The atomic formulae produced by the Proposition 5.3 translation compare
polynomial terms built from numerical constants of the database and the
variables standing for numerical nulls.  This module provides the small
polynomial algebra needed for that: construction from constants and
variables, ring operations, evaluation, substitution of a scaled direction
(``z_i -> k * a_i``, the key step of the asymptotic test of Lemma 8.4), and
inspection of degrees and leading coefficients.

Polynomials are immutable.  Monomials are represented as tuples of
``(variable, exponent)`` pairs sorted by variable name, mapped to their float
coefficient; the zero polynomial has an empty monomial dictionary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from numbers import Real
from typing import Iterable, Mapping, Union

#: A monomial: variables with positive integer exponents, sorted by name.
Monomial = tuple[tuple[str, int], ...]

#: Values a polynomial can be combined with directly.
Scalar = Union[int, float]

#: Coefficients smaller than this in absolute value are dropped.
COEFFICIENT_EPS = 1e-15

CONSTANT_MONOMIAL: Monomial = ()


def _normalise_monomial(variables: Iterable[tuple[str, int]]) -> Monomial:
    powers: dict[str, int] = {}
    for name, exponent in variables:
        if exponent < 0:
            raise ValueError(f"negative exponent for variable {name!r}")
        if exponent == 0:
            continue
        powers[name] = powers.get(name, 0) + exponent
    return tuple(sorted(powers.items()))


def _merge_monomials(first: Monomial, second: Monomial) -> Monomial:
    return _normalise_monomial(tuple(first) + tuple(second))


@dataclass(frozen=True)
class Polynomial:
    """An immutable sparse multivariate polynomial with float coefficients."""

    coefficients: Mapping[Monomial, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        cleaned = {
            monomial: float(coefficient)
            for monomial, coefficient in self.coefficients.items()
            if abs(coefficient) > COEFFICIENT_EPS
        }
        object.__setattr__(self, "coefficients", cleaned)

    # -- constructors ------------------------------------------------------

    @classmethod
    def constant(cls, value: Scalar) -> "Polynomial":
        """The constant polynomial ``value``."""
        if not isinstance(value, Real):
            raise TypeError(f"constant must be a real number, got {type(value).__name__}")
        return cls({CONSTANT_MONOMIAL: float(value)})

    @classmethod
    def variable(cls, name: str) -> "Polynomial":
        """The polynomial consisting of the single variable ``name``."""
        if not name:
            raise ValueError("variable name must be non-empty")
        return cls({((name, 1),): 1.0})

    @classmethod
    def zero(cls) -> "Polynomial":
        return cls({})

    @classmethod
    def from_value(cls, value: Union["Polynomial", Scalar]) -> "Polynomial":
        """Coerce a scalar to a constant polynomial; pass polynomials through."""
        if isinstance(value, Polynomial):
            return value
        return cls.constant(value)

    # -- inspection --------------------------------------------------------

    def variables(self) -> frozenset[str]:
        """The set of variables occurring with non-zero coefficient."""
        names: set[str] = set()
        for monomial in self.coefficients:
            for name, _ in monomial:
                names.add(name)
        return frozenset(names)

    def is_zero(self) -> bool:
        return not self.coefficients

    def is_constant(self) -> bool:
        return all(monomial == CONSTANT_MONOMIAL for monomial in self.coefficients)

    def constant_term(self) -> float:
        return self.coefficients.get(CONSTANT_MONOMIAL, 0.0)

    def total_degree(self) -> int:
        """Highest total degree of a monomial; the zero polynomial has degree 0."""
        if not self.coefficients:
            return 0
        return max(sum(exponent for _, exponent in monomial)
                   for monomial in self.coefficients)

    def is_linear(self) -> bool:
        """Whether every monomial has total degree at most one."""
        return self.total_degree() <= 1

    def linear_coefficients(self) -> dict[str, float]:
        """Coefficients of the degree-one monomials (requires :meth:`is_linear`)."""
        if not self.is_linear():
            raise ValueError("polynomial is not linear")
        coefficients: dict[str, float] = {}
        for monomial, coefficient in self.coefficients.items():
            if monomial == CONSTANT_MONOMIAL:
                continue
            ((name, _exponent),) = monomial
            coefficients[name] = coefficient
        return coefficients

    # -- ring operations ---------------------------------------------------

    def __add__(self, other: Union["Polynomial", Scalar]) -> "Polynomial":
        other = Polynomial.from_value(other)
        merged = dict(self.coefficients)
        for monomial, coefficient in other.coefficients.items():
            merged[monomial] = merged.get(monomial, 0.0) + coefficient
        return Polynomial(merged)

    def __radd__(self, other: Scalar) -> "Polynomial":
        return self.__add__(other)

    def __neg__(self) -> "Polynomial":
        return Polynomial({monomial: -coefficient
                           for monomial, coefficient in self.coefficients.items()})

    def __sub__(self, other: Union["Polynomial", Scalar]) -> "Polynomial":
        return self.__add__(-Polynomial.from_value(other))

    def __rsub__(self, other: Scalar) -> "Polynomial":
        return Polynomial.from_value(other).__sub__(self)

    def __mul__(self, other: Union["Polynomial", Scalar]) -> "Polynomial":
        other = Polynomial.from_value(other)
        product: dict[Monomial, float] = {}
        for left_monomial, left_coefficient in self.coefficients.items():
            for right_monomial, right_coefficient in other.coefficients.items():
                monomial = _merge_monomials(left_monomial, right_monomial)
                product[monomial] = (product.get(monomial, 0.0)
                                     + left_coefficient * right_coefficient)
        return Polynomial(product)

    def __rmul__(self, other: Scalar) -> "Polynomial":
        return self.__mul__(other)

    def __pow__(self, exponent: int) -> "Polynomial":
        if exponent < 0:
            raise ValueError("negative powers of polynomials are not supported")
        result = Polynomial.constant(1.0)
        base = self
        power = exponent
        while power:
            if power & 1:
                result = result * base
            base = base * base
            power >>= 1
        return result

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self.coefficients == other.coefficients

    def __hash__(self) -> int:
        return hash(frozenset(self.coefficients.items()))

    # -- evaluation and substitution ----------------------------------------

    def evaluate(self, assignment: Mapping[str, float]) -> float:
        """Numeric value of the polynomial at a point."""
        total = 0.0
        for monomial, coefficient in self.coefficients.items():
            value = coefficient
            for name, exponent in monomial:
                if name not in assignment:
                    raise KeyError(f"no value supplied for variable {name!r}")
                value *= float(assignment[name]) ** exponent
            total += value
        return total

    def substitute(self, substitution: Mapping[str, Union["Polynomial", Scalar]]) -> "Polynomial":
        """Replace variables by polynomials (or scalars); others are kept."""
        result = Polynomial.zero()
        for monomial, coefficient in self.coefficients.items():
            term = Polynomial.constant(coefficient)
            for name, exponent in monomial:
                replacement = substitution.get(name)
                factor = (Polynomial.variable(name) if replacement is None
                          else Polynomial.from_value(replacement))
                term = term * factor**exponent
            result = result + term
        return result

    def directional_profile(self, direction: Mapping[str, float]) -> list[float]:
        """Coefficients of the univariate polynomial ``k -> p(k * direction)``.

        Substituting ``z_i = k * a_i`` groups monomials by their total degree:
        the result is a list ``[c_0, c_1, ..., c_d]`` with ``p(k * a) = sum_d
        c_d * k^d``.  This is exactly the object Lemma 8.4 inspects -- only the
        leading non-zero coefficient matters for the asymptotic truth value.
        """
        degree = self.total_degree()
        profile = [0.0] * (degree + 1)
        for monomial, coefficient in self.coefficients.items():
            value = coefficient
            total_degree = 0
            for name, exponent in monomial:
                if name not in direction:
                    raise KeyError(f"no direction component for variable {name!r}")
                value *= float(direction[name]) ** exponent
                total_degree += exponent
            profile[total_degree] += value
        return profile

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.coefficients:
            return "Polynomial(0)"
        parts = []
        for monomial, coefficient in sorted(self.coefficients.items()):
            if monomial == CONSTANT_MONOMIAL:
                parts.append(f"{coefficient:g}")
            else:
                variables = "*".join(
                    name if exponent == 1 else f"{name}^{exponent}"
                    for name, exponent in monomial
                )
                parts.append(f"{coefficient:g}*{variables}")
        return "Polynomial(" + " + ".join(parts) + ")"
