"""Translation of (query, database, candidate tuple) into a real constraint formula.

This implements Proposition 5.3 (together with the base-type elimination of
Proposition 5.2): for an FO(+,·,<) query ``q(x, y)``, an incomplete database
``D`` and a candidate tuple ``(a, s)``, it produces a quantifier-free formula
``phi(z_1, ..., z_k)`` over the real field -- one variable per numerical null
of ``D`` -- such that a valuation ``v`` of the numerical nulls satisfies
``phi`` exactly when ``v(a, s) ∈ q(v(D))``.  The measure of certainty is then
the asymptotic density ``nu(phi)`` (Theorem 5.4).

The translation follows the proof:

* base-type nulls are eliminated by applying a bijective valuation that sends
  them to fresh constants (Proposition 5.2);
* base-type quantifiers become explicit disjunctions/conjunctions over
  ``C_base(D)`` and numerical quantifiers over ``C_num(D) ∪ N_num(D)``
  (active-domain semantics);
* a relation atom becomes the disjunction, over the matching tuples of the
  relation, of the equalities between its numerical arguments and the tuple's
  numerical entries;
* numerical comparisons become polynomial constraints.  Division is
  eliminated by clearing denominators with an explicit case split on their
  sign, so the result is always a Boolean combination of polynomial atoms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence, Union

from repro.constraints.atoms import Comparison as AtomComparison
from repro.constraints.atoms import Constraint
from repro.constraints.formula import (
    And,
    Atom,
    ConstraintFormula,
    FalseFormula,
    Not,
    Or,
    TrueFormula,
    conjunction,
    disjunction,
)
from repro.constraints.polynomials import Polynomial
from repro.logic.formulas import (
    BaseEquality,
    Comparison,
    ComparisonOperator,
    Exists,
    FOAnd,
    FONot,
    FOOr,
    Forall,
    Formula,
    Query,
    RelationAtom,
)
from repro.logic.terms import (
    BaseConstant,
    NumericConstant,
    Sort,
    Term,
    TermOperation,
    TermOperator,
    Variable,
)
from repro.relational.database import Database
from repro.relational.valuation import bijective_base_valuation
from repro.relational.values import (
    NumNull,
    Value,
    is_base_null,
    is_num_null,
    is_numeric_constant,
)


class TranslationError(ValueError):
    """Raised when a query/database/candidate combination cannot be translated."""


_COMPARISON_TO_ATOM = {
    ComparisonOperator.LT: AtomComparison.LT,
    ComparisonOperator.LE: AtomComparison.LE,
    ComparisonOperator.EQ: AtomComparison.EQ,
    ComparisonOperator.NE: AtomComparison.NE,
    ComparisonOperator.GE: AtomComparison.GE,
    ComparisonOperator.GT: AtomComparison.GT,
}


@dataclass(frozen=True)
class RationalTerm:
    """A quotient of polynomials ``numerator / denominator``.

    Division inside terms is represented symbolically and eliminated when the
    enclosing comparison is normalised into polynomial constraints.
    """

    numerator: Polynomial
    denominator: Polynomial

    @classmethod
    def of(cls, polynomial: Polynomial) -> "RationalTerm":
        return cls(numerator=polynomial, denominator=Polynomial.constant(1.0))

    def __add__(self, other: "RationalTerm") -> "RationalTerm":
        return RationalTerm(
            numerator=self.numerator * other.denominator + other.numerator * self.denominator,
            denominator=self.denominator * other.denominator,
        )

    def __sub__(self, other: "RationalTerm") -> "RationalTerm":
        return RationalTerm(
            numerator=self.numerator * other.denominator - other.numerator * self.denominator,
            denominator=self.denominator * other.denominator,
        )

    def __mul__(self, other: "RationalTerm") -> "RationalTerm":
        return RationalTerm(
            numerator=self.numerator * other.numerator,
            denominator=self.denominator * other.denominator,
        )

    def divide(self, other: "RationalTerm") -> "RationalTerm":
        return RationalTerm(
            numerator=self.numerator * other.denominator,
            denominator=self.denominator * other.numerator,
        )


#: A quantifier witness or head binding: a base value or a rational term.
SemanticValue = Union[object, RationalTerm]


@dataclass(frozen=True)
class TranslationResult:
    """The formula of Proposition 5.3, with the book-keeping around it."""

    formula: ConstraintFormula
    #: Variable names for *all* numerical nulls of the database, in the
    #: canonical (sorted-by-name) order; this fixes the ambient dimension.
    all_variables: tuple[str, ...]
    #: Variable names that actually occur in the formula; sampling only these
    #: coordinates is the optimisation described in Section 9.
    relevant_variables: tuple[str, ...]
    #: Mapping from variable name back to the numerical null it stands for.
    null_by_variable: Mapping[str, NumNull]

    @property
    def dimension(self) -> int:
        """Number of numerical nulls of the database (the ``k`` of the paper)."""
        return len(self.all_variables)


def _null_variable(null: NumNull) -> str:
    return null.variable


def _value_to_rational(value: Value) -> RationalTerm:
    if is_num_null(value):
        return RationalTerm.of(Polynomial.variable(_null_variable(value)))
    if is_numeric_constant(value):
        return RationalTerm.of(Polynomial.constant(float(value)))
    raise TranslationError(f"expected a numerical value, got {value!r}")


def _comparison_formula(left: RationalTerm, op: ComparisonOperator,
                        right: RationalTerm) -> ConstraintFormula:
    """Normalise ``left op right`` into polynomial constraints.

    With ``left - right = p / q``, the comparison is rewritten with an
    explicit case split on the sign of ``q`` (a comparison whose denominator
    is zero is undefined and treated as false, matching the evaluator).
    """
    difference = left - right
    p = difference.numerator
    q = difference.denominator
    atom_op = _COMPARISON_TO_ATOM[op]
    if q.is_constant():
        constant = q.constant_term()
        if constant == 0.0:
            return FalseFormula()
        effective_op = atom_op if constant > 0 else atom_op.flip()
        return Atom(Constraint(polynomial=p, op=effective_op)).simplify()
    q_positive = Atom(Constraint(polynomial=q, op=AtomComparison.GT))
    q_negative = Atom(Constraint(polynomial=q, op=AtomComparison.LT))
    if op in (ComparisonOperator.EQ, ComparisonOperator.NE):
        q_nonzero = Or((q_positive, q_negative))
        return conjunction([q_nonzero, Atom(Constraint(polynomial=p, op=atom_op))]).simplify()
    positive_case = conjunction([q_positive, Atom(Constraint(polynomial=p, op=atom_op))])
    negative_case = conjunction([q_negative, Atom(Constraint(polynomial=p, op=atom_op.flip()))])
    return disjunction([positive_case, negative_case]).simplify()


class _Translator:
    """Carries the database, domains and environment through the recursion."""

    def __init__(self, database: Database) -> None:
        self._database = database
        base_domain = sorted(database.base_constants(), key=repr)
        self._base_domain: tuple[object, ...] = tuple(base_domain)
        numeric_domain: list[SemanticValue] = [
            RationalTerm.of(Polynomial.constant(constant))
            for constant in sorted(database.num_constants())
        ]
        numeric_domain.extend(
            RationalTerm.of(Polynomial.variable(_null_variable(null)))
            for null in database.num_nulls_ordered()
        )
        self._numeric_domain: tuple[SemanticValue, ...] = tuple(numeric_domain)

    # -- terms ---------------------------------------------------------------

    def _term_value(self, term: Term,
                    environment: Mapping[Variable, SemanticValue]) -> SemanticValue:
        if isinstance(term, Variable):
            if term not in environment:
                raise TranslationError(f"unbound variable {term!r} during translation")
            return environment[term]
        if isinstance(term, NumericConstant):
            return RationalTerm.of(Polynomial.constant(term.value))
        if isinstance(term, BaseConstant):
            return term.value
        if isinstance(term, TermOperation):
            left = self._term_value(term.left, environment)
            right = self._term_value(term.right, environment)
            if not isinstance(left, RationalTerm) or not isinstance(right, RationalTerm):
                raise TranslationError(f"arithmetic applied to base values in {term!r}")
            if term.operator is TermOperator.ADD:
                return left + right
            if term.operator is TermOperator.SUB:
                return left - right
            if term.operator is TermOperator.MUL:
                return left * right
            return left.divide(right)
        raise TranslationError(f"unknown term node: {type(term).__name__}")

    # -- formulae --------------------------------------------------------------

    def translate(self, formula: Formula,
                  environment: Mapping[Variable, SemanticValue]) -> ConstraintFormula:
        if isinstance(formula, RelationAtom):
            return self._relation_atom(formula, environment)
        if isinstance(formula, BaseEquality):
            left = self._term_value(formula.left, environment)
            right = self._term_value(formula.right, environment)
            return TrueFormula() if left == right else FalseFormula()
        if isinstance(formula, Comparison):
            left = self._term_value(formula.left, environment)
            right = self._term_value(formula.right, environment)
            if not isinstance(left, RationalTerm) or not isinstance(right, RationalTerm):
                raise TranslationError(f"numerical comparison over base values: {formula!r}")
            return _comparison_formula(left, formula.op, right)
        if isinstance(formula, FONot):
            return Not(self.translate(formula.body, environment)).simplify()
        if isinstance(formula, FOAnd):
            return conjunction(self.translate(child, environment)
                               for child in formula.conjuncts).simplify()
        if isinstance(formula, FOOr):
            return disjunction(self.translate(child, environment)
                               for child in formula.disjuncts).simplify()
        if isinstance(formula, Exists):
            return disjunction(
                self.translate(formula.body, {**environment, formula.variable: witness})
                for witness in self._domain(formula.variable.sort)
            ).simplify()
        if isinstance(formula, Forall):
            return conjunction(
                self.translate(formula.body, {**environment, formula.variable: witness})
                for witness in self._domain(formula.variable.sort)
            ).simplify()
        raise TranslationError(f"unknown formula node: {type(formula).__name__}")

    def _domain(self, sort: Sort) -> tuple[SemanticValue, ...]:
        return self._numeric_domain if sort is Sort.NUM else self._base_domain

    def _relation_atom(self, atom: RelationAtom,
                       environment: Mapping[Variable, SemanticValue]) -> ConstraintFormula:
        relation = self._database.relation(atom.relation)
        schema = relation.schema
        argument_values = [self._term_value(term, environment) for term in atom.terms]
        disjuncts: list[ConstraintFormula] = []
        for row in relation:
            conjuncts: list[ConstraintFormula] = []
            matches = True
            for attribute, argument, stored in zip(schema.attributes, argument_values, row):
                if attribute.is_numeric:
                    if not isinstance(argument, RationalTerm):
                        raise TranslationError(
                            f"base value bound to numerical position of {atom!r}")
                    conjuncts.append(_comparison_formula(
                        argument, ComparisonOperator.EQ, _value_to_rational(stored)))
                else:
                    if isinstance(argument, RationalTerm):
                        raise TranslationError(
                            f"numerical value bound to base position of {atom!r}")
                    if argument != stored:
                        matches = False
                        break
            if matches:
                disjuncts.append(conjunction(conjuncts))
        return disjunction(disjuncts).simplify()


def translate(query: Query, database: Database,
              candidate: Sequence[Value] = ()) -> TranslationResult:
    """Produce the Proposition 5.3 formula for ``candidate`` as an answer to ``query``.

    ``candidate`` must have one component per head variable, of the matching
    sort: base constants or base nulls of ``D`` for base variables, numerical
    constants or numerical nulls of ``D`` for numerical variables.
    """
    if len(candidate) != query.arity:
        raise TranslationError(
            f"candidate has {len(candidate)} components for a query of arity {query.arity}")

    base_valuation = bijective_base_valuation(database)
    valued_database = base_valuation.database(database)

    translator = _Translator(valued_database)
    environment: dict[Variable, SemanticValue] = {}
    for variable, value in zip(query.head, candidate):
        if variable.sort is Sort.NUM:
            if not (is_numeric_constant(value) or is_num_null(value)):
                raise TranslationError(
                    f"candidate value {value!r} for numerical head variable "
                    f"{variable.name!r} is not numerical")
            environment[variable] = _value_to_rational(value)
        else:
            if is_num_null(value) or is_numeric_constant(value):
                raise TranslationError(
                    f"candidate value {value!r} for base head variable "
                    f"{variable.name!r} is not base-typed")
            environment[variable] = base_valuation.value(value) if is_base_null(value) else value

    formula = translator.translate(query.body, environment).simplify()

    nulls = database.num_nulls_ordered()
    all_variables = tuple(_null_variable(null) for null in nulls)
    null_by_variable = {_null_variable(null): null for null in nulls}
    occurring = formula.variables()
    relevant = tuple(name for name in all_variables if name in occurring)
    return TranslationResult(
        formula=formula,
        all_variables=all_variables,
        relevant_variables=relevant,
        null_by_variable=null_by_variable,
    )
