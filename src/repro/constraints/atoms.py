"""Atomic polynomial constraints ``p(z) op 0``.

Every atomic numerical formula of FO(+,.,<) -- ``t < t'`` or ``t = t'`` --
normalises to a polynomial compared against zero.  The six comparison
operators are supported so that negation stays within the atom language
(``not (p < 0)`` is ``p >= 0``), which keeps negation-normal forms small.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping, Union

from repro.constraints.polynomials import Polynomial, Scalar

#: Tolerance for equality tests on floating-point evaluations.
EVALUATION_EPS = 1e-9


class Comparison(enum.Enum):
    """Comparison operators against zero."""

    LT = "<"
    LE = "<="
    EQ = "="
    NE = "!="
    GE = ">="
    GT = ">"

    def negate(self) -> "Comparison":
        """The operator expressing the logical negation of this one."""
        return _NEGATIONS[self]

    def flip(self) -> "Comparison":
        """The operator obtained by multiplying both sides by ``-1``."""
        return _FLIPS[self]

    def holds(self, value: float, tolerance: float = EVALUATION_EPS) -> bool:
        """Whether ``value op 0`` holds, up to ``tolerance`` for equalities."""
        if self is Comparison.LT:
            return value < -tolerance
        if self is Comparison.LE:
            return value <= tolerance
        if self is Comparison.EQ:
            return abs(value) <= tolerance
        if self is Comparison.NE:
            return abs(value) > tolerance
        if self is Comparison.GE:
            return value >= -tolerance
        return value > tolerance

    def holds_for_sign(self, sign: int, identically_zero: bool) -> bool:
        """Asymptotic truth value given the eventual sign of the polynomial.

        ``sign`` is the sign of the leading non-zero coefficient along a
        direction (Lemma 8.4); ``identically_zero`` covers the degenerate
        case where the directional polynomial vanishes for every scale.
        """
        if identically_zero:
            return self in (Comparison.LE, Comparison.EQ, Comparison.GE)
        if self in (Comparison.LT, Comparison.LE):
            return sign < 0
        if self in (Comparison.GT, Comparison.GE):
            return sign > 0
        if self is Comparison.EQ:
            return False
        return True  # NE: a not-identically-zero polynomial is eventually non-zero.


_NEGATIONS = {
    Comparison.LT: Comparison.GE,
    Comparison.LE: Comparison.GT,
    Comparison.EQ: Comparison.NE,
    Comparison.NE: Comparison.EQ,
    Comparison.GE: Comparison.LT,
    Comparison.GT: Comparison.LE,
}

_FLIPS = {
    Comparison.LT: Comparison.GT,
    Comparison.LE: Comparison.GE,
    Comparison.EQ: Comparison.EQ,
    Comparison.NE: Comparison.NE,
    Comparison.GE: Comparison.LE,
    Comparison.GT: Comparison.LT,
}


@dataclass(frozen=True)
class Constraint:
    """The atomic constraint ``polynomial op 0``."""

    polynomial: Polynomial
    op: Comparison

    @classmethod
    def compare(cls, left: Union[Polynomial, Scalar], op: Comparison,
                right: Union[Polynomial, Scalar]) -> "Constraint":
        """Build ``left op right`` as ``(left - right) op 0``."""
        left_poly = Polynomial.from_value(left)
        right_poly = Polynomial.from_value(right)
        return cls(polynomial=left_poly - right_poly, op=op)

    def variables(self) -> frozenset[str]:
        return self.polynomial.variables()

    def negate(self) -> "Constraint":
        return Constraint(polynomial=self.polynomial, op=self.op.negate())

    def evaluate(self, assignment: Mapping[str, float],
                 tolerance: float = EVALUATION_EPS) -> bool:
        """Truth value of the constraint at a concrete valuation of the variables."""
        return self.op.holds(self.polynomial.evaluate(assignment), tolerance)

    def is_linear(self) -> bool:
        return self.polynomial.is_linear()

    def is_trivial(self) -> bool:
        """Whether the constraint mentions no variables (it is then a Boolean constant)."""
        return self.polynomial.is_constant()

    def trivial_value(self, tolerance: float = EVALUATION_EPS) -> bool:
        """Truth value of a variable-free constraint."""
        if not self.is_trivial():
            raise ValueError("constraint is not trivial")
        return self.op.holds(self.polynomial.constant_term(), tolerance)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Constraint({self.polynomial!r} {self.op.value} 0)"
