"""Section 10 extensions: range constraints, distributions, integer lattices.

The paper's future-work section sketches three refinements of the agnostic
model and notes that the framework "is very easily adaptable" to them.  This
module implements all three on top of the same translated constraint
formulae:

* **Range constraints** -- attributes such as a discount are known to lie in
  a bounded interval.  Nulls with bounded ranges are sampled uniformly from
  their interval; nulls left unbounded keep the asymptotic treatment.  The
  constraint appears "in both the numerator and denominator", i.e. we compute
  the conditional measure given the ranges.
* **Distributions** -- a per-null probability distribution replaces the
  uniform-over-the-ball assumption; the measure becomes the probability that
  a random valuation satisfies the formula.
* **Integer lattice** -- for integer-typed columns the volume is replaced by
  a count of lattice points inside the ball of radius ``r``; by the
  Gauss-circle asymptotics the two measures agree in the limit, which the
  tests verify on small examples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence

import numpy as np

from repro.certainty.result import CertaintyResult
from repro.compile import DEFAULT_BLOCK_SIZE, compile_formula
from repro.constraints.asymptotic import asymptotic_truth, direction_assignment
from repro.constraints.polynomials import Polynomial
from repro.constraints.translate import TranslationResult
from repro.geometry.ball import RngLike, as_generator, sample_direction
from repro.geometry.montecarlo import DEFAULT_DELTA, hoeffding_sample_size

#: A sampler for one null: receives the generator, returns a float.
Sampler = Callable[[np.random.Generator], float]


@dataclass(frozen=True)
class Range:
    """A closed interval constraint on one numerical null.

    Either bound may be ``None`` (unbounded on that side).  Fully bounded
    ranges are sampled uniformly; half-bounded ranges keep the asymptotic
    treatment but restrict the admissible directions' sign.
    """

    lower: Optional[float] = None
    upper: Optional[float] = None

    def __post_init__(self) -> None:
        if self.lower is not None and self.upper is not None and self.lower > self.upper:
            raise ValueError(f"empty range [{self.lower}, {self.upper}]")

    @property
    def is_bounded(self) -> bool:
        return self.lower is not None and self.upper is not None


def _substituted_formula(translation: TranslationResult,
                         values: Mapping[str, float]):
    """Substitute concrete values for some variables of the formula."""
    substitution = {name: Polynomial.constant(value) for name, value in values.items()}

    def substitute(formula):
        from repro.constraints.formula import (  # local import avoids a cycle
            And, Atom, FalseFormula, Not, Or, TrueFormula)
        from repro.constraints.atoms import Constraint

        if isinstance(formula, (TrueFormula, FalseFormula)):
            return formula
        if isinstance(formula, Atom):
            return Atom(Constraint(
                polynomial=formula.constraint.polynomial.substitute(substitution),
                op=formula.constraint.op))
        if isinstance(formula, Not):
            return Not(substitute(formula.child))
        if isinstance(formula, And):
            return And(tuple(substitute(child) for child in formula.children))
        if isinstance(formula, Or):
            return Or(tuple(substitute(child) for child in formula.children))
        raise TypeError(f"unexpected formula node: {type(formula).__name__}")

    return substitute(translation.formula).simplify()


def constrained_certainty(translation: TranslationResult,
                          ranges: Mapping[str, Range],
                          epsilon: float = 0.05,
                          delta: float = DEFAULT_DELTA,
                          rng: RngLike = None) -> CertaintyResult:
    """Measure of certainty under range constraints on (some of) the nulls.

    ``ranges`` maps *variable names* (``NumNull.variable``) to their range.
    Bounded nulls are drawn uniformly from their interval; the remaining
    nulls are handled asymptotically, with half-bounded ranges restricting
    the sign of the sampled direction component.
    """
    generator = as_generator(rng)
    variables = list(translation.relevant_variables)
    bounded = {name: spec for name, spec in ranges.items()
               if name in variables and spec.is_bounded}
    unbounded = [name for name in variables if name not in bounded]
    half_bounds = {name: spec for name, spec in ranges.items()
                   if name in unbounded and not spec.is_bounded
                   and (spec.lower is not None or spec.upper is not None)}

    samples = hoeffding_sample_size(epsilon, delta)
    if not bounded and unbounded:
        # No per-sample substitution: the formula compiles once and the
        # directions are decided block-wise by the batched asymptotic kernel.
        # The direction blocks come off the same generator stream as the
        # scalar per-sample draws, so seeded results agree with the
        # reference loop.
        compiled = compile_formula(translation.formula, tuple(unbounded))
        hits = 0
        remaining = samples
        while remaining:
            count = min(remaining, DEFAULT_BLOCK_SIZE)
            directions = sample_direction(len(unbounded), generator, size=count)
            for index, name in enumerate(unbounded):
                spec = half_bounds.get(name)
                if spec is None:
                    continue
                # A one-sided range only constrains the sign of the direction.
                if spec.lower is not None:
                    directions[:, index] = np.abs(directions[:, index])
                elif spec.upper is not None:
                    directions[:, index] = -np.abs(directions[:, index])
            hits += int(compiled.asymptotic_truth_batch(directions).sum())
            remaining -= count
        return _constrained_result(translation, hits, samples, epsilon, delta,
                                   variables, bounded, half_bounds)
    hits = 0
    for _ in range(samples):
        concrete = {name: generator.uniform(spec.lower, spec.upper)
                    for name, spec in bounded.items()}
        formula = _substituted_formula(translation, concrete) if concrete \
            else translation.formula
        if not unbounded:
            satisfied = formula.evaluate({})
        else:
            direction = sample_direction(len(unbounded), generator)
            assignment = direction_assignment(unbounded, direction)
            for name, spec in half_bounds.items():
                if spec.lower is not None:
                    assignment[name] = abs(assignment[name])
                elif spec.upper is not None:
                    assignment[name] = -abs(assignment[name])
            satisfied = asymptotic_truth(formula, assignment)
        if satisfied:
            hits += 1
    return _constrained_result(translation, hits, samples, epsilon, delta,
                               variables, bounded, half_bounds)


def _constrained_result(translation: TranslationResult, hits: int, samples: int,
                        epsilon: float, delta: float,
                        variables: Sequence[str],
                        bounded: Mapping[str, Range],
                        half_bounds: Mapping[str, Range]) -> CertaintyResult:
    return CertaintyResult(
        value=hits / samples,
        method="afpras",
        guarantee="additive",
        epsilon=epsilon,
        delta=delta,
        samples=samples,
        dimension=translation.dimension,
        relevant_dimension=len(variables),
        details={"extension": "range-constraints",
                 "bounded": sorted(bounded), "half_bounded": sorted(half_bounds)},
    )


def distributional_certainty(translation: TranslationResult,
                             distributions: Mapping[str, Sampler],
                             epsilon: float = 0.05,
                             delta: float = DEFAULT_DELTA,
                             rng: RngLike = None) -> CertaintyResult:
    """Probability that the candidate is an answer under per-null distributions.

    Every relevant null must have a sampler in ``distributions``; the result
    is the Monte-Carlo probability that a valuation drawn from the product of
    those distributions satisfies the candidate's constraint formula.
    """
    variables = list(translation.relevant_variables)
    missing = [name for name in variables if name not in distributions]
    if missing:
        raise ValueError(f"no distribution supplied for nulls: {missing}")
    generator = as_generator(rng)
    samples = hoeffding_sample_size(epsilon, delta)
    # Draw in the same per-sample, per-variable order as the scalar loop did
    # (the samplers are opaque callables), but decide valuations block-wise
    # with the compiled kernel.
    compiled = compile_formula(translation.formula, tuple(variables))
    hits = 0
    remaining = samples
    while remaining:
        count = min(remaining, DEFAULT_BLOCK_SIZE)
        points = np.empty((count, len(variables)))
        for row in range(count):
            for index, name in enumerate(variables):
                points[row, index] = float(distributions[name](generator))
        hits += int(compiled.evaluate_batch(points).sum())
        remaining -= count
    return CertaintyResult(
        value=hits / samples,
        method="afpras",
        guarantee="additive",
        epsilon=epsilon,
        delta=delta,
        samples=samples,
        dimension=translation.dimension,
        relevant_dimension=len(variables),
        details={"extension": "distributions"},
    )


def lattice_certainty(translation: TranslationResult,
                      radius: float,
                      epsilon: float = 0.05,
                      delta: float = DEFAULT_DELTA,
                      rng: RngLike = None) -> CertaintyResult:
    """Integer-lattice variant of ``mu_r``: count lattice points instead of volume.

    Valuations are drawn uniformly from the integer points of the ball of
    radius ``radius`` (by rejection from the enclosing cube) and the fraction
    satisfying the formula is returned.  By the Gauss-circle asymptotics this
    converges to the volumetric measure as ``radius`` grows.
    """
    if radius < 1.0:
        raise ValueError(f"radius must be at least 1, got {radius}")
    variables = list(translation.relevant_variables)
    if not variables:
        value = 1.0 if translation.formula.evaluate({}) else 0.0
        return CertaintyResult(value=value, method="exact", guarantee="exact",
                               dimension=translation.dimension, relevant_dimension=0)
    generator = as_generator(rng)
    samples = hoeffding_sample_size(epsilon, delta)
    bound = int(math.floor(radius))
    compiled = compile_formula(translation.formula, tuple(variables))
    # Vectorised rejection sampling from the lattice ball: draw candidate
    # blocks from the enclosing cube, keep those inside the ball, and decide
    # each accepted block with one kernel call.
    hits = 0
    drawn = 0
    block_size = max(256, min(samples, DEFAULT_BLOCK_SIZE))
    while drawn < samples:
        block = generator.integers(-bound, bound + 1,
                                   size=(block_size, len(variables)))
        accepted = block[np.linalg.norm(block, axis=1) <= radius]
        if accepted.shape[0] == 0:
            continue
        accepted = accepted[:samples - drawn]
        drawn += accepted.shape[0]
        hits += int(compiled.evaluate_batch(accepted.astype(float)).sum())
    return CertaintyResult(
        value=hits / samples,
        method="afpras",
        guarantee="additive",
        epsilon=epsilon,
        delta=delta,
        samples=samples,
        dimension=translation.dimension,
        relevant_dimension=len(variables),
        details={"extension": "integer-lattice", "radius": radius},
    )
