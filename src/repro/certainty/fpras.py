"""The multiplicative approximation scheme (FPRAS) for CQ(+,<) of Section 7.

For conjunctive queries with linear constraints the translated formula is a
disjunction of conjunctions of linear atoms.  Homogenising each atom (dropping
its constant term) does not change the asymptotic density, and turns each
disjunct into a convex polyhedral cone; the measure is then the fraction of
the unit ball covered by the union of those cones, which is estimated with
per-cone samplers and a Karp--Luby union estimator (see
:mod:`repro.geometry.union_volume` and the substitution note in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.certainty.result import CertaintyResult
from repro.constraints.formula import dnf_size_bound
from repro.constraints.linear import NonLinearConstraintError, formula_to_cones
from repro.constraints.translate import TranslationResult
from repro.geometry.ball import RngLike
from repro.geometry.montecarlo import DEFAULT_DELTA
from repro.geometry.union_volume import union_volume_fraction


@dataclass(frozen=True)
class FprasOptions:
    """Tunable knobs of the CQ(+,<) FPRAS."""

    epsilon: float = 0.05
    delta: float = DEFAULT_DELTA
    #: Volume-estimation strategy passed to the union estimator:
    #: ``"auto"`` (exact for <=2 relevant nulls, Karp--Luby otherwise),
    #: ``"karp-luby"`` or ``"direct"``.
    volume_method: str = "auto"
    #: Largest DNF the scheme is willing to build.  Conjunctive queries keep
    #: their translated formulae in (near-)DNF shape, so this only trips for
    #: formulae that did not really come from a CQ; those should use the
    #: AFPRAS instead.
    max_dnf_size: int = 100_000


def fpras_measure(translation: TranslationResult,
                  options: FprasOptions = FprasOptions(),
                  rng: RngLike = None) -> CertaintyResult:
    """Run the CQ(+,<) FPRAS on a translated candidate (Theorem 7.1).

    Raises :class:`NonLinearConstraintError` when the formula contains a
    non-linear atom; the caller should fall back to the AFPRAS in that case,
    exactly as the paper restricts Theorem 7.1 to linear constraints.
    """
    formula = translation.formula
    variables = translation.relevant_variables
    if not variables:
        value = 1.0 if formula.evaluate({}) else 0.0
        return CertaintyResult(
            value=value, method="fpras", guarantee="exact",
            dimension=translation.dimension, relevant_dimension=0)
    if not formula.is_linear():
        raise NonLinearConstraintError(
            "the FPRAS of Theorem 7.1 requires linear constraints; "
            "use the AFPRAS for FO(+,·,<) queries")
    if dnf_size_bound(formula, options.max_dnf_size) >= options.max_dnf_size:
        raise NonLinearConstraintError(
            "the formula's disjunctive normal form is too large for the FPRAS; "
            "use the AFPRAS instead")
    cones = formula_to_cones(formula, variables)
    estimate = union_volume_fraction(cones, epsilon=options.epsilon, rng=rng,
                                     method=options.volume_method)
    guarantee = "exact" if estimate.method in ("exact", "degenerate") else "multiplicative"
    return CertaintyResult(
        value=estimate.fraction,
        method="fpras",
        guarantee=guarantee,
        epsilon=None if guarantee == "exact" else options.epsilon,
        delta=None if guarantee == "exact" else options.delta,
        samples=estimate.samples,
        dimension=translation.dimension,
        relevant_dimension=len(variables),
        details={"cones": len(cones), "volume_method": estimate.method},
    )
