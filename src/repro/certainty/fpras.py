"""The multiplicative approximation scheme (FPRAS) for CQ(+,<) of Section 7.

For conjunctive queries with linear constraints the translated formula is a
disjunction of conjunctions of linear atoms.  Homogenising each atom (dropping
its constant term) does not change the asymptotic density, and turns each
disjunct into a convex polyhedral cone; the measure is then the fraction of
the unit ball covered by the union of those cones, which is estimated with
per-cone samplers and a Karp--Luby union estimator (see
:mod:`repro.geometry.union_volume` and the substitution note in DESIGN.md).

The paper defines an FPRAS with success probability 3/4 and notes that "the
confidence level 3/4 can be changed to any arbitrary value ``1 - delta``" by
the standard median trick.  :func:`fpras_measure` implements that trick:
when ``options.delta`` asks for more confidence than the base estimator's
3/4, it runs :func:`repro.geometry.montecarlo.amplification_rounds` many
independent estimates and returns their median
(:func:`repro.geometry.montecarlo.median_of_means`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.certainty.result import CertaintyResult
from repro.constraints.formula import dnf_size_bound
from repro.constraints.linear import NonLinearConstraintError, formula_to_cones
from repro.constraints.translate import TranslationResult
from repro.geometry.ball import RngLike, as_generator
from repro.geometry.montecarlo import (
    DEFAULT_DELTA,
    amplification_rounds,
    median_of_means,
)
from repro.geometry.union_volume import union_volume_fraction


@dataclass(frozen=True)
class FprasOptions:
    """Tunable knobs of the CQ(+,<) FPRAS."""

    epsilon: float = 0.05
    #: Failure probability.  Values below the paper's base confidence of 3/4
    #: trigger median-of-means amplification over independent runs.
    delta: float = DEFAULT_DELTA
    #: Volume-estimation strategy passed to the union estimator:
    #: ``"auto"`` (exact for <=2 relevant nulls, Karp--Luby otherwise),
    #: ``"karp-luby"`` or ``"direct"``.
    volume_method: str = "auto"
    #: Largest DNF the scheme is willing to build.  Conjunctive queries keep
    #: their translated formulae in (near-)DNF shape, so this only trips for
    #: formulae that did not really come from a CQ; those should use the
    #: AFPRAS instead.
    max_dnf_size: int = 100_000
    #: ``"batched"`` (vectorised union estimator, the default) or
    #: ``"scalar"`` (the original per-sample loops, the reference oracle).
    engine: str = "batched"


def fpras_measure(translation: TranslationResult,
                  options: FprasOptions = FprasOptions(),
                  rng: RngLike = None) -> CertaintyResult:
    """Run the CQ(+,<) FPRAS on a translated candidate (Theorem 7.1).

    Raises :class:`NonLinearConstraintError` when the formula contains a
    non-linear atom; the caller should fall back to the AFPRAS in that case,
    exactly as the paper restricts Theorem 7.1 to linear constraints.
    """
    formula = translation.formula
    variables = translation.relevant_variables
    if not variables:
        value = 1.0 if formula.evaluate({}) else 0.0
        return CertaintyResult(
            value=value, method="fpras", guarantee="exact",
            dimension=translation.dimension, relevant_dimension=0)
    if not formula.is_linear():
        raise NonLinearConstraintError(
            "the FPRAS of Theorem 7.1 requires linear constraints; "
            "use the AFPRAS for FO(+,·,<) queries")
    if dnf_size_bound(formula, options.max_dnf_size) >= options.max_dnf_size:
        raise NonLinearConstraintError(
            "the formula's disjunctive normal form is too large for the FPRAS; "
            "use the AFPRAS instead")
    cones = formula_to_cones(formula, variables)
    generator = as_generator(rng)
    estimate = union_volume_fraction(cones, epsilon=options.epsilon, rng=generator,
                                     method=options.volume_method,
                                     engine=options.engine)

    details: dict = {"cones": len(cones), "volume_method": estimate.method}
    details.update(estimate.details)
    if estimate.method in ("exact", "degenerate"):
        return CertaintyResult(
            value=estimate.fraction,
            method="fpras",
            guarantee="exact",
            samples=estimate.samples,
            dimension=translation.dimension,
            relevant_dimension=len(variables),
            details=details,
        )

    # Confidence amplification: each union estimate succeeds with probability
    # 3/4; the median of independent runs reaches 1 - delta (the generator is
    # advanced sequentially, so the rounds are independent).
    rounds = amplification_rounds(options.delta)
    value = estimate.fraction
    samples = estimate.samples
    if rounds > 1:
        values = [estimate.fraction]
        escaped = int(estimate.details.get("escaped", 0))
        for _ in range(rounds - 1):
            repeat = union_volume_fraction(cones, epsilon=options.epsilon,
                                           rng=generator,
                                           method=options.volume_method,
                                           engine=options.engine)
            values.append(repeat.fraction)
            samples += repeat.samples
            escaped += int(repeat.details.get("escaped", 0))
        value = median_of_means(values)
        details["escaped"] = escaped
    details["amplification_rounds"] = rounds

    return CertaintyResult(
        value=value,
        method="fpras",
        guarantee="multiplicative",
        epsilon=options.epsilon,
        delta=options.delta,
        samples=samples,
        dimension=translation.dimension,
        relevant_dimension=len(variables),
        details=details,
    )
