"""The additive approximation scheme (AFPRAS) of Section 8.

For any FO(+,·,<) query the measure equals the fraction of directions of the
unit ball along which the translated formula is eventually true (Lemma 8.3).
The AFPRAS therefore samples ``m >= ln(2/delta) / (2 eps^2)`` directions
uniformly at random, decides each one symbolically (Lemma 8.4), and returns
the empirical fraction.  By Hoeffding's bound the result is within ``eps`` of
``mu`` with probability at least ``1 - delta``.

Two execution engines are provided:

* the default **batched** engine compiles the formula once
  (:mod:`repro.compile`) and decides whole ``(m, n)`` blocks of directions
  with a handful of matrix products -- this is the production hot path;
* the **scalar** engine is the original per-point tree walk
  (:func:`repro.constraints.asymptotic.asymptotic_truth`), kept as the
  reference oracle the equivalence tests compare against.

Both engines draw directions from the same generator stream (NumPy fills
Gaussian blocks sequentially), so with a fixed seed they see the *same*
directions and -- the kernels matching the scalar decisions -- return the
same estimate.

The implementation also reproduces the optimisation described in the paper's
experimental section: only the coordinates of nulls that actually occur in
the candidate's constraint formula are sampled.  Unconstrained coordinates
integrate out of the volume ratio, so this does not change the value, but it
saves most of the sampling cost when a large database has many nulls of
which only a handful are relevant to any one answer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.certainty.result import CertaintyResult
from repro.compile import DEFAULT_BLOCK_SIZE, compile_formula
from repro.constraints.asymptotic import asymptotic_truth, direction_assignment
from repro.constraints.formula import ConstraintFormula
from repro.constraints.translate import TranslationResult
from repro.geometry.ball import RngLike, as_generator, sample_direction
from repro.geometry.montecarlo import (
    DEFAULT_DELTA,
    estimate_indicator_mean_batch,
    hoeffding_sample_size,
)

#: The execution engines understood by :func:`afpras_formula_measure`.
ENGINES = ("batched", "scalar")


@dataclass(frozen=True)
class AfprasOptions:
    """Tunable knobs of the AFPRAS."""

    epsilon: float = 0.05
    delta: float = DEFAULT_DELTA
    #: Sample only the coordinates of nulls occurring in the formula
    #: (the Section 9 optimisation).  Disable to benchmark its effect.
    relevant_only: bool = True
    #: ``"batched"`` (compiled NumPy kernels, the default) or ``"scalar"``
    #: (the original per-point tree walk, kept as the reference oracle).
    engine: str = "batched"
    #: Directions decided per kernel call; bounds the kernels' working set.
    block_size: int = DEFAULT_BLOCK_SIZE


def afpras_formula_measure(formula: ConstraintFormula,
                           variables: tuple[str, ...],
                           epsilon: float = 0.05,
                           delta: float = DEFAULT_DELTA,
                           rng: RngLike = None,
                           engine: str = "batched",
                           block_size: int = DEFAULT_BLOCK_SIZE) -> tuple[float, int]:
    """Estimate ``nu(formula)`` over the listed variables by direction sampling.

    Returns ``(estimate, samples)``.  With an empty variable list the formula
    is a Boolean constant and the exact value is returned with zero samples.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    if not variables:
        return (1.0 if formula.evaluate({}) else 0.0), 0
    generator = as_generator(rng)
    samples = hoeffding_sample_size(epsilon, delta)
    dimension = len(variables)

    if engine == "scalar":
        hits = 0
        for _ in range(samples):
            direction = sample_direction(dimension, generator)
            assignment = direction_assignment(variables, direction)
            if asymptotic_truth(formula, assignment):
                hits += 1
        return hits / samples, samples

    compiled = compile_formula(formula, variables)
    estimate = estimate_indicator_mean_batch(
        lambda block_generator, count: compiled.asymptotic_truth_batch(
            sample_direction(dimension, block_generator, size=count)),
        epsilon, delta, rng=generator, block_size=block_size)
    return estimate.value, estimate.samples


def afpras_measure(translation: TranslationResult,
                   options: AfprasOptions = AfprasOptions(),
                   rng: RngLike = None) -> CertaintyResult:
    """Run the AFPRAS on a translated candidate (Theorem 8.1)."""
    variables = (translation.relevant_variables if options.relevant_only
                 else translation.all_variables)
    value, samples = afpras_formula_measure(
        translation.formula, tuple(variables),
        epsilon=options.epsilon, delta=options.delta, rng=rng,
        engine=options.engine, block_size=options.block_size)
    guarantee = "exact" if samples == 0 else "additive"
    return CertaintyResult(
        value=value,
        method="afpras",
        guarantee=guarantee,
        epsilon=None if samples == 0 else options.epsilon,
        delta=None if samples == 0 else options.delta,
        samples=samples,
        dimension=translation.dimension,
        relevant_dimension=len(translation.relevant_variables),
        details={} if samples == 0 else {"engine": options.engine},
    )
