"""Finite-radius simulation of the measure, straight from its definition.

Equation (2) of the paper defines ``mu_r`` as the probability that a random
valuation of the numerical nulls drawn uniformly from the ball of radius
``r`` witnesses the candidate as an answer, and ``mu`` as the limit of
``mu_r``.  This module estimates ``mu_r`` by literally sampling valuations
and running the reference query evaluator on the resulting complete
databases.  It is far too slow to be a production path, but it is completely
independent of the constraint translation and of the asymptotic machinery,
which makes it the ideal cross-check: the integration tests verify that the
AFPRAS/FPRAS/exact values agree with the simulated ``mu_r`` for large ``r``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.certainty.result import CertaintyResult
from repro.geometry.ball import RngLike, as_generator, sample_ball
from repro.logic.evaluation import query_holds_for
from repro.logic.formulas import Query
from repro.relational.database import Database
from repro.relational.valuation import Valuation, bijective_base_valuation
from repro.relational.values import Value, is_base_null, is_num_null


@dataclass(frozen=True)
class SimulationOptions:
    """Knobs of the finite-radius simulation."""

    radius: float = 1000.0
    samples: int = 2000
    #: Valuations are built from sample blocks of this size: the ball points
    #: for a whole block come out of one vectorised draw instead of one tiny
    #: draw per sample.  (The reference query evaluator itself stays scalar
    #: -- it is the independent cross-check and must not share code with the
    #: batched kernels it validates.)
    block_size: int = 4096


def simulate_measure(query: Query, database: Database,
                     candidate: tuple[Value, ...] = (),
                     options: SimulationOptions = SimulationOptions(),
                     rng: RngLike = None) -> CertaintyResult:
    """Monte-Carlo estimate of ``mu_r`` for ``r = options.radius``.

    Base nulls are first eliminated with a bijective valuation (Proposition
    5.2 shows this does not affect the limit), then ``options.samples``
    valuations of the numerical nulls are drawn uniformly from the ball of
    radius ``options.radius`` and the candidate's membership is tested with
    the reference evaluator on each completed database.
    """
    generator = as_generator(rng)
    base_valuation = bijective_base_valuation(database)
    valued_database = base_valuation.database(database)
    valued_candidate = tuple(base_valuation.value(value) if is_base_null(value) else value
                             for value in candidate)

    nulls = valued_database.num_nulls_ordered()
    if not nulls:
        value = 1.0 if query_holds_for(query, valued_database, valued_candidate) else 0.0
        return CertaintyResult(value=value, method="simulation", guarantee="exact",
                               dimension=0, relevant_dimension=0)

    dimension = len(nulls)
    block_size = max(1, options.block_size)
    hits = 0
    remaining = options.samples
    while remaining:
        count = min(remaining, block_size)
        points = sample_ball(dimension, generator, size=count, radius=options.radius)
        valuations = [Valuation.numeric({null: float(component)
                                         for null, component in zip(nulls, point)})
                      for point in points]
        for valuation in valuations:
            complete_database = valuation.database(valued_database)
            complete_candidate = tuple(valuation.value(value) if is_num_null(value)
                                       else value
                                       for value in valued_candidate)
            if query_holds_for(query, complete_database, complete_candidate):
                hits += 1
        remaining -= count
    return CertaintyResult(
        value=hits / options.samples,
        method="simulation",
        guarantee="additive",
        epsilon=None,
        samples=options.samples,
        dimension=dimension,
        relevant_dimension=dimension,
        details={"radius": options.radius},
    )
