"""Exact computation of the measure, where it is exactly computable.

Section 6 of the paper shows that exact computation is in general out of
reach (the value may be irrational, Proposition 6.1, and already for CQ(<)
queries it is FP^{#P}-hard, Proposition 6.2), but several practically useful
cases do admit exact answers and this module implements them:

* no relevant numerical nulls: the value is 0 or 1 (the zero-one law);
* at most two relevant nulls with linear constraints: the homogenised formula
  is a union of planar cones whose measure is an exact sum of arc lengths
  (this covers the introduction's example and Proposition 6.1's closed form
  ``arctan(alpha)/(2*pi) + 1/2``);
* order-style constraints (every atom compares a single null with a constant
  or two nulls with each other): the measure is a rational number obtained by
  enumerating the signed orderings of the nulls, each of which has
  probability ``1 / (2^n * j! * (n-j)!)`` -- this is the fragment Proposition
  6.2 proves hard, so the enumeration is necessarily exponential in the
  number of nulls and is guarded by ``max_order_dimension``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from math import factorial

import numpy as np

from repro.certainty.result import CertaintyResult
from repro.compile import compile_formula
from repro.constraints.formula import ConstraintFormula, dnf_size_bound
from repro.constraints.linear import formula_to_cones
from repro.constraints.translate import TranslationResult
from repro.geometry.union_volume import union_volume_fraction


class ExactComputationError(ValueError):
    """Raised when the measure is not (known to be) exactly computable."""


@dataclass(frozen=True)
class ExactOptions:
    """Knobs of the exact backend."""

    #: Largest number of relevant nulls for which the signed-ordering
    #: enumeration is attempted (its cost is ``(n+1)!`` formula evaluations).
    max_order_dimension: int = 7
    #: Largest DNF the planar backend is willing to build; beyond this the
    #: caller should fall back to the sampling backends.
    max_dnf_size: int = 4096


def is_order_style(formula: ConstraintFormula) -> bool:
    """Whether every atom compares a null with a constant or two nulls 1:1.

    These are exactly the constraints produced by FO(<) queries: after
    homogenisation each atom's truth along a direction depends only on the
    signs of the nulls and their relative order, so the measure is a sum of
    signed-ordering cell probabilities (and in particular rational,
    Proposition 6.2).
    """
    for constraint in formula.atoms():
        if not constraint.is_linear():
            return False
        coefficients = [value for value in
                        constraint.polynomial.linear_coefficients().values()
                        if value != 0.0]
        if len(coefficients) == 0:
            continue
        if len(coefficients) == 1:
            continue
        if len(coefficients) == 2 and abs(coefficients[0] + coefficients[1]) <= 1e-12:
            continue
        return False
    return True


def _signed_ordering_measure(formula: ConstraintFormula,
                             variables: tuple[str, ...]) -> Fraction:
    """Exact rational measure by enumerating signed orderings of the nulls.

    The representative points of all ``(n+1) * n!`` signed-ordering cells are
    stacked into one matrix and decided with a single batched Lemma 8.4
    kernel call; the cell probabilities stay exact :class:`Fraction`\\ s.  The
    representative coordinates are small integers, so the kernel's
    floating-point sums are exact and its decisions match the scalar
    :func:`asymptotic_truth` walk bit for bit.
    """
    n = len(variables)
    indices = list(range(n))
    rows: list[list[float]] = []
    probabilities: list[Fraction] = []
    for negatives_count in range(n + 1):
        cell_probability = Fraction(
            1, (2**n) * factorial(negatives_count) * factorial(n - negatives_count))
        for negative_set in itertools.combinations(indices, negatives_count):
            positive_set = [index for index in indices if index not in negative_set]
            for negative_order in itertools.permutations(negative_set):
                for positive_order in itertools.permutations(positive_set):
                    point = [0.0] * n
                    # Negatives in increasing order: most negative first.
                    for rank, index in enumerate(negative_order):
                        point[index] = float(rank - negatives_count)
                    for rank, index in enumerate(positive_order):
                        point[index] = float(rank + 1)
                    rows.append(point)
                    probabilities.append(cell_probability)
    compiled = compile_formula(formula, variables)
    decisions = compiled.asymptotic_truth_batch(np.asarray(rows, dtype=float))
    total = Fraction(0)
    for decision, cell_probability in zip(decisions, probabilities):
        if decision:
            total += cell_probability
    return total


def exact_order_measure(translation: TranslationResult,
                        options: ExactOptions = ExactOptions()) -> Fraction:
    """Exact rational value of the measure for order-style constraints.

    Raises :class:`ExactComputationError` if the formula is not order-style
    or has too many relevant nulls.
    """
    variables = translation.relevant_variables
    if not variables:
        return Fraction(1) if translation.formula.evaluate({}) else Fraction(0)
    if not is_order_style(translation.formula):
        raise ExactComputationError("formula is not order-style")
    if len(variables) > options.max_order_dimension:
        raise ExactComputationError(
            f"too many relevant nulls ({len(variables)}) for signed-ordering enumeration")
    return _signed_ordering_measure(translation.formula, tuple(variables))


def exact_measure(translation: TranslationResult,
                  options: ExactOptions = ExactOptions()) -> CertaintyResult:
    """Exact value of the measure, when one of the exact backends applies."""
    formula = translation.formula
    variables = translation.relevant_variables
    dimension = translation.dimension

    if not variables:
        value = 1.0 if formula.evaluate({}) else 0.0
        return CertaintyResult(value=value, method="exact", guarantee="exact",
                               dimension=dimension, relevant_dimension=0)

    if formula.is_linear() and len(variables) <= 2 \
            and dnf_size_bound(formula, options.max_dnf_size) < options.max_dnf_size:
        cones = formula_to_cones(formula, variables)
        estimate = union_volume_fraction(cones, method="auto")
        if estimate.method in ("exact", "degenerate"):
            return CertaintyResult(
                value=estimate.fraction, method="exact", guarantee="exact",
                dimension=dimension, relevant_dimension=len(variables),
                details={"backend": "planar-cones"})

    if is_order_style(formula) and len(variables) <= options.max_order_dimension:
        value = _signed_ordering_measure(formula, tuple(variables))
        return CertaintyResult(
            value=float(value), method="exact", guarantee="exact",
            dimension=dimension, relevant_dimension=len(variables),
            details={"backend": "signed-orderings",
                     "rational": (value.numerator, value.denominator)})

    raise ExactComputationError(
        "no exact backend applies; use the AFPRAS (additive) or, for CQ(+,<), "
        "the FPRAS (multiplicative)")
