"""Result objects returned by the certainty estimators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class CertaintyResult:
    """The estimated measure of certainty of one candidate answer.

    Attributes
    ----------
    value:
        The (estimated) value of ``mu(q, D, t)``, in ``[0, 1]``.
    method:
        How the value was obtained: ``"exact"``, ``"afpras"``, ``"fpras"``,
        ``"zero-one"`` or ``"simulation"``.
    epsilon, delta:
        The accuracy and failure-probability parameters used (``None`` for
        exact values).
    guarantee:
        ``"additive"``, ``"multiplicative"`` or ``"exact"``.
    samples:
        Number of Monte-Carlo samples drawn (0 for exact values).
    dimension:
        Number of numerical nulls in the database (the ambient dimension of
        the support sets).
    relevant_dimension:
        Number of numerical nulls that actually influence the candidate (the
        Section 9 optimisation samples only these coordinates).
    """

    value: float
    method: str
    guarantee: str = "exact"
    epsilon: Optional[float] = None
    delta: Optional[float] = None
    samples: int = 0
    dimension: int = 0
    relevant_dimension: int = 0
    details: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.value <= 1.0 + 1e-9:
            raise ValueError(f"certainty value must be in [0, 1], got {self.value}")
        object.__setattr__(self, "value", min(1.0, max(0.0, float(self.value))))

    def interval(self) -> tuple[float, float]:
        """Error interval implied by the guarantee (clipped to ``[0, 1]``)."""
        if self.epsilon is None or self.guarantee == "exact":
            return (self.value, self.value)
        if self.guarantee == "additive":
            return (max(0.0, self.value - self.epsilon), min(1.0, self.value + self.epsilon))
        # Multiplicative guarantee: value / (1 + eps) <= mu <= value / (1 - eps).
        lower = self.value / (1.0 + self.epsilon)
        upper = self.value / (1.0 - self.epsilon) if self.epsilon < 1.0 else 1.0
        return (max(0.0, lower), min(1.0, upper))

    def is_certain(self) -> bool:
        """Whether the answer is (up to the guarantee) almost surely certain."""
        return self.interval()[0] >= 1.0 - 1e-12

    def is_impossible(self) -> bool:
        """Whether the answer is (up to the guarantee) almost surely not an answer."""
        return self.interval()[1] <= 1e-12
