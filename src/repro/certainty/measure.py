"""The public entry point for computing the measure of certainty ``mu(q, D, t)``.

:func:`certainty` ties together the translation of Proposition 5.3 and the
three computation backends:

* the **exact** backend (zero-one law, planar cones, signed orderings) when
  one of its cases applies;
* the **FPRAS** of Theorem 7.1 (multiplicative guarantee) for conjunctive
  queries with linear constraints;
* the **AFPRAS** of Theorem 8.1 (additive guarantee) for arbitrary
  FO(+,·,<) queries -- the default fallback, and the algorithm evaluated in
  the paper's experiments.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.certainty.afpras import AfprasOptions, afpras_measure
from repro.certainty.exact import ExactComputationError, ExactOptions, exact_measure
from repro.certainty.fpras import FprasOptions, fpras_measure
from repro.certainty.result import CertaintyResult
from repro.certainty.simulate import SimulationOptions, simulate_measure
from repro.constraints.linear import NonLinearConstraintError
from repro.constraints.translate import TranslationResult, translate
from repro.geometry.ball import RngLike
from repro.geometry.montecarlo import DEFAULT_DELTA
from repro.logic.fragments import classify_query
from repro.logic.formulas import Query
from repro.logic.typecheck import check_query
from repro.relational.database import Database
from repro.relational.values import Value

#: The methods accepted by :func:`certainty`.
METHODS = ("auto", "exact", "afpras", "fpras", "simulate")


def certainty(query: Query,
              database: Database,
              candidate: Sequence[Value] = (),
              epsilon: float = 0.05,
              delta: float = DEFAULT_DELTA,
              method: str = "auto",
              rng: RngLike = None,
              translation: Optional[TranslationResult] = None) -> CertaintyResult:
    """Compute (or approximate) the measure of certainty ``mu(q, D, candidate)``.

    Parameters
    ----------
    query, database, candidate:
        The query, the incomplete database, and the candidate answer tuple
        (one component per head variable; empty for Boolean queries).
    epsilon, delta:
        Accuracy and failure probability of the randomized backends.  The
        paper's definitions use ``delta = 1/4``; smaller values are obtained
        by more sampling.
    method:
        ``"auto"`` picks the cheapest applicable backend (exact where
        possible, then FPRAS for CQ(+,<), then AFPRAS).  The other values
        force a specific backend.
    rng:
        Seed or :class:`numpy.random.Generator` for reproducibility.
    translation:
        A pre-computed :class:`TranslationResult` (e.g. from the engine's
        lineage extraction); if omitted it is computed here.

    Returns
    -------
    CertaintyResult
        The value together with the backend used and its guarantee.
    """
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; expected one of {METHODS}")
    check_query(query, database.schema)

    if method == "simulate":
        return simulate_measure(query, database, tuple(candidate),
                                SimulationOptions(), rng=rng)

    if translation is None:
        translation = translate(query, database, candidate)

    if method == "exact":
        return exact_measure(translation, ExactOptions())
    if method == "fpras":
        return fpras_measure(translation, FprasOptions(epsilon=epsilon, delta=delta), rng=rng)
    if method == "afpras":
        return afpras_measure(translation, AfprasOptions(epsilon=epsilon, delta=delta), rng=rng)

    # method == "auto"
    try:
        return exact_measure(translation, ExactOptions())
    except ExactComputationError:
        pass
    fragment = classify_query(query)
    if fragment.has_fpras:
        try:
            return fpras_measure(translation,
                                 FprasOptions(epsilon=epsilon, delta=delta), rng=rng)
        except NonLinearConstraintError:
            pass
    return afpras_measure(translation, AfprasOptions(epsilon=epsilon, delta=delta), rng=rng)


def certainty_from_translation(translation: TranslationResult,
                               epsilon: float = 0.05,
                               delta: float = DEFAULT_DELTA,
                               method: str = "auto",
                               rng: RngLike = None) -> CertaintyResult:
    """Compute the measure directly from a translated constraint formula.

    This is the path the SQL engine uses: candidate answers come with their
    lineage formula already extracted, so re-translating the query would be
    wasted work.
    """
    if method == "exact":
        return exact_measure(translation, ExactOptions())
    if method == "fpras":
        return fpras_measure(translation, FprasOptions(epsilon=epsilon, delta=delta), rng=rng)
    if method == "afpras":
        return afpras_measure(translation, AfprasOptions(epsilon=epsilon, delta=delta), rng=rng)
    if method != "auto":
        raise ValueError(f"unknown method {method!r}")
    try:
        return exact_measure(translation, ExactOptions())
    except ExactComputationError:
        pass
    if translation.formula.is_linear():
        try:
            return fpras_measure(translation,
                                 FprasOptions(epsilon=epsilon, delta=delta), rng=rng)
        except NonLinearConstraintError:
            # Linear but with a DNF too large to materialise: fall through.
            pass
    return afpras_measure(translation, AfprasOptions(epsilon=epsilon, delta=delta), rng=rng)
