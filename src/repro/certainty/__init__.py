"""The measure of certainty ``mu(q, D, t)`` and its computation backends.

This subpackage is the paper's primary contribution:

* :mod:`repro.certainty.measure` -- the public :func:`certainty` entry point
  dispatching between the backends;
* :mod:`repro.certainty.exact` -- exact values where available (zero-one law,
  planar cones, signed-ordering enumeration);
* :mod:`repro.certainty.fpras` -- the multiplicative FPRAS for CQ(+,<)
  (Theorem 7.1);
* :mod:`repro.certainty.afpras` -- the additive AFPRAS for all FO(+,·,<)
  queries (Theorem 8.1), the algorithm of the paper's experiments;
* :mod:`repro.certainty.simulate` -- finite-radius simulation of ``mu_r``
  straight from the definition, used as an independent cross-check;
* :mod:`repro.certainty.zero_one` -- the classical 0/1 law recovered when
  there are no numerical nulls;
* :mod:`repro.certainty.extensions` -- the Section 10 extensions (range
  constraints, distributions, integer lattices).
"""

from repro.certainty.afpras import AfprasOptions, afpras_formula_measure, afpras_measure
from repro.certainty.exact import (
    ExactComputationError,
    ExactOptions,
    exact_measure,
    exact_order_measure,
    is_order_style,
)
from repro.certainty.extensions import (
    Range,
    constrained_certainty,
    distributional_certainty,
    lattice_certainty,
)
from repro.certainty.fpras import FprasOptions, fpras_measure
from repro.certainty.measure import certainty, certainty_from_translation
from repro.certainty.result import CertaintyResult
from repro.certainty.simulate import SimulationOptions, simulate_measure
from repro.certainty.zero_one import naive_holds, zero_one_certainty

__all__ = [
    "AfprasOptions",
    "CertaintyResult",
    "ExactComputationError",
    "ExactOptions",
    "FprasOptions",
    "Range",
    "SimulationOptions",
    "afpras_formula_measure",
    "afpras_measure",
    "certainty",
    "certainty_from_translation",
    "constrained_certainty",
    "distributional_certainty",
    "exact_measure",
    "exact_order_measure",
    "fpras_measure",
    "is_order_style",
    "lattice_certainty",
    "naive_holds",
    "simulate_measure",
    "zero_one_certainty",
]
