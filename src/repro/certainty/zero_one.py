"""The zero-one law for queries without numerical constraints.

When a database has no numerical nulls (or the candidate's membership does
not depend on them), the measure of certainty degenerates to the 0/1 law of
[Libkin, PODS'18] recalled in Section 2 of the paper: ``mu(q, D, a) = 1``
exactly when ``a`` is returned by the *naive evaluation* of ``q`` on ``D``,
i.e. by treating nulls as fresh constants distinct from everything else.
The Remark at the end of Section 4 shows the new measure is a conservative
generalisation of that law (``Vol(R^0) = 1``).
"""

from __future__ import annotations

from typing import Sequence

from repro.certainty.result import CertaintyResult
from repro.logic.evaluation import query_holds_for
from repro.logic.formulas import Query
from repro.relational.database import Database
from repro.relational.valuation import bijective_base_valuation
from repro.relational.values import Value, is_base_null, is_num_null


def naive_holds(query: Query, database: Database, candidate: Sequence[Value]) -> bool:
    """Whether ``candidate`` is returned by the naive evaluation of ``query`` on ``database``.

    Naive evaluation treats nulls as fresh constants: base nulls are replaced
    by fresh base constants (a bijective valuation), and the database must not
    contain numerical nulls -- with numerical nulls the 0/1 law no longer
    applies and the full measure must be used instead.
    """
    if database.num_nulls():
        raise ValueError(
            "naive evaluation applies only to databases without numerical nulls")
    if any(is_num_null(value) for value in candidate):
        raise ValueError("candidate contains a numerical null")
    valuation = bijective_base_valuation(database)
    valued_database = valuation.database(database)
    valued_candidate = tuple(valuation.value(value) if is_base_null(value) else value
                             for value in candidate)
    return query_holds_for(query, valued_database, valued_candidate)


def zero_one_certainty(query: Query, database: Database,
                       candidate: Sequence[Value] = ()) -> CertaintyResult:
    """``mu(q, D, a)`` for databases without numerical nulls (always 0 or 1)."""
    value = 1.0 if naive_holds(query, database, candidate) else 0.0
    return CertaintyResult(
        value=value,
        method="zero-one",
        guarantee="exact",
        dimension=0,
        relevant_dimension=0,
    )
