"""The annotated-answer record served back to clients.

Historically this dataclass lived in :mod:`repro.engine.annotate`; it moved
here when the annotate entry points became thin wrappers over the service,
so that the service package never has to import the engine's annotate module
(which imports the service -- the one cycle the layering must avoid).  The
old import path still works via the re-export in ``repro.engine.annotate``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.certainty.result import CertaintyResult
from repro.relational.values import Value


@dataclass(frozen=True)
class AnnotatedAnswer:
    """A candidate answer together with its measure of certainty."""

    values: tuple[Value, ...]
    columns: tuple[str, ...]
    certainty: CertaintyResult
    witnesses: int
    #: SHA-256 digest of the canonical lineage this answer's certainty was
    #: decided under (``None`` when the answer bypassed the scheduler).  The
    #: network server ships it to clients, which lets a remote caller verify
    #: that two answers shared one estimate -- and lets tests compare served
    #: answers against a local run digest for digest.
    lineage_digest: Optional[bytes] = None

    def as_dict(self) -> dict[str, Value]:
        return dict(zip(self.columns, self.values))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rendered = ", ".join(f"{column}={value!r}"
                             for column, value in zip(self.columns, self.values))
        return f"AnnotatedAnswer({rendered}, mu≈{self.certainty.value:.3f})"
