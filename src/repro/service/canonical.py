"""Null-renaming-invariant canonical forms of lineage formulae.

The measure of certainty ``nu(phi)`` only depends on the *shape* of the
constraint formula: it is the asymptotic fraction of the unit ball satisfying
``phi``, and the uniform measure on the ball is invariant under permuting or
renaming coordinates.  Two candidate answers whose lineages are identical up
to renaming the numerical nulls therefore have exactly the same certainty --
a situation that arises constantly in practice, because every tuple of a
generated table carries its own nulls but the query applies the same
arithmetic pattern to each of them.

This module computes a canonical representative: the relevant variables are
renamed positionally (``v0, v1, ...`` in the order of the candidate's
``relevant_variables`` tuple, which follows the database's ambient null
order) and the formula is rebuilt over the new names.  Lineages that agree
after this renaming share one cache entry, one compiled kernel, and one
Monte-Carlo estimate.  The renaming is order-preserving, so the key is
*sound* for any pair it identifies; pairs that only match under a
non-monotone permutation of the variables are treated as distinct (a cache
miss, never a wrong answer).

The canonical form also carries a SHA-256 digest of a deterministic
serialisation.  The digest is stable across processes (Python's salted
``hash()`` is never used) and doubles as the spawn key of the per-task RNG
streams -- see :mod:`repro.service.rng`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Mapping

from repro.constraints.atoms import Constraint
from repro.constraints.formula import (
    And,
    Atom,
    ConstraintFormula,
    FalseFormula,
    Not,
    Or,
    TrueFormula,
)
from repro.constraints.polynomials import Polynomial
from repro.constraints.translate import TranslationResult
from repro.relational.values import NumNull


class CanonicalisationError(ValueError):
    """Raised when a formula mentions variables outside the relevant tuple."""


@dataclass(frozen=True)
class CanonicalLineage:
    """A lineage formula rebuilt over positional variable names.

    ``formula`` and ``variables`` are hashable, so ``key`` can index the
    service's result cache directly; ``digest`` keys the RNG spawn so that
    the Monte-Carlo estimate of a canonical lineage is a pure function of
    ``(digest, seed, epsilon, delta, method)`` regardless of which request,
    group index, or worker thread computes it.
    """

    formula: ConstraintFormula
    variables: tuple[str, ...]
    digest: bytes

    @property
    def key(self) -> tuple[ConstraintFormula, tuple[str, ...]]:
        return (self.formula, self.variables)

    @property
    def short(self) -> str:
        """Eight-hex-character digest prefix for logs and wire payloads."""
        return self.digest.hex()[:8]

    @property
    def dimension(self) -> int:
        return len(self.variables)

    def translation(self) -> TranslationResult:
        """A self-contained translation over the canonical variables.

        The estimators only consume the formula and the variable tuple; the
        ambient dimension of the *database* is patched back onto the result
        by the service, since it is the same for every group.
        """
        return TranslationResult(
            formula=self.formula,
            all_variables=self.variables,
            relevant_variables=self.variables,
            null_by_variable={name: NumNull(name) for name in self.variables},
        )


def _rename_polynomial(polynomial: Polynomial, mapping: Mapping[str, str]) -> Polynomial:
    renamed: dict = {}
    for monomial, coefficient in polynomial.coefficients.items():
        try:
            new_monomial = tuple(sorted((mapping[name], exponent)
                                        for name, exponent in monomial))
        except KeyError as error:
            raise CanonicalisationError(
                f"formula variable {error.args[0]!r} is not in the relevant tuple")
        renamed[new_monomial] = renamed.get(new_monomial, 0.0) + coefficient
    return Polynomial(renamed)


def _rename_formula(formula: ConstraintFormula,
                    mapping: Mapping[str, str]) -> ConstraintFormula:
    if isinstance(formula, (TrueFormula, FalseFormula)):
        return formula
    if isinstance(formula, Atom):
        constraint = formula.constraint
        return Atom(Constraint(polynomial=_rename_polynomial(constraint.polynomial, mapping),
                               op=constraint.op))
    if isinstance(formula, Not):
        return Not(_rename_formula(formula.child, mapping))
    if isinstance(formula, And):
        return And(tuple(_rename_formula(child, mapping) for child in formula.children))
    if isinstance(formula, Or):
        return Or(tuple(_rename_formula(child, mapping) for child in formula.children))
    raise CanonicalisationError(f"unexpected formula node: {type(formula).__name__}")


def _serialise(formula: ConstraintFormula, parts: list[str]) -> None:
    """Append a deterministic textual form of ``formula`` to ``parts``.

    Floats are serialised with ``repr`` (shortest round-trip form), monomials
    in sorted order; the result depends only on the formula's value, never on
    interpreter identity or hash randomisation.
    """
    if isinstance(formula, TrueFormula):
        parts.append("T")
    elif isinstance(formula, FalseFormula):
        parts.append("F")
    elif isinstance(formula, Atom):
        constraint = formula.constraint
        parts.append(f"A{constraint.op.value}(")
        for monomial, coefficient in sorted(constraint.polynomial.coefficients.items()):
            terms = ",".join(f"{name}^{exponent}" for name, exponent in monomial)
            parts.append(f"{terms}:{coefficient!r};")
        parts.append(")")
    elif isinstance(formula, Not):
        parts.append("!(")
        _serialise(formula.child, parts)
        parts.append(")")
    elif isinstance(formula, (And, Or)):
        parts.append("&(" if isinstance(formula, And) else "|(")
        for child in formula.children:
            _serialise(child, parts)
            parts.append(",")
        parts.append(")")
    else:
        raise CanonicalisationError(f"unexpected formula node: {type(formula).__name__}")


def canonicalise(formula: ConstraintFormula,
                 relevant_variables: tuple[str, ...]) -> CanonicalLineage:
    """Canonical form of ``(formula, relevant_variables)`` under null renaming.

    ``relevant_variables`` must cover every variable of the formula (it does
    for any :class:`TranslationResult`); position ``i`` is renamed to
    ``v{i}``.
    """
    mapping = {name: f"v{index}" for index, name in enumerate(relevant_variables)}
    renamed = _rename_formula(formula, mapping)
    variables = tuple(mapping[name] for name in relevant_variables)
    parts: list[str] = [f"d{len(variables)}:"]
    _serialise(renamed, parts)
    digest = hashlib.sha256("".join(parts).encode("utf-8")).digest()
    return CanonicalLineage(formula=renamed, variables=variables, digest=digest)


def canonicalise_lineage(lineage: TranslationResult) -> CanonicalLineage:
    """Canonicalise a translated candidate's lineage."""
    return canonicalise(lineage.formula, tuple(lineage.relevant_variables))
