"""Adaptive precision: coarse answers first, refined toward the target ε.

The Hoeffding sample size grows as ``1/eps^2``, so an estimate at ``4 eps``
costs 1/16th of the final one.  For interactive serving that asymmetry is
worth exploiting: the service first decides a lineage at a coarse error
level and *streams* the resulting confidence interval to the caller, then
refines geometrically (halving ε each stage) until the requested precision
is reached.  Early stages let a client render answers -- or discard tuples
whose interval already pins them as certain/impossible -- long before the
expensive final stage lands; the whole schedule costs at most
``1 + 1/4 + 1/16 + ... < 4/3`` of the direct single-shot estimate.

Interval discipline: stage ``k`` runs with failure budget ``delta / K`` (a
union bound over the ``K`` stages keeps the overall failure probability at
``delta``), and the streamed interval is the running *intersection* of all
stage intervals.  Intersection makes the reported intervals monotonically
tightening by construction -- a later, sharper stage can only shrink what an
earlier stage established -- and remains valid because with probability
``1 - delta`` every stage interval contains the true measure simultaneously.

Each stage draws from its own spawned stream (stage index appended to the
task's spawn key), so adaptive runs are as order- and parallelism-independent
as single-shot ones.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional

import numpy as np

from repro.certainty.measure import certainty_from_translation
from repro.certainty.result import CertaintyResult
from repro.constraints.translate import TranslationResult
from repro.geometry.montecarlo import DEFAULT_DELTA

#: Coarsest error level the first stage is allowed to use.
DEFAULT_COARSE_EPSILON = 0.2

#: Geometric refinement factor between consecutive stages.
DEFAULT_REFINEMENT_FACTOR = 2.0


@dataclass(frozen=True)
class AdaptiveUpdate:
    """One streamed refinement step of an adaptive estimate."""

    stage: int
    stages: int
    epsilon: float
    value: float
    #: Running intersection of the stage intervals so far; never wider than
    #: the previous update's interval.
    interval: tuple[float, float]
    samples: int
    final: bool


#: Callback invoked after every stage with the streamed update.
UpdateCallback = Callable[[AdaptiveUpdate], None]


def adaptive_schedule(epsilon: float,
                      coarse: float = DEFAULT_COARSE_EPSILON,
                      factor: float = DEFAULT_REFINEMENT_FACTOR) -> list[float]:
    """The descending ε schedule ending exactly at the requested ``epsilon``.

    Stages run at ``epsilon * factor^k`` for the largest ``k`` keeping the
    coarsest stage at or below ``coarse``; a request at or above ``coarse``
    degenerates to a single stage.
    """
    if not 0.0 < epsilon <= 1.0:
        raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
    if factor <= 1.0:
        raise ValueError(f"refinement factor must exceed 1, got {factor}")
    schedule = [epsilon]
    while schedule[-1] * factor <= coarse:
        schedule.append(schedule[-1] * factor)
    schedule.reverse()
    return schedule


def intersect_intervals(previous: Optional[tuple[float, float]],
                        interval: tuple[float, float]) -> tuple[float, float]:
    """Running intersection of stage intervals (the ladder's monotonicity).

    Shared with the fused per-rung ladder (:mod:`repro.service.fused`),
    which must intersect exactly as the per-group ladder does.
    """
    if previous is None:
        return interval
    low = max(previous[0], interval[0])
    high = min(previous[1], interval[1])
    if low > high:
        # Disjoint stage intervals can only happen on the < delta failure
        # event; collapse to the boundary midpoint so monotonicity survives.
        midpoint = (low + high) / 2.0
        return (midpoint, midpoint)
    return (low, high)


#: Backwards-compatible private alias (pre-PR 6 internal name).
_intersect = intersect_intervals


def adaptive_certainty(translation: TranslationResult,
                       epsilon: float,
                       delta: float = DEFAULT_DELTA,
                       method: str = "afpras",
                       stream_factory: Callable[[int], np.random.Generator] = None,
                       on_update: Optional[UpdateCallback] = None,
                       coarse: float = DEFAULT_COARSE_EPSILON,
                       factor: float = DEFAULT_REFINEMENT_FACTOR) -> CertaintyResult:
    """Progressively refine one lineage's certainty down to ``epsilon``.

    ``stream_factory(stage)`` must return the stage's random stream (the
    service passes a spawn keyed on the lineage digest and stage index).
    The returned result carries the final-stage estimate at the requested
    ``epsilon`` with the refinement trace under ``details["adaptive"]`` and
    the final intersected interval under ``details["interval"]``.
    """
    if stream_factory is None:
        generator = np.random.default_rng()
        stream_factory = lambda stage: generator  # noqa: E731 - trivial default
    schedule = adaptive_schedule(epsilon, coarse=coarse, factor=factor)
    stages = len(schedule)
    stage_delta = delta / stages
    interval: Optional[tuple[float, float]] = None
    trace: list[dict] = []
    result: Optional[CertaintyResult] = None
    for stage, stage_epsilon in enumerate(schedule):
        result = certainty_from_translation(
            translation, epsilon=stage_epsilon, delta=stage_delta,
            method=method, rng=stream_factory(stage))
        exact = result.guarantee == "exact"
        final = exact or stage == stages - 1
        interval = _intersect(interval, result.interval())
        trace.append({
            "stage": stage,
            "epsilon": None if exact else stage_epsilon,
            "value": result.value,
            "interval": list(interval),
            "samples": result.samples,
        })
        if on_update is not None:
            on_update(AdaptiveUpdate(
                stage=stage, stages=stages,
                epsilon=stage_epsilon, value=result.value,
                interval=interval, samples=result.samples, final=final))
        if exact:
            # An exact backend answered; further sampling cannot improve it.
            break
    total_samples = sum(entry["samples"] for entry in trace)
    details = dict(result.details)
    details["adaptive"] = trace
    details["interval"] = list(interval)
    if result.guarantee == "exact":
        return replace(result, samples=total_samples, details=details)
    # The union bound over stages makes the whole trace -- in particular the
    # final stage at the requested epsilon -- valid at the requested delta.
    return replace(result, samples=total_samples, delta=delta, details=details)
