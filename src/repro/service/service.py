"""The annotation service: cached, parallel, adaptive-precision query serving.

:class:`AnnotationService` owns the full request lifecycle that the PR 1
pipeline re-ran from scratch on every ``annotate_query`` call:

1. **parse** -- SQL text is canonicalised (whitespace-collapsed) and parsed
   once per distinct query text (parse cache);
2. **plan** -- candidate enumeration with lineage extraction runs once per
   ``(query, limit, semantics)`` against the service's database snapshot
   (plan cache);
3. **schedule** -- candidates are grouped by the null-renaming-invariant
   canonical form of their lineage (:mod:`repro.service.scheduler`), so one
   compiled-kernel estimate decides a whole group;
4. **execute** -- groups run across ``jobs`` worker threads, each drawing
   from a stream spawned off the request's ``SeedSequence`` under a spawn
   key derived from the lineage digest (:mod:`repro.service.rng`), which
   makes parallel runs bit-identical to serial ones;
5. **estimate** -- either single-shot at the requested ε, or adaptively
   (coarse first, streamed refinement; :mod:`repro.service.adaptive`);
   results land in the certainty cache keyed by
   ``(canonical lineage, ε, δ, method, adaptive, seed)`` so structurally
   repeated requests skip the Monte-Carlo phase entirely.

The compiled-kernel memo of :mod:`repro.compile` sits underneath all of
this; its hit/miss counters are surfaced in :meth:`AnnotationService.stats`
alongside the service's own caches.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.caching import CacheStats, LruCache
from repro.certainty.measure import certainty_from_translation
from repro.certainty.result import CertaintyResult
from repro.compile import compile_cache_stats
from repro.geometry.montecarlo import DEFAULT_DELTA
from repro.service.adaptive import (
    DEFAULT_COARSE_EPSILON,
    DEFAULT_REFINEMENT_FACTOR,
    AdaptiveUpdate,
    adaptive_certainty,
)
from repro.service.answers import AnnotatedAnswer
from repro.service.canonical import CanonicalLineage
from repro.service.executor import run_tasks
from repro.service.rng import SeedLike, root_sequence, spawn_stream
from repro.service.scheduler import TaskGroup, build_schedule

#: Methods the service can dispatch on a pre-translated lineage.
SERVICE_METHODS = ("auto", "exact", "afpras", "fpras")

#: Callback receiving streamed adaptive refinements: ``(group, update)``.
GroupUpdateCallback = Callable[[TaskGroup, AdaptiveUpdate], None]


@dataclass(frozen=True)
class ServiceOptions:
    """Request defaults and cache sizing of an :class:`AnnotationService`."""

    epsilon: float = 0.05
    delta: float = DEFAULT_DELTA
    method: str = "afpras"
    #: Worker threads per request; 1 = serial, 0 = one per CPU.
    jobs: int = 1
    #: Serve coarse estimates first and refine toward the requested epsilon.
    adaptive: bool = False
    adaptive_coarse: float = DEFAULT_COARSE_EPSILON
    adaptive_factor: float = DEFAULT_REFINEMENT_FACTOR
    #: Root seed used when a request does not carry its own.
    seed: SeedLike = None
    #: Storage/execution backend for candidate enumeration: ``"rows"``
    #: (row-at-a-time reference engine), ``"columnar"`` (vectorized engine
    #: over NumPy column arrays), or ``None`` to follow the database's own
    #: backend.  The service converts its database snapshot once at
    #: construction, so every planned request runs on the chosen layout.
    backend: Optional[str] = None
    #: Reuse certainty results across tuples and requests with the same
    #: canonical lineage (the PR 1 ad-hoc annotate-loop reuse, generalised).
    reuse_results: bool = True
    parse_cache_size: int = 256
    plan_cache_size: int = 128
    result_cache_size: int = 4096


@dataclass(frozen=True)
class RequestStats:
    """What one request cost and how much of it was amortised."""

    candidates: int
    #: Distinct canonical lineages scheduled.
    groups: int
    #: Groups answered straight from the certainty cache.
    groups_from_cache: int
    #: Groups actually estimated (kernel invocations) this request.
    groups_computed: int
    #: Tuples that shared another tuple's estimate (batching win).
    tuples_batched: int
    elapsed_seconds: float
    seed_entropy: int


@dataclass(frozen=True)
class ServiceResponse:
    """Annotated answers plus the request's amortisation accounting."""

    answers: tuple[AnnotatedAnswer, ...]
    stats: RequestStats


@dataclass(frozen=True)
class ServiceStats:
    """Lifetime counters and per-cache snapshots for the stats report."""

    requests: int
    answers_served: int
    estimates_computed: int
    estimates_reused: int
    tuples_batched: int
    caches: tuple[CacheStats, ...] = field(default_factory=tuple)

    def report(self) -> str:
        """Human-readable multi-line report (the ``serve`` REPL's ``\\stats``)."""
        lines = [
            f"requests            {self.requests}",
            f"answers served      {self.answers_served}",
            f"estimates computed  {self.estimates_computed}",
            f"estimates reused    {self.estimates_reused}",
            f"tuples batched      {self.tuples_batched}",
            "cache               cap    size   hits  misses  evict  hit-rate",
        ]
        for cache in self.caches:
            lines.append(
                f"{cache.name:<18} {cache.capacity:>5} {cache.size:>7} "
                f"{cache.hits:>6} {cache.misses:>7} {cache.evictions:>6} "
                f"{cache.hit_rate:>9.1%}")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "answers_served": self.answers_served,
            "estimates_computed": self.estimates_computed,
            "estimates_reused": self.estimates_reused,
            "tuples_batched": self.tuples_batched,
            "caches": [cache.as_dict() for cache in self.caches],
        }


def _normalise_sql(sql: str) -> str:
    """Whitespace-insensitive cache key for SQL text."""
    return " ".join(sql.split())


def _seed_token(root: np.random.SeedSequence) -> tuple:
    """Hashable identity of a root sequence for the certainty-cache key.

    Both the entropy *and* the spawn key matter: two children of the same
    parent (``SeedSequence(0).spawn(2)``) share entropy but draw different
    streams, so collapsing them onto one cache slot would serve an estimate
    computed under a different stream than a cold run would use.
    """
    entropy = root.entropy
    if isinstance(entropy, (list, tuple, np.ndarray)):
        entropy = tuple(int(word) for word in entropy)
    return (entropy, tuple(int(word) for word in root.spawn_key))


class AnnotationService:
    """Serve certainty-annotated answers for SQL queries over one database.

    The service treats its database as a stable snapshot: every cache keys
    off query text and formula structure only.  Call :meth:`invalidate`
    after mutating the database.
    """

    def __init__(self, database, options: Optional[ServiceOptions] = None,
                 **overrides) -> None:
        if options is None:
            options = ServiceOptions()
        if overrides:
            options = replace(options, **overrides)
        if options.method not in SERVICE_METHODS:
            raise ValueError(
                f"unknown method {options.method!r}; expected one of {SERVICE_METHODS}")
        if options.backend is not None:
            # One conversion at construction; the snapshot then serves every
            # request under the requested layout.
            database = database.with_backend(options.backend)
        self._database = database
        self._options = options
        self._dimension = len(database.num_nulls_ordered())
        # The fallback root for requests without their own seed is drawn
        # once per service: with ``options.seed=None`` this fixes fresh OS
        # entropy at construction, so repeated seedless requests still share
        # the certainty cache (a per-request fresh root would make every
        # cache key unique and silently disable cross-request reuse).
        self._default_root = root_sequence(options.seed)
        self._parse_cache = LruCache(options.parse_cache_size, name="parsed sql")
        self._plan_cache = LruCache(options.plan_cache_size, name="candidates")
        self._result_cache = LruCache(options.result_cache_size, name="certainty")
        self._requests = 0
        self._answers_served = 0
        self._estimates_computed = 0
        self._estimates_reused = 0
        self._tuples_batched = 0

    # -- public API --------------------------------------------------------

    @property
    def database(self):
        return self._database

    @property
    def options(self) -> ServiceOptions:
        return self._options

    def annotate(self, query, **request) -> list[AnnotatedAnswer]:
        """Annotate and return just the answers (see :meth:`submit`)."""
        return list(self.submit(query, **request).answers)

    def submit(self, query, *,
               candidates: Optional[Sequence] = None,
               epsilon: Optional[float] = None,
               delta: Optional[float] = None,
               method: Optional[str] = None,
               limit: Optional[int] = None,
               seed: SeedLike = None,
               jobs: Optional[int] = None,
               adaptive: Optional[bool] = None,
               group_witnesses: bool = True,
               reuse_results: Optional[bool] = None,
               on_update: Optional[GroupUpdateCallback] = None) -> ServiceResponse:
        """Run one annotation request through the full service lifecycle.

        ``query`` is SQL text or a parsed ``SelectQuery``; ``candidates``
        may carry a pre-enumerated candidate list (the benchmarks use this
        to time the Monte-Carlo phase separately from the join).  Request
        parameters default to the service's :class:`ServiceOptions`.
        """
        started = time.perf_counter()
        options = self._options
        epsilon = options.epsilon if epsilon is None else epsilon
        delta = options.delta if delta is None else delta
        method = options.method if method is None else method
        jobs = options.jobs if jobs is None else jobs
        adaptive = options.adaptive if adaptive is None else adaptive
        reuse = options.reuse_results if reuse_results is None else reuse_results
        if method not in SERVICE_METHODS:
            raise ValueError(
                f"unknown method {method!r}; expected one of {SERVICE_METHODS}")
        root = self._default_root if seed is None else root_sequence(seed)
        seed_token = _seed_token(root)

        select = self._parse(query)
        if candidates is None:
            candidates = self._plan(query, select, limit, group_witnesses)

        if reuse:
            schedule = build_schedule(candidates)
        else:
            # Independent estimates per tuple: one single-member group per
            # candidate, each with a distinct replica token in its stream.
            schedule = [TaskGroup(canonical=group.canonical, members=(index,))
                        for group in build_schedule(candidates)
                        for index in group.members]

        def decide(group: TaskGroup) -> tuple[CertaintyResult, bool]:
            key = (group.canonical.key, epsilon, delta, method, adaptive, seed_token)
            if reuse:
                cached = self._result_cache.get(key)
                if cached is not None:
                    return cached, True
            replica = () if reuse else (group.members[0],)
            result = self._estimate(group, epsilon, delta, method, adaptive,
                                    root, replica, on_update)
            if reuse:
                self._result_cache.put(key, result)
            return result, False

        outcomes = run_tasks(
            [lambda group=group: decide(group) for group in schedule], jobs=jobs)

        by_candidate: dict[int, CertaintyResult] = {}
        from_cache = 0
        for group, (result, cached) in zip(schedule, outcomes):
            if cached:
                from_cache += 1
            for member in group.members:
                by_candidate[member] = result

        answers = tuple(
            AnnotatedAnswer(values=candidate.values, columns=candidate.columns,
                            certainty=by_candidate[index],
                            witnesses=candidate.witnesses)
            for index, candidate in enumerate(candidates))

        computed = len(schedule) - from_cache
        batched = len(candidates) - len(schedule)
        self._requests += 1
        self._answers_served += len(answers)
        self._estimates_computed += computed
        self._estimates_reused += from_cache
        self._tuples_batched += batched
        stats = RequestStats(
            candidates=len(candidates),
            groups=len(schedule),
            groups_from_cache=from_cache,
            groups_computed=computed,
            tuples_batched=batched,
            elapsed_seconds=time.perf_counter() - started,
            seed_entropy=seed_token[0] if isinstance(seed_token[0], int) else 0,
        )
        return ServiceResponse(answers=answers, stats=stats)

    def stats(self) -> ServiceStats:
        """Lifetime counters plus snapshots of every cache layer."""
        return ServiceStats(
            requests=self._requests,
            answers_served=self._answers_served,
            estimates_computed=self._estimates_computed,
            estimates_reused=self._estimates_reused,
            tuples_batched=self._tuples_batched,
            caches=(
                self._parse_cache.stats(),
                self._plan_cache.stats(),
                self._result_cache.stats(),
                compile_cache_stats(),
            ),
        )

    def invalidate(self) -> None:
        """Drop every cached artefact (call after mutating the database)."""
        self._parse_cache.clear()
        self._plan_cache.clear()
        self._result_cache.clear()

    # -- lifecycle stages --------------------------------------------------

    def _parse(self, query):
        if not isinstance(query, str):
            return query
        from repro.engine.sql.parser import parse_sql
        key = _normalise_sql(query)
        return self._parse_cache.get_or_compute(key, lambda: parse_sql(query))

    def _plan(self, query, select, limit: Optional[int],
              group_witnesses: bool) -> tuple:
        from repro.engine.candidates import enumerate_candidates

        def enumerate_() -> tuple:
            return tuple(enumerate_candidates(select, self._database, limit=limit,
                                              group_witnesses=group_witnesses))

        if not isinstance(query, str):
            # No stable text key; planning an AST is not cached.
            return enumerate_()
        key = (_normalise_sql(query), limit, group_witnesses)
        return self._plan_cache.get_or_compute(key, enumerate_)

    def _estimate(self, group: TaskGroup, epsilon: float, delta: float,
                  method: str, adaptive: bool, root: np.random.SeedSequence,
                  replica: tuple[int, ...],
                  on_update: Optional[GroupUpdateCallback]) -> CertaintyResult:
        canonical = group.canonical
        translation = canonical.translation()
        if adaptive:
            callback = None
            if on_update is not None:
                callback = lambda update: on_update(group, update)  # noqa: E731
            result = adaptive_certainty(
                translation, epsilon=epsilon, delta=delta, method=method,
                stream_factory=lambda stage: spawn_stream(
                    root, canonical.digest, *replica, stage),
                on_update=callback,
                coarse=self._options.adaptive_coarse,
                factor=self._options.adaptive_factor)
        else:
            result = certainty_from_translation(
                translation, epsilon=epsilon, delta=delta, method=method,
                rng=spawn_stream(root, canonical.digest, *replica))
        # The canonical translation deliberately forgets the database's
        # ambient dimension; patch it back for faithful result metadata.
        return replace(result, dimension=self._dimension,
                       relevant_dimension=canonical.dimension)
