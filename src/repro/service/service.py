"""The annotation service: cached, parallel, adaptive-precision query serving.

:class:`AnnotationService` owns the full request lifecycle that the PR 1
pipeline re-ran from scratch on every ``annotate_query`` call:

1. **parse** -- SQL text is canonicalised (whitespace-collapsed) and parsed
   once per distinct query text (parse cache);
2. **plan** -- candidate enumeration with lineage extraction runs once per
   ``(query, limit, semantics)`` against the service's database snapshot
   (plan cache);
3. **schedule** -- candidates are grouped by the null-renaming-invariant
   canonical form of their lineage (:mod:`repro.service.scheduler`), so one
   compiled-kernel estimate decides a whole group;
4. **execute** -- groups run across ``jobs`` worker threads, each drawing
   from a stream spawned off the request's ``SeedSequence`` under a spawn
   key derived from the lineage digest (:mod:`repro.service.rng`), which
   makes parallel runs bit-identical to serial ones;
5. **estimate** -- either single-shot at the requested ε, or adaptively
   (coarse first, streamed refinement; :mod:`repro.service.adaptive`);
   results land in the certainty cache keyed by
   ``(canonical lineage, ε, δ, method, adaptive, seed)`` so structurally
   repeated requests skip the Monte-Carlo phase entirely.

The compiled-kernel memo of :mod:`repro.compile` sits underneath all of
this; its hit/miss counters are surfaced in :meth:`AnnotationService.stats`
alongside the service's own caches.
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.caching import CacheStats, LruCache, SingleFlight, SingleFlightStats
from repro.certainty.measure import certainty_from_translation
from repro.certainty.result import CertaintyResult
from repro.compile import compile_cache_stats
from repro.geometry.montecarlo import DEFAULT_DELTA
from repro.service.adaptive import (
    DEFAULT_COARSE_EPSILON,
    DEFAULT_REFINEMENT_FACTOR,
    AdaptiveUpdate,
    adaptive_certainty,
)
from repro.service.answers import AnnotatedAnswer
from repro.service.canonical import CanonicalLineage
from repro.service.executor import EXECUTORS, process_map, run_tasks
from repro.service.fused import (
    FusedTask,
    decide_fused_batch,
    fusable_method,
    fused_payload,
    run_fused_payload,
)
from repro.obs.recorder import NULL_RECORDER
from repro.obs.trace import NULL_TRACE, Trace
from repro.service.planner import PLANNER_MODES, Planner, PlannerStats
from repro.service.rng import SeedLike, root_sequence, spawn_stream
from repro.service.scheduler import TaskGroup, build_schedule, partition_batches

#: Methods the service can dispatch on a pre-translated lineage.
SERVICE_METHODS = ("auto", "exact", "afpras", "fpras")

#: Callback receiving streamed adaptive refinements: ``(group, update)``.
GroupUpdateCallback = Callable[[TaskGroup, AdaptiveUpdate], None]


@dataclass(frozen=True)
class ServiceOptions:
    """Request defaults and cache sizing of an :class:`AnnotationService`."""

    epsilon: float = 0.05
    delta: float = DEFAULT_DELTA
    method: str = "afpras"
    #: Workers per request; 1 = serial, 0 = one per CPU.
    jobs: int = 1
    #: What ``jobs`` spans: ``"thread"`` workers share the process (the
    #: PR 2 executor; caches shared, zero shipping cost), ``"process"``
    #: workers span cores for the CPU-bound Monte-Carlo phase.  Results are
    #: bit-identical either way -- streams are content-keyed, not
    #: scheduling-keyed.  Sharded candidate enumeration always uses
    #: processes when ``jobs > 1``, independent of this knob.
    executor: str = "thread"
    #: Serve coarse estimates first and refine toward the requested epsilon.
    adaptive: bool = False
    adaptive_coarse: float = DEFAULT_COARSE_EPSILON
    adaptive_factor: float = DEFAULT_REFINEMENT_FACTOR
    #: Root seed used when a request does not carry its own.
    seed: SeedLike = None
    #: Storage/execution backend for candidate enumeration: ``"rows"``
    #: (row-at-a-time reference engine), ``"columnar"`` (vectorized engine
    #: over NumPy column arrays), or ``None`` to follow the database's own
    #: backend.  The service converts its database snapshot once at
    #: construction, so every planned request runs on the chosen layout.
    backend: Optional[str] = None
    #: Key-aligned shard count for columnar candidate enumeration; ``None``
    #: follows the database's own ``shards`` declaration.  With ``jobs > 1``
    #: shard frontiers run across worker processes.
    shards: Optional[int] = None
    #: Reuse certainty results across tuples and requests with the same
    #: canonical lineage (the PR 1 ad-hoc annotate-loop reuse, generalised).
    reuse_results: bool = True
    #: ``"manual"`` executes exactly the configuration given (today's
    #: behavior, byte for byte); ``"auto"`` lets the cost-based planner
    #: (:mod:`repro.service.planner`) pick backend, shards, jobs, executor
    #: and fusion batch size per request.  Explicit per-request arguments
    #: always win over the planner.  Answers are identical either way.
    planner: str = "manual"
    #: Fusion batch size for the Monte-Carlo phase: group estimates are
    #: decided ``fusion`` lineages at a time through one block-diagonal
    #: fused kernel (:mod:`repro.compile.fusion`).  ``0``/``1`` keeps the
    #: per-group path.  Results are bit-identical at any batch size.
    fusion: int = 0
    parse_cache_size: int = 256
    plan_cache_size: int = 128
    result_cache_size: int = 4096


@dataclass(frozen=True)
class RequestStats:
    """What one request cost and how much of it was amortised."""

    candidates: int
    #: Distinct canonical lineages scheduled.
    groups: int
    #: Groups answered straight from the certainty cache.
    groups_from_cache: int
    #: Groups actually estimated (kernel invocations) this request.
    groups_computed: int
    #: Tuples that shared another tuple's estimate (batching win).
    tuples_batched: int
    elapsed_seconds: float
    seed_entropy: int
    #: Fused kernel launches this request (0 when fusion was off).
    kernels_launched: int = 0
    #: Tuples whose estimates rode a fused launch.
    tuples_fused: int = 0
    #: Fused batches executed (one per mode-partitioned group batch).
    fusion_batches: int = 0
    #: The planner's decision for this request (``None`` in manual mode).
    planned: Optional[dict] = None


@dataclass(frozen=True)
class ServiceResponse:
    """Annotated answers plus the request's amortisation accounting."""

    answers: tuple[AnnotatedAnswer, ...]
    stats: RequestStats
    #: The request's span tree, populated only when the caller asked for
    #: tracing (``submit(..., trace=True)`` or by passing a ``Trace``).
    trace: Optional[Trace] = None


@dataclass(frozen=True)
class BackendStats:
    """Request and plan-cache counters attributed to one execution backend."""

    backend: str
    requests: int
    plan_hits: int
    plan_misses: int


@dataclass(frozen=True)
class ShardStats:
    """Lifetime counters of one shard index of the sharded enumeration path."""

    shard: int
    #: Frontier computations this shard executed.
    tasks: int
    #: Input rows the shard's tables contributed across those tasks.
    rows: int
    #: Witnesses the shard produced (pre-merge frontier size).
    witnesses: int
    #: Sharded plans whose partitions (every queried table's) were served
    #: from the partition cache vs. plans that had to partition at least
    #: one table.
    partition_hits: int
    partition_misses: int


@dataclass(frozen=True)
class FusionStats:
    """Lifetime fused-execution counters (the do-more-per-launch ledger)."""

    #: Fused kernel launches (one per Monte-Carlo block per fused batch).
    kernels_launched: int
    #: Tuples whose estimates were decided through a fused launch.
    tuples_fused: int
    #: Fused batches executed.
    batches: int
    #: Recent fused batch sizes (most recent last, bounded window).
    batch_sizes: tuple[int, ...] = ()

    def as_dict(self) -> dict:
        return {"kernels_launched": self.kernels_launched,
                "tuples_fused": self.tuples_fused,
                "batches": self.batches,
                "batch_sizes": list(self.batch_sizes)}


@dataclass(frozen=True)
class ServiceStats:
    """Lifetime counters and per-cache snapshots for the stats report."""

    requests: int
    answers_served: int
    estimates_computed: int
    estimates_reused: int
    tuples_batched: int
    caches: tuple[CacheStats, ...] = field(default_factory=tuple)
    backends: tuple[BackendStats, ...] = field(default_factory=tuple)
    shards: tuple[ShardStats, ...] = field(default_factory=tuple)
    #: Cross-request estimate coalescing (concurrent identical lineages
    #: joining one computation); ``None`` on snapshots predating the server.
    single_flight: Optional[SingleFlightStats] = None
    #: Fused-execution counters; ``None`` on snapshots predating fusion.
    fusion: Optional[FusionStats] = None
    #: Cost-based planner counters; ``None`` when no request was planned.
    planner: Optional[PlannerStats] = None
    #: Top-K slow queries (dicts from :meth:`SlowQuery.as_dict`); empty
    #: when the service runs without a recorder.
    slow_queries: tuple = ()
    #: MVCC version of the database snapshot currently served (0 until the
    #: first committed mutation).
    data_version: int = 0
    #: Committed mutation statements over the service's lifetime.
    mutations_applied: int = 0
    #: Certainty results dropped by delta-driven invalidation (their
    #: recorded lineage touched mutated rows) vs. kept warm across
    #: versions.
    results_evicted: int = 0
    results_retained: int = 0

    def report(self) -> str:
        """Human-readable multi-line report (the ``serve`` REPL's ``\\stats``)."""
        lines = [
            f"requests            {self.requests}",
            f"answers served      {self.answers_served}",
            f"estimates computed  {self.estimates_computed}",
            f"estimates reused    {self.estimates_reused}",
            f"tuples batched      {self.tuples_batched}",
            f"data version        {self.data_version} "
            f"({self.mutations_applied} mutations, "
            f"{self.results_evicted} results evicted, "
            f"{self.results_retained} retained)",
        ]
        if self.single_flight is not None:
            lines.append(
                f"estimate flights    {self.single_flight.launches} launched, "
                f"{self.single_flight.joins} joined, "
                f"{self.single_flight.in_flight} in flight")
        if self.fusion is not None:
            lines.append(
                f"fused kernels       {self.fusion.kernels_launched} launched, "
                f"{self.fusion.tuples_fused} tuples in "
                f"{self.fusion.batches} batches")
        if self.planner is not None and self.planner.plans:
            choices = ", ".join(
                f"{backend}:{count}" for backend, count
                in sorted(self.planner.backend_choices.items()))
            lines.append(
                f"planner             {self.planner.plans} plans "
                f"({choices or 'none'}), {self.planner.fused_plans} fused")
        lines.append(
            "cache               cap    size   hits  misses  evict  hit-rate")
        for cache in self.caches:
            lines.append(
                f"{cache.name:<18} {cache.capacity:>5} {cache.size:>7} "
                f"{cache.hits:>6} {cache.misses:>7} {cache.evictions:>6} "
                f"{cache.hit_rate:>9.1%}")
        lines.append("backend            requests   plan-hits  plan-misses")
        for backend in self.backends:
            lines.append(
                f"{backend.backend:<18} {backend.requests:>8} "
                f"{backend.plan_hits:>11} {backend.plan_misses:>12}")
        if self.shards:
            lines.append(
                "shard      tasks      rows  witnesses  part-hits  part-misses")
            for shard in self.shards:
                lines.append(
                    f"shard[{shard.shard}] {shard.tasks:>8} {shard.rows:>9} "
                    f"{shard.witnesses:>10} {shard.partition_hits:>10} "
                    f"{shard.partition_misses:>12}")
        if self.slow_queries:
            lines.append("slow queries        elapsed  hottest-phase  sql")
            for entry in self.slow_queries:
                phases = entry.get("phases", {})
                hottest = (max(phases.items(), key=lambda item: item[1])[0]
                           if phases else "-")
                sql = entry.get("sql", "?").replace("\x00", " ")
                lines.append(
                    f"  {entry.get('elapsed_seconds', 0.0):>16.4f}s "
                    f"{hottest:>13}  {sql[:60]}")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "answers_served": self.answers_served,
            "estimates_computed": self.estimates_computed,
            "estimates_reused": self.estimates_reused,
            "tuples_batched": self.tuples_batched,
            "caches": [cache.as_dict() for cache in self.caches],
            "backends": [
                {"backend": backend.backend, "requests": backend.requests,
                 "plan_hits": backend.plan_hits,
                 "plan_misses": backend.plan_misses}
                for backend in self.backends],
            "shards": [
                {"shard": shard.shard, "tasks": shard.tasks,
                 "rows": shard.rows, "witnesses": shard.witnesses,
                 "partition_hits": shard.partition_hits,
                 "partition_misses": shard.partition_misses}
                for shard in self.shards],
            "single_flight": (None if self.single_flight is None
                              else self.single_flight.as_dict()),
            "fusion": None if self.fusion is None else self.fusion.as_dict(),
            "planner": (None if self.planner is None
                        else self.planner.as_dict()),
            "slow_queries": [dict(entry) for entry in self.slow_queries],
            "data_version": self.data_version,
            "mutations_applied": self.mutations_applied,
            "results_evicted": self.results_evicted,
            "results_retained": self.results_retained,
        }


#: A single-quoted SQL string literal (``''`` escapes a quote), matching
#: the lexer's own token shape.
_SQL_LITERAL = re.compile(r"'(?:[^']|'')*'")


def normalise_sql(sql: str) -> str:
    """Whitespace-insensitive cache/coalescing key for SQL text.

    Whitespace is collapsed only *outside* single-quoted string literals:
    ``WHERE seg = 'a  b'`` and ``WHERE seg = 'a b'`` are different queries
    and must never share a parse-cache entry or a coalescing flight, while
    the same query reformatted across lines must.  Chunks are rejoined
    around the verbatim literals with a NUL separator so a key is
    unambiguous; it is a key, not re-parseable SQL.
    """
    parts: list[str] = []
    last = 0
    for match in _SQL_LITERAL.finditer(sql):
        parts.append(" ".join(sql[last:match.start()].split()))
        parts.append(match.group(0))
        last = match.end()
    parts.append(" ".join(sql[last:].split()))
    if len(parts) == 1:
        return parts[0]
    return "\x00".join(parts)


#: Backwards-compatible private alias (pre-PR 5 internal name).
_normalise_sql = normalise_sql


def _seed_token(root: np.random.SeedSequence) -> tuple:
    """Hashable identity of a root sequence for the certainty-cache key.

    Both the entropy *and* the spawn key matter: two children of the same
    parent (``SeedSequence(0).spawn(2)``) share entropy but draw different
    streams, so collapsing them onto one cache slot would serve an estimate
    computed under a different stream than a cold run would use.
    """
    entropy = root.entropy
    if isinstance(entropy, (list, tuple, np.ndarray)):
        entropy = tuple(int(word) for word in entropy)
    return (entropy, tuple(int(word) for word in root.spawn_key))


class AnnotationService:
    """Serve certainty-annotated answers for SQL queries over one database.

    The service holds an immutable database *snapshot* and serves every
    request against the snapshot current at submit time (MVCC: a request
    pins its snapshot for its whole lifecycle, so a concurrent
    :meth:`mutate` never tears a running request).  Mutations are
    serialised by a writer lock, commit a new snapshot version, and drive
    *delta* invalidation: plan-cache keys carry per-table versions (stale
    plans become unreachable, untouched tables stay warm), certainty
    results are evicted only when their recorded lineage nulls intersect
    the mutation's deleted/updated rows, and the join-frontier cache
    delta-joins appended rows instead of re-enumerating.  The wholesale
    :meth:`invalidate` remains for out-of-band database edits.
    """

    def __init__(self, database, options: Optional[ServiceOptions] = None,
                 recorder=None, **overrides) -> None:
        if options is None:
            options = ServiceOptions()
        if overrides:
            options = replace(options, **overrides)
        if options.method not in SERVICE_METHODS:
            raise ValueError(
                f"unknown method {options.method!r}; expected one of {SERVICE_METHODS}")
        if options.executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {options.executor!r}; expected one of {EXECUTORS}")
        if options.planner not in PLANNER_MODES:
            raise ValueError(
                f"unknown planner mode {options.planner!r}; "
                f"expected one of {PLANNER_MODES}")
        if options.fusion < 0:
            raise ValueError(
                f"fusion batch size must be non-negative, got {options.fusion}")
        if options.backend is not None:
            # One conversion at construction; the snapshot then serves every
            # request under the requested layout.
            database = database.with_backend(options.backend,
                                             shards=options.shards)
        elif options.shards is not None and hasattr(database, "with_shards"):
            database = database.with_shards(options.shards)
        self._database = database
        self._options = options
        self._dimension = len(database.num_nulls_ordered())
        # The fallback root for requests without their own seed is drawn
        # once per service: with ``options.seed=None`` this fixes fresh OS
        # entropy at construction, so repeated seedless requests still share
        # the certainty cache (a per-request fresh root would make every
        # cache key unique and silently disable cross-request reuse).
        self._default_root = root_sequence(options.seed)
        self._parse_cache = LruCache(options.parse_cache_size, name="parsed sql")
        self._plan_cache = LruCache(options.plan_cache_size, name="candidates")
        self._result_cache = LruCache(options.result_cache_size, name="certainty")
        # Incremental join-frontier maintenance for the unsharded columnar
        # path: after an append-only mutation, re-enumeration delta-joins
        # only the appended rows (see FrontierCache in engine.vectorized).
        from repro.engine.vectorized import FrontierCache
        self._frontier_cache = FrontierCache()
        # Delta-driven invalidation bookkeeping: result-cache key -> names
        # of the marked nulls its served lineages actually touched.  A
        # mutation evicts exactly the keys whose nulls it deleted/updated.
        self._result_provenance: dict[tuple, frozenset[str]] = {}
        self._provenance_lock = threading.Lock()
        # Writers are serialised; readers never take this lock.
        self._mutation_lock = threading.Lock()
        self._mutations_applied = 0
        self._results_evicted = 0
        # Concurrent requests (the network server runs submits on worker
        # threads) racing on a cold canonical lineage join one estimate
        # instead of computing it twice: one computation, one cache fill.
        self._estimate_flights = SingleFlight(name="estimate flights")
        self._requests = 0
        self._answers_served = 0
        self._estimates_computed = 0
        self._estimates_reused = 0
        self._tuples_batched = 0
        self._kernels_launched = 0
        self._tuples_fused = 0
        self._fusion_batches = 0
        #: Recent fused batch sizes (bounded window for the stats report).
        self._fusion_batch_sizes: list[int] = []
        #: backend name -> requests executed on it (auto mode may route a
        #: request to a different snapshot than the constructed one).
        self._backend_requests: dict[str, int] = {}
        # The cost-based planner and its alternate-backend snapshots are
        # created lazily: a manual-only service never pays for either.
        self._planner_instance: Optional[Planner] = None
        self._database_views: dict[tuple[str, int], object] = {}
        self._views_lock = threading.Lock()
        #: shard index -> [tasks, rows, witnesses, partition hits, misses].
        self._shard_counters: dict[int, list[int]] = {}
        # The network server calls ``submit`` from worker threads; unlocked
        # read-modify-write would drop increments and skew the very
        # counters the coalescing audit relies on.
        self._counters_lock = threading.Lock()
        # The disabled recorder costs one attribute check per request; the
        # server attaches a live one via ``use_recorder``.
        self._recorder = recorder if recorder is not None else NULL_RECORDER

    @property
    def recorder(self):
        return self._recorder

    def use_recorder(self, recorder) -> None:
        """Attach a live :class:`~repro.obs.recorder.Recorder` (or swap the
        null one back in with :data:`~repro.obs.recorder.NULL_RECORDER`)."""
        self._recorder = recorder if recorder is not None else NULL_RECORDER

    # -- public API --------------------------------------------------------

    @property
    def database(self):
        return self._database

    @property
    def options(self) -> ServiceOptions:
        return self._options

    def annotate(self, query, **request) -> list[AnnotatedAnswer]:
        """Annotate and return just the answers (see :meth:`submit`)."""
        return list(self.submit(query, **request).answers)

    def submit(self, query, *,
               candidates: Optional[Sequence] = None,
               epsilon: Optional[float] = None,
               delta: Optional[float] = None,
               method: Optional[str] = None,
               limit: Optional[int] = None,
               seed: SeedLike = None,
               jobs: Optional[int] = None,
               executor: Optional[str] = None,
               adaptive: Optional[bool] = None,
               group_witnesses: bool = True,
               reuse_results: Optional[bool] = None,
               planner: Optional[str] = None,
               fusion: Optional[int] = None,
               trace: Union[bool, Trace, None] = None,
               on_update: Optional[GroupUpdateCallback] = None) -> ServiceResponse:
        """Run one annotation request through the full service lifecycle.

        ``query`` is SQL text or a parsed ``SelectQuery``; ``candidates``
        may carry a pre-enumerated candidate list (the benchmarks use this
        to time the Monte-Carlo phase separately from the join).  Request
        parameters default to the service's :class:`ServiceOptions`.

        With ``planner="auto"`` the cost-based planner fills every execution
        knob the caller left unset (backend, shards, jobs, executor, fusion
        batch); explicit arguments always win.  Answers are identical under
        every configuration the planner may pick.

        ``trace=True`` (or a caller-supplied :class:`~repro.obs.trace.Trace`)
        records the request's span tree and returns it on
        :attr:`ServiceResponse.trace`.  Tracing never touches random
        streams, so traced answers are bit-identical to untraced ones.
        """
        started = time.perf_counter()
        options = self._options
        requested_jobs, requested_executor, requested_fusion = (
            jobs, executor, fusion)
        epsilon = options.epsilon if epsilon is None else epsilon
        delta = options.delta if delta is None else delta
        method = options.method if method is None else method
        jobs = options.jobs if jobs is None else jobs
        executor = options.executor if executor is None else executor
        adaptive = options.adaptive if adaptive is None else adaptive
        reuse = options.reuse_results if reuse_results is None else reuse_results
        planner = options.planner if planner is None else planner
        fusion = options.fusion if fusion is None else fusion
        if method not in SERVICE_METHODS:
            raise ValueError(
                f"unknown method {method!r}; expected one of {SERVICE_METHODS}")
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}")
        if planner not in PLANNER_MODES:
            raise ValueError(
                f"unknown planner mode {planner!r}; "
                f"expected one of {PLANNER_MODES}")
        if fusion < 0:
            raise ValueError(
                f"fusion batch size must be non-negative, got {fusion}")
        root = self._default_root if seed is None else root_sequence(seed)
        seed_token = _seed_token(root)

        # Three tracing tiers: a caller-requested trace is returned on the
        # response; a live recorder gets an internal trace (phase histograms
        # and the slow log are fed from its spans); otherwise the shared
        # no-op trace keeps the hot path exactly as fast as before.
        return_trace = bool(trace)
        if isinstance(trace, Trace):
            tr = trace
        elif trace:
            tr = Trace()
        elif self._recorder.enabled:
            tr = self._recorder.start_trace()
        else:
            tr = NULL_TRACE

        with tr.span("parse"):
            select = self._parse(query)
        # Pin the snapshot once: a concurrent mutate() swaps self._database
        # to the next version, but this request keeps the version it
        # started on end to end (MVCC snapshot isolation).
        database = self._database
        plan_engine: Optional[Planner] = None
        planned: Optional[dict] = None
        if planner == "auto":
            plan_engine = self._get_planner()
            if candidates is None:
                with tr.span("plan", stage="enumeration") as plan_span:
                    from repro.engine.candidates import workload_cardinalities
                    try:
                        cardinalities = workload_cardinalities(select,
                                                               database)
                    except Exception:
                        cardinalities = ()
                    if cardinalities:
                        backend, shards = plan_engine.plan_enumeration(
                            cardinalities)
                        database = self._database_for(backend, shards)
                        plan_span.set("backend", backend)
                        plan_span.set("shards", shards)
                        if requested_jobs is None and shards > 1:
                            # Sharded enumeration wants one worker per shard.
                            jobs = min(plan_engine.cpus, shards)
        if candidates is None:
            with tr.span("enumerate") as enumerate_span:
                candidates = self._plan(query, select, limit, group_witnesses,
                                        jobs, database, span=enumerate_span)
                enumerate_span.set("candidates", len(candidates))

        with tr.span("schedule") as schedule_span:
            if reuse:
                schedule = build_schedule(candidates)
            else:
                # Independent estimates per tuple: one single-member group per
                # candidate, each with a distinct replica token in its stream.
                schedule = [TaskGroup(canonical=group.canonical,
                                      members=(index,))
                            for group in build_schedule(candidates)
                            for index in group.members]
            schedule_span.set("groups", len(schedule))

        if plan_engine is not None:
            with tr.span("plan", stage="execution") as plan_span:
                plan_jobs, plan_executor, plan_fusion = \
                    plan_engine.plan_execution(
                        len(schedule),
                        [group.canonical.dimension for group in schedule],
                        epsilon=epsilon, delta=delta, method=method,
                        adaptive=adaptive, coarse=options.adaptive_coarse,
                        factor=options.adaptive_factor)
                if requested_jobs is None:
                    # Enumeration (above) already used the shard-aligned
                    # worker count; from here ``jobs`` governs the
                    # Monte-Carlo phase.
                    jobs = plan_jobs
                if requested_executor is None:
                    executor = plan_executor
                if requested_fusion is None:
                    fusion = plan_fusion
                planned = {"backend": getattr(database, "backend", "rows"),
                           "shards": getattr(database, "shards", 1),
                           "jobs": jobs, "executor": executor,
                           "fusion": fusion}
                for knob, choice in planned.items():
                    plan_span.set(knob, choice)

        def cache_key(group: TaskGroup) -> tuple:
            return (group.canonical.key, epsilon, delta, method, adaptive,
                    seed_token)

        if reuse:
            # Record which marked nulls each group's lineages touch, so a
            # later mutation can evict exactly the affected cache entries.
            self._record_provenance(schedule, candidates, cache_key)

        def _estimate_group(group: TaskGroup,
                            span=None) -> tuple[CertaintyResult, bool]:
            result = self._estimate(group, epsilon, delta, method,
                                    adaptive, root, (group.members[0],),
                                    on_update, trace=tr, parent=span)
            return result, False

        def _decide_cold(group: TaskGroup, key,
                         span=None) -> tuple[CertaintyResult, bool]:
            """The estimate after a counted certainty-cache miss."""

            def compute() -> tuple[CertaintyResult, bool]:
                # Re-probe under flight leadership: a racing request may
                # have filled the cache between our miss above and winning
                # this flight (its fill happens before its flight is
                # vacated, so missing both is impossible).  This makes
                # "exactly one computation per lineage" an invariant, not
                # a fast path.
                landed = self._result_cache.peek(key)
                if landed is not None:
                    return self._patch_dimension(landed), False
                result = self._estimate(group, epsilon, delta, method,
                                        adaptive, root, (), on_update,
                                        trace=tr, parent=span)
                self._result_cache.put(key, result)
                return result, True

            # Single-flight on the canonical lineage digest: a concurrent
            # request racing on the same cold lineage joins this estimate
            # rather than recomputing it.  Joined results are accounted as
            # reuse -- exactly one computation and one cache fill happen.
            (result, computed), leader = self._estimate_flights.run(
                (group.canonical.digest, epsilon, delta, method, adaptive,
                 seed_token), compute)
            return result, not (leader and computed)

        def _decide(group: TaskGroup, span=None) -> tuple[CertaintyResult, bool]:
            if not reuse:
                return _estimate_group(group, span)
            key = cache_key(group)
            cached = self._result_cache.get(key)
            if cached is not None:
                return self._patch_dimension(cached), True
            return _decide_cold(group, key, span)

        if tr is NULL_TRACE:
            # The uninstrumented closure, byte for byte: the disabled path
            # pays nothing per group.
            decide = _decide
        else:
            def decide(group: TaskGroup) -> tuple[CertaintyResult, bool]:
                # A certainty-cache hit costs microseconds; opening a span
                # for it would make warm traces (and the warm hot path --
                # the bench_obs overhead gate) pay dozens of empty
                # per-group spans per request.  The counted get happens
                # here instead of inside `_decide`, once, with exactly the
                # bare path's hit/miss and recency semantics -- the span
                # only exists when an estimate actually runs.
                if reuse:
                    key = cache_key(group)
                    cached = self._result_cache.get(key)
                    if cached is not None:
                        return self._patch_dimension(cached), True
                    # Spans from executor worker threads attach via the
                    # explicit parent handle, so the tree survives thread
                    # fan-out.
                    with tr.span("estimate",
                                 lineage=group.canonical.digest.hex()[:12],
                                 tuples=len(group.members)) as span:
                        result, reused = _decide_cold(group, key, span)
                        span.set("reused", reused)
                        return result, reused
                with tr.span("estimate",
                             lineage=group.canonical.digest.hex()[:12],
                             tuples=len(group.members)) as span:
                    result, reused = _estimate_group(group, span)
                    span.set("reused", reused)
                    return result, reused

        # Adaptive streaming callbacks need to run in this process, so the
        # process executor only takes over callback-free requests; results
        # are bit-identical either way (streams are content-keyed).
        fusion_counters: Optional[dict] = None
        if fusion > 1 and len(schedule) > 1:
            outcomes, fusion_counters = self._decide_with_fusion(
                schedule, decide, cache_key, reuse, epsilon, delta, method,
                adaptive, root, jobs, executor, fusion, on_update, trace=tr)
        elif executor == "process" and jobs > 1 and on_update is None:
            # Worker processes cannot carry the trace; one umbrella span
            # stands in for the per-group breakdown.
            with tr.span("estimate", mode="process", groups=len(schedule)):
                outcomes = self._decide_in_processes(
                    schedule, cache_key, reuse, epsilon, delta, method,
                    adaptive, root, jobs)
        else:
            outcomes = run_tasks(
                [lambda group=group: decide(group) for group in schedule],
                jobs=jobs)

        with tr.span("serialize") as serialize_span:
            by_candidate: dict[int, CertaintyResult] = {}
            digest_by_candidate: dict[int, bytes] = {}
            from_cache = 0
            for group, (result, cached) in zip(schedule, outcomes):
                if cached:
                    from_cache += 1
                for member in group.members:
                    by_candidate[member] = result
                    digest_by_candidate[member] = group.canonical.digest

            answers = tuple(
                AnnotatedAnswer(values=candidate.values,
                                columns=candidate.columns,
                                certainty=by_candidate[index],
                                witnesses=candidate.witnesses,
                                lineage_digest=digest_by_candidate[index])
                for index, candidate in enumerate(candidates))
            serialize_span.set("answers", len(answers))

        computed = len(schedule) - from_cache
        batched = len(candidates) - len(schedule)
        kernels_launched = tuples_fused = fusion_batches = 0
        if fusion_counters is not None:
            kernels_launched = fusion_counters["kernels_launched"]
            tuples_fused = fusion_counters["tuples_fused"]
            fusion_batches = fusion_counters["batches"]
        with self._counters_lock:
            self._requests += 1
            self._answers_served += len(answers)
            self._estimates_computed += computed
            self._estimates_reused += from_cache
            self._tuples_batched += batched
            self._kernels_launched += kernels_launched
            self._tuples_fused += tuples_fused
            self._fusion_batches += fusion_batches
            if fusion_counters is not None:
                self._fusion_batch_sizes.extend(
                    fusion_counters["batch_sizes"])
                del self._fusion_batch_sizes[:-32]
            backend_name = getattr(database, "backend", "rows")
            self._backend_requests[backend_name] = (
                self._backend_requests.get(backend_name, 0) + 1)
        stats = RequestStats(
            candidates=len(candidates),
            groups=len(schedule),
            groups_from_cache=from_cache,
            groups_computed=computed,
            tuples_batched=batched,
            elapsed_seconds=time.perf_counter() - started,
            seed_entropy=seed_token[0] if isinstance(seed_token[0], int) else 0,
            kernels_launched=kernels_launched,
            tuples_fused=tuples_fused,
            fusion_batches=fusion_batches,
            planned=planned,
        )
        if self._recorder.enabled:
            sql_text = query if isinstance(query, str) else "<parsed query>"
            self._recorder.observe_request(
                sql_text, stats.elapsed_seconds, trace=tr,
                candidates=len(candidates), groups=len(schedule))
        return ServiceResponse(answers=answers, stats=stats,
                               trace=tr if return_trace else None)

    def stats(self) -> ServiceStats:
        """Lifetime counters plus snapshots of every cache layer."""
        plan_stats = self._plan_cache.stats()
        with self._counters_lock:
            requests = self._requests
            answers_served = self._answers_served
            estimates_computed = self._estimates_computed
            estimates_reused = self._estimates_reused
            tuples_batched = self._tuples_batched
            mutations_applied = self._mutations_applied
            results_evicted = self._results_evicted
            kernels_launched = self._kernels_launched
            tuples_fused = self._tuples_fused
            fusion_batches = self._fusion_batches
            fusion_batch_sizes = tuple(self._fusion_batch_sizes)
            backend_requests = dict(self._backend_requests)
            shard_counters = {shard: list(counters) for shard, counters
                              in self._shard_counters.items()}
        base_backend = getattr(self._database, "backend", "rows")
        base_requests = (backend_requests.pop(base_backend, 0)
                         if backend_requests else requests)
        backends = [BackendStats(
            backend=base_backend,
            requests=base_requests,
            plan_hits=plan_stats.hits,
            plan_misses=plan_stats.misses)]
        # Auto-planned requests may have run on other snapshots; report
        # those backends too (plan-cache counters are shared, so they are
        # attributed to the base row only).
        for backend_name, count in sorted(backend_requests.items()):
            backends.append(BackendStats(backend=backend_name, requests=count,
                                         plan_hits=0, plan_misses=0))
        planner_stats = (None if self._planner_instance is None
                         else self._planner_instance.stats())
        slow_queries: tuple = ()
        if self._recorder.enabled and self._recorder.slow_log is not None:
            slow_queries = tuple(
                entry.as_dict()
                for entry in self._recorder.slow_log.snapshot())
        return ServiceStats(
            requests=requests,
            answers_served=answers_served,
            estimates_computed=estimates_computed,
            estimates_reused=estimates_reused,
            tuples_batched=tuples_batched,
            caches=(
                self._parse_cache.stats(),
                plan_stats,
                self._result_cache.stats(),
                self._frontier_cache.stats(),
                compile_cache_stats(),
            ),
            backends=tuple(backends),
            shards=tuple(
                ShardStats(shard=shard, tasks=counters[0], rows=counters[1],
                           witnesses=counters[2], partition_hits=counters[3],
                           partition_misses=counters[4])
                for shard, counters in sorted(shard_counters.items())),
            single_flight=self._estimate_flights.stats(),
            fusion=FusionStats(kernels_launched=kernels_launched,
                               tuples_fused=tuples_fused,
                               batches=fusion_batches,
                               batch_sizes=fusion_batch_sizes),
            planner=planner_stats,
            slow_queries=slow_queries,
            data_version=getattr(self._database, "data_version", 0),
            mutations_applied=mutations_applied,
            results_evicted=results_evicted,
            results_retained=len(self._result_cache),
        )

    def mutate(self, statement):
        """Apply one INSERT/DELETE/UPDATE statement; returns its outcome.

        ``statement`` is SQL text or a parsed mutation AST.  Writers are
        serialised by the service's mutation lock; the new snapshot is
        swapped in atomically, so readers either see the old version or
        the new one, never a torn intermediate.  Invalidation is
        delta-driven: certainty results are evicted only when their
        recorded lineage nulls intersect the mutation's deleted/updated
        rows; plan-cache entries of untouched tables stay reachable
        (their version keys did not move); appended rows feed the
        incremental frontier maintenance on the next enumeration.

        Raises :class:`~repro.relational.mutation.MutationValidationError`
        or :class:`~repro.relational.mutation.MutationConflictError`
        without changing any state; :class:`SqlSyntaxError` propagates
        from parsing.
        """
        from repro.engine.mutate import execute_mutation
        from repro.engine.sql.ast import SelectQuery
        from repro.engine.sql.parser import parse_statement
        from repro.relational.mutation import MutationValidationError

        parsed = parse_statement(statement) if isinstance(statement, str) \
            else statement
        if isinstance(parsed, SelectQuery):
            raise MutationValidationError(
                "SELECT is not a mutation; use submit()/annotate()")
        with self._mutation_lock:
            database = self._database
            new_database, deltas, outcome = execute_mutation(parsed, database)
            touched: frozenset[str] = frozenset()
            for delta in deltas.values():
                touched |= delta.touched_nulls()
            evicted = self._evict_touched(touched)
            # The swap is a single reference assignment: requests pin
            # self._database once at submit time, so they stay on their
            # version; new requests pick this one up.
            self._database = new_database
            self._dimension = len(new_database.num_nulls_ordered())
            with self._views_lock:
                # Alternate-backend views were converted from the parent
                # snapshot's content; rebuild on demand from the new one.
                self._database_views.clear()
            with self._counters_lock:
                self._mutations_applied += 1
                self._results_evicted += evicted
        return outcome

    def _evict_touched(self, touched: frozenset[str]) -> int:
        """Delta-driven certainty eviction: drop entries whose recorded
        lineage nulls intersect the mutation's; keep everything else warm.
        Dead provenance entries (evicted from the cache by capacity) are
        pruned on the way."""
        if not touched:
            return 0
        evicted = 0
        with self._provenance_lock:
            for key, names in list(self._result_provenance.items()):
                if key not in self._result_cache:
                    del self._result_provenance[key]
                    continue
                if names & touched:
                    self._result_cache.pop(key)
                    del self._result_provenance[key]
                    evicted += 1
        return evicted

    def _record_provenance(self, schedule, candidates, cache_key) -> None:
        """Remember which marked nulls each group's result depends on.

        Only numerical nulls can occur in lineage formulas (base-null
        comparisons fold immediately), so the recorded names are exactly
        the rows whose deletion could -- as a matter of provenance policy
        -- affect the entry.  Names accumulate across requests: the same
        canonical lineage served for different concrete rows answers for
        all of them.
        """
        updates: dict[tuple, frozenset[str]] = {}
        for group in schedule:
            names: set[str] = set()
            for member in group.members:
                lineage = candidates[member].lineage
                for variable in lineage.relevant_variables:
                    names.add(lineage.null_by_variable[variable].name)
            if names:
                updates[cache_key(group)] = frozenset(names)
        if not updates:
            return
        with self._provenance_lock:
            for key, names in updates.items():
                existing = self._result_provenance.get(key)
                self._result_provenance[key] = (
                    names if existing is None else existing | names)
            if len(self._result_provenance) > 2 * self._result_cache.capacity:
                # Bound the side table: drop records whose cache entry is
                # long gone (capacity-evicted between mutations).
                for key in list(self._result_provenance):
                    if key not in self._result_cache:
                        del self._result_provenance[key]

    def _patch_dimension(self, result: CertaintyResult) -> CertaintyResult:
        """Re-stamp a cached result with the current ambient dimension.

        The estimate itself is content-addressed (canonical lineage) and
        cannot go stale, but the ambient null count is snapshot metadata:
        after a mutation a cache hit must report the *new* dimension,
        exactly as a cold compute against the new snapshot would.
        """
        if result.dimension == self._dimension:
            return result
        return replace(result, dimension=self._dimension)

    def invalidate(self) -> None:
        """Drop every cached artefact (for out-of-band database edits)."""
        self._parse_cache.clear()
        self._plan_cache.clear()
        self._result_cache.clear()
        self._frontier_cache.clear()
        with self._provenance_lock:
            self._result_provenance.clear()
        with self._views_lock:
            # Alternate-backend snapshots were converted from the (now
            # stale) database content; rebuild them on demand.
            self._database_views.clear()
        clear_shards = getattr(self._database, "clear_shard_cache", None)
        if clear_shards is not None:
            clear_shards()

    # -- lifecycle stages --------------------------------------------------

    def _parse(self, query):
        if not isinstance(query, str):
            return query
        from repro.engine.sql.parser import parse_sql
        key = _normalise_sql(query)
        return self._parse_cache.get_or_compute(key, lambda: parse_sql(query))

    def _plan(self, query, select, limit: Optional[int],
              group_witnesses: bool, jobs: int, database=None,
              span=None) -> tuple:
        from repro.engine.candidates import enumerate_candidates

        if database is None:
            database = self._database

        def enumerate_() -> tuple:
            sink: dict = {}
            enumeration_started = time.perf_counter()
            planned = tuple(enumerate_candidates(
                select, database, limit=limit,
                group_witnesses=group_witnesses, jobs=jobs,
                shard_stats=sink, frontier_cache=self._frontier_cache))
            elapsed = time.perf_counter() - enumeration_started
            self._record_shard_stats(sink)
            self._observe_enumeration(select, database, elapsed)
            if span is not None:
                # Only a cache miss reaches this closure, so the span
                # attribute doubles as the hit/miss marker.
                span.set("plan_cache", "miss")
                if sink.get("sharded"):
                    span.set("per_shard", [
                        {"shard": entry["shard"], "tasks": entry["tasks"],
                         "witnesses": entry["witnesses"]}
                        for entry in sink.get("per_shard", ())])
            return planned

        if not isinstance(query, str):
            # No stable text key; planning an AST is not cached.
            return enumerate_()
        # Backend and shard count are part of the key: the auto planner may
        # route the same query text to different snapshots, whose candidate
        # lists carry layout-dependent internals.  Per-referenced-table
        # data versions make mutation invalidation delta-driven: a commit
        # touching table T moves only T's version, so plans over untouched
        # tables keep their keys (stay warm) while plans over T become
        # unreachable and age out of the LRU.
        table_version = getattr(database, "table_version", None)
        if table_version is not None:
            versions = tuple(sorted(
                {(reference.table, table_version(reference.table))
                 for reference in select.tables}))
        else:
            versions = ()
        key = (_normalise_sql(query), limit, group_witnesses,
               getattr(database, "backend", "rows"),
               getattr(database, "shards", 1),
               versions)
        return self._plan_cache.get_or_compute(key, enumerate_)

    def _record_shard_stats(self, sink: dict) -> None:
        if not sink.get("sharded"):
            return
        # Partitioning is a per-request, all-shards-at-once event: count
        # one hit per shard when every table's partition came from the
        # cache, else one miss (not the sink's per-table totals, which
        # would overcount by the table count on every shard row).
        fully_cached = sink.get("partition_misses", 0) == 0
        with self._counters_lock:
            for entry in sink.get("per_shard", ()):
                counters = self._shard_counters.setdefault(
                    entry["shard"], [0, 0, 0, 0, 0])
                counters[0] += entry["tasks"]
                counters[1] += entry["rows"]
                counters[2] += entry["witnesses"]
                counters[3] += 1 if fully_cached else 0
                counters[4] += 0 if fully_cached else 1

    def _get_planner(self) -> Planner:
        """The service's cost-based planner, created on first auto request."""
        with self._views_lock:
            if self._planner_instance is None:
                self._planner_instance = Planner()
            return self._planner_instance

    def _database_for(self, backend: str, shards: int):
        """The database snapshot under ``(backend, shards)``, converted once.

        The constructed snapshot serves matching requests directly;
        alternate layouts are converted lazily and cached for the service's
        lifetime (content is identical across layouts, so every snapshot
        yields the same answers and lineage digests).
        """
        base = self._database
        if (getattr(base, "backend", "rows") == backend
                and getattr(base, "shards", 1) == shards):
            return base
        key = (backend, shards)
        with self._views_lock:
            view = self._database_views.get(key)
            if view is None:
                view = base.with_backend(backend, shards=shards)
                self._database_views[key] = view
            return view

    def _observe_enumeration(self, select, database, elapsed: float) -> None:
        """Feed an observed enumeration cost back into the planner's model."""
        plan_engine = self._planner_instance
        if plan_engine is None:
            return
        try:
            from repro.engine.candidates import workload_cardinalities
            rows = sum(workload_cardinalities(select, database))
        except Exception:
            return
        plan_engine.observe_enumeration(getattr(database, "backend", "rows"),
                                        rows, elapsed)

    def _decide_with_fusion(self, schedule: Sequence[TaskGroup], decide,
                            cache_key, reuse: bool, epsilon: float,
                            delta: float, method: str, adaptive: bool,
                            root: np.random.SeedSequence, jobs: int,
                            executor: str, batch_size: int,
                            on_update: Optional[GroupUpdateCallback],
                            trace=NULL_TRACE) -> tuple[list, dict]:
        """The Monte-Carlo phase with block-diagonal kernel fusion.

        Cache-missing groups whose resolved method is AFPRAS sampling are
        batched ``batch_size`` at a time (schedule order) and decided
        through fused kernels (:mod:`repro.service.fused`); every other
        group keeps the standard per-group ``decide`` path, so exact folds
        and FPRAS fallbacks run through exactly the historical ladder.
        Results are bit-identical to the unfused path throughout.

        Like :meth:`_decide_in_processes`, fused batches fill the result
        cache but do not join the cross-request estimate flights:
        concurrent requests may duplicate a fused group's work, never its
        answer.
        """
        outcomes: list = [None] * len(schedule)
        solo_positions: list[int] = []
        fusable_positions: list[int] = []
        for position, group in enumerate(schedule):
            if reuse:
                cached = self._result_cache.get(cache_key(group))
                if cached is not None:
                    outcomes[position] = (self._patch_dimension(cached), True)
                    continue
            if fusable_method(method, group.canonical.translation()):
                fusable_positions.append(position)
            else:
                solo_positions.append(position)
        batches = partition_batches(fusable_positions, batch_size)

        def batch_tasks(positions: Sequence[int]) -> list[FusedTask]:
            return [FusedTask(
                translation=schedule[p].canonical.translation(),
                digest=schedule[p].canonical.digest,
                replica=() if reuse else (schedule[p].members[0],))
                for p in positions]

        counters = {"kernels_launched": 0, "tuples_fused": 0, "batches": 0,
                    "batch_sizes": []}

        def account(launches: int, sizes: Sequence[int],
                    positions: Sequence[int]) -> None:
            counters["kernels_launched"] += launches
            counters["batches"] += len(sizes)
            counters["batch_sizes"].extend(sizes)
            counters["tuples_fused"] += sum(
                schedule[p].size for p in positions)

        def land(positions: Sequence[int], results: Sequence) -> None:
            for position, result in zip(positions, results):
                group = schedule[position]
                result = replace(result, dimension=self._dimension,
                                 relevant_dimension=group.canonical.dimension)
                if reuse:
                    self._result_cache.put(cache_key(group), result)
                outcomes[position] = (result, False)

        if executor == "process" and jobs > 1 and on_update is None:
            if solo_positions:
                solo_outcomes = self._decide_in_processes(
                    [schedule[p] for p in solo_positions], cache_key, reuse,
                    epsilon, delta, method, adaptive, root, jobs)
                for position, outcome in zip(solo_positions, solo_outcomes):
                    outcomes[position] = outcome
            payloads = [fused_payload(
                batch_tasks(positions), epsilon, delta, adaptive, root,
                self._options.adaptive_coarse, self._options.adaptive_factor)
                for positions in batches]
            shipped = process_map(run_fused_payload, payloads, jobs=jobs,
                                  chunksize=1)
            for positions, (results, launches, sizes) in zip(batches, shipped):
                land(positions, results)
                account(launches, sizes, positions)
        else:
            # One worker task per fused batch (plus one per solo group);
            # accounting objects come back in the results, so no shared
            # mutation races across worker threads.
            def solo_task(position: int):
                return ("solo", position, decide(schedule[position]))

            def fused_task(positions: Sequence[int]):
                with trace.span("estimate", fused=len(positions)) as span:
                    callback = None
                    if on_update is not None or trace is not NULL_TRACE:
                        rung_clock = [time.perf_counter()]

                        def callback(slot, update):
                            # Rung spans are timed by their completion
                            # callbacks, after the fact; callbacks never
                            # touch random streams, so fused results stay
                            # bit-identical under tracing.
                            now = time.perf_counter()
                            trace.record(
                                "rung", rung_clock[0], now, parent=span,
                                stage=update.stage, epsilon=update.epsilon,
                                samples=update.samples, final=update.final)
                            rung_clock[0] = now
                            if on_update is not None:
                                on_update(schedule[positions[slot]], update)
                    results, accounting = decide_fused_batch(
                        batch_tasks(positions), epsilon=epsilon, delta=delta,
                        adaptive=adaptive, root=root,
                        coarse=self._options.adaptive_coarse,
                        factor=self._options.adaptive_factor,
                        on_update=callback)
                    return ("fused", positions, (results, accounting))

            thunks = [lambda p=position: solo_task(p)
                      for position in solo_positions]
            thunks.extend(lambda ps=positions: fused_task(ps)
                          for positions in batches)
            for kind, where, payload in run_tasks(thunks, jobs=jobs):
                if kind == "solo":
                    outcomes[where] = payload
                else:
                    results, accounting = payload
                    land(where, results)
                    account(accounting.kernels_launched,
                            accounting.batch_sizes, where)
        return outcomes, counters

    def _decide_in_processes(self, schedule: Sequence[TaskGroup], cache_key,
                             reuse: bool, epsilon: float, delta: float,
                             method: str, adaptive: bool,
                             root: np.random.SeedSequence,
                             jobs: int) -> list[tuple[CertaintyResult, bool]]:
        """The Monte-Carlo phase across worker processes, cache-coherent.

        Cache lookups stay in this process (the caches are not shared with
        workers); only the cache-missing groups ship out.  Payloads are
        pure data -- translation, parameters, the root seed's identity --
        and every worker re-derives its stream from the content digest, so
        the outcome per group equals the thread executor's bit for bit.

        Unlike the thread path, this batch route does not join the
        cross-request estimate flights: concurrent process-executor
        requests may duplicate a group's work (never its answer).  The
        network server therefore serves with the thread executor.
        """
        outcomes: list = [None] * len(schedule)
        payloads = []
        positions = []
        for position, group in enumerate(schedule):
            if reuse:
                cached = self._result_cache.get(cache_key(group))
                if cached is not None:
                    outcomes[position] = (self._patch_dimension(cached), True)
                    continue
            replica = () if reuse else (group.members[0],)
            payloads.append((
                group.canonical.translation(), epsilon, delta, method,
                adaptive, root.entropy, tuple(root.spawn_key),
                group.canonical.digest, replica,
                self._options.adaptive_coarse, self._options.adaptive_factor))
            positions.append(position)
        results = process_map(_estimate_task, payloads, jobs=jobs)
        for position, result in zip(positions, results):
            group = schedule[position]
            result = replace(result, dimension=self._dimension,
                             relevant_dimension=group.canonical.dimension)
            if reuse:
                self._result_cache.put(cache_key(group), result)
            outcomes[position] = (result, False)
        return outcomes

    def _estimate(self, group: TaskGroup, epsilon: float, delta: float,
                  method: str, adaptive: bool, root: np.random.SeedSequence,
                  replica: tuple[int, ...],
                  on_update: Optional[GroupUpdateCallback],
                  trace=NULL_TRACE, parent=None) -> CertaintyResult:
        canonical = group.canonical
        translation = canonical.translation()
        if adaptive:
            callback = None
            if on_update is not None or trace is not NULL_TRACE:
                rung_clock = [time.perf_counter()]

                def callback(update):
                    # Each adaptive rung becomes one after-the-fact span
                    # under the group's estimate span; recording never
                    # touches random streams (bit-identity holds).
                    now = time.perf_counter()
                    trace.record(
                        "rung", rung_clock[0], now, parent=parent,
                        stage=update.stage, epsilon=update.epsilon,
                        samples=update.samples, final=update.final)
                    rung_clock[0] = now
                    if on_update is not None:
                        on_update(group, update)
            result = adaptive_certainty(
                translation, epsilon=epsilon, delta=delta, method=method,
                stream_factory=lambda stage: spawn_stream(
                    root, canonical.digest, *replica, stage),
                on_update=callback,
                coarse=self._options.adaptive_coarse,
                factor=self._options.adaptive_factor)
        else:
            result = certainty_from_translation(
                translation, epsilon=epsilon, delta=delta, method=method,
                rng=spawn_stream(root, canonical.digest, *replica))
        # The canonical translation deliberately forgets the database's
        # ambient dimension; patch it back for faithful result metadata.
        return replace(result, dimension=self._dimension,
                       relevant_dimension=canonical.dimension)


def _estimate_task(payload) -> CertaintyResult:
    """Process-pool twin of :meth:`AnnotationService._estimate`.

    Module-level so it pickles; receives only content (translation, request
    parameters, the root seed's entropy/spawn-key identity) and re-derives
    the group's stream exactly as the in-process path does.  Dimension
    metadata is patched back by the parent, which knows the database.
    """
    (translation, epsilon, delta, method, adaptive, entropy, spawn_key,
     digest, replica, coarse, factor) = payload
    root = np.random.SeedSequence(entropy=entropy, spawn_key=spawn_key)
    if adaptive:
        return adaptive_certainty(
            translation, epsilon=epsilon, delta=delta, method=method,
            stream_factory=lambda stage: spawn_stream(
                root, digest, *replica, stage),
            on_update=None, coarse=coarse, factor=factor)
    return certainty_from_translation(
        translation, epsilon=epsilon, delta=delta, method=method,
        rng=spawn_stream(root, digest, *replica))
