"""The annotation service: cached, parallel, adaptive-precision query serving.

:class:`AnnotationService` owns the full request lifecycle that the PR 1
pipeline re-ran from scratch on every ``annotate_query`` call:

1. **parse** -- SQL text is canonicalised (whitespace-collapsed) and parsed
   once per distinct query text (parse cache);
2. **plan** -- candidate enumeration with lineage extraction runs once per
   ``(query, limit, semantics)`` against the service's database snapshot
   (plan cache);
3. **schedule** -- candidates are grouped by the null-renaming-invariant
   canonical form of their lineage (:mod:`repro.service.scheduler`), so one
   compiled-kernel estimate decides a whole group;
4. **execute** -- groups run across ``jobs`` worker threads, each drawing
   from a stream spawned off the request's ``SeedSequence`` under a spawn
   key derived from the lineage digest (:mod:`repro.service.rng`), which
   makes parallel runs bit-identical to serial ones;
5. **estimate** -- either single-shot at the requested ε, or adaptively
   (coarse first, streamed refinement; :mod:`repro.service.adaptive`);
   results land in the certainty cache keyed by
   ``(canonical lineage, ε, δ, method, adaptive, seed)`` so structurally
   repeated requests skip the Monte-Carlo phase entirely.

The compiled-kernel memo of :mod:`repro.compile` sits underneath all of
this; its hit/miss counters are surfaced in :meth:`AnnotationService.stats`
alongside the service's own caches.
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.caching import CacheStats, LruCache, SingleFlight, SingleFlightStats
from repro.certainty.measure import certainty_from_translation
from repro.certainty.result import CertaintyResult
from repro.compile import compile_cache_stats
from repro.geometry.montecarlo import DEFAULT_DELTA
from repro.service.adaptive import (
    DEFAULT_COARSE_EPSILON,
    DEFAULT_REFINEMENT_FACTOR,
    AdaptiveUpdate,
    adaptive_certainty,
)
from repro.service.answers import AnnotatedAnswer
from repro.service.canonical import CanonicalLineage
from repro.service.executor import EXECUTORS, process_map, run_tasks
from repro.service.rng import SeedLike, root_sequence, spawn_stream
from repro.service.scheduler import TaskGroup, build_schedule

#: Methods the service can dispatch on a pre-translated lineage.
SERVICE_METHODS = ("auto", "exact", "afpras", "fpras")

#: Callback receiving streamed adaptive refinements: ``(group, update)``.
GroupUpdateCallback = Callable[[TaskGroup, AdaptiveUpdate], None]


@dataclass(frozen=True)
class ServiceOptions:
    """Request defaults and cache sizing of an :class:`AnnotationService`."""

    epsilon: float = 0.05
    delta: float = DEFAULT_DELTA
    method: str = "afpras"
    #: Workers per request; 1 = serial, 0 = one per CPU.
    jobs: int = 1
    #: What ``jobs`` spans: ``"thread"`` workers share the process (the
    #: PR 2 executor; caches shared, zero shipping cost), ``"process"``
    #: workers span cores for the CPU-bound Monte-Carlo phase.  Results are
    #: bit-identical either way -- streams are content-keyed, not
    #: scheduling-keyed.  Sharded candidate enumeration always uses
    #: processes when ``jobs > 1``, independent of this knob.
    executor: str = "thread"
    #: Serve coarse estimates first and refine toward the requested epsilon.
    adaptive: bool = False
    adaptive_coarse: float = DEFAULT_COARSE_EPSILON
    adaptive_factor: float = DEFAULT_REFINEMENT_FACTOR
    #: Root seed used when a request does not carry its own.
    seed: SeedLike = None
    #: Storage/execution backend for candidate enumeration: ``"rows"``
    #: (row-at-a-time reference engine), ``"columnar"`` (vectorized engine
    #: over NumPy column arrays), or ``None`` to follow the database's own
    #: backend.  The service converts its database snapshot once at
    #: construction, so every planned request runs on the chosen layout.
    backend: Optional[str] = None
    #: Key-aligned shard count for columnar candidate enumeration; ``None``
    #: follows the database's own ``shards`` declaration.  With ``jobs > 1``
    #: shard frontiers run across worker processes.
    shards: Optional[int] = None
    #: Reuse certainty results across tuples and requests with the same
    #: canonical lineage (the PR 1 ad-hoc annotate-loop reuse, generalised).
    reuse_results: bool = True
    parse_cache_size: int = 256
    plan_cache_size: int = 128
    result_cache_size: int = 4096


@dataclass(frozen=True)
class RequestStats:
    """What one request cost and how much of it was amortised."""

    candidates: int
    #: Distinct canonical lineages scheduled.
    groups: int
    #: Groups answered straight from the certainty cache.
    groups_from_cache: int
    #: Groups actually estimated (kernel invocations) this request.
    groups_computed: int
    #: Tuples that shared another tuple's estimate (batching win).
    tuples_batched: int
    elapsed_seconds: float
    seed_entropy: int


@dataclass(frozen=True)
class ServiceResponse:
    """Annotated answers plus the request's amortisation accounting."""

    answers: tuple[AnnotatedAnswer, ...]
    stats: RequestStats


@dataclass(frozen=True)
class BackendStats:
    """Request and plan-cache counters attributed to one execution backend."""

    backend: str
    requests: int
    plan_hits: int
    plan_misses: int


@dataclass(frozen=True)
class ShardStats:
    """Lifetime counters of one shard index of the sharded enumeration path."""

    shard: int
    #: Frontier computations this shard executed.
    tasks: int
    #: Input rows the shard's tables contributed across those tasks.
    rows: int
    #: Witnesses the shard produced (pre-merge frontier size).
    witnesses: int
    #: Sharded plans whose partitions (every queried table's) were served
    #: from the partition cache vs. plans that had to partition at least
    #: one table.
    partition_hits: int
    partition_misses: int


@dataclass(frozen=True)
class ServiceStats:
    """Lifetime counters and per-cache snapshots for the stats report."""

    requests: int
    answers_served: int
    estimates_computed: int
    estimates_reused: int
    tuples_batched: int
    caches: tuple[CacheStats, ...] = field(default_factory=tuple)
    backends: tuple[BackendStats, ...] = field(default_factory=tuple)
    shards: tuple[ShardStats, ...] = field(default_factory=tuple)
    #: Cross-request estimate coalescing (concurrent identical lineages
    #: joining one computation); ``None`` on snapshots predating the server.
    single_flight: Optional[SingleFlightStats] = None

    def report(self) -> str:
        """Human-readable multi-line report (the ``serve`` REPL's ``\\stats``)."""
        lines = [
            f"requests            {self.requests}",
            f"answers served      {self.answers_served}",
            f"estimates computed  {self.estimates_computed}",
            f"estimates reused    {self.estimates_reused}",
            f"tuples batched      {self.tuples_batched}",
        ]
        if self.single_flight is not None:
            lines.append(
                f"estimate flights    {self.single_flight.launches} launched, "
                f"{self.single_flight.joins} joined, "
                f"{self.single_flight.in_flight} in flight")
        lines.append(
            "cache               cap    size   hits  misses  evict  hit-rate")
        for cache in self.caches:
            lines.append(
                f"{cache.name:<18} {cache.capacity:>5} {cache.size:>7} "
                f"{cache.hits:>6} {cache.misses:>7} {cache.evictions:>6} "
                f"{cache.hit_rate:>9.1%}")
        lines.append("backend            requests   plan-hits  plan-misses")
        for backend in self.backends:
            lines.append(
                f"{backend.backend:<18} {backend.requests:>8} "
                f"{backend.plan_hits:>11} {backend.plan_misses:>12}")
        if self.shards:
            lines.append(
                "shard      tasks      rows  witnesses  part-hits  part-misses")
            for shard in self.shards:
                lines.append(
                    f"shard[{shard.shard}] {shard.tasks:>8} {shard.rows:>9} "
                    f"{shard.witnesses:>10} {shard.partition_hits:>10} "
                    f"{shard.partition_misses:>12}")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "answers_served": self.answers_served,
            "estimates_computed": self.estimates_computed,
            "estimates_reused": self.estimates_reused,
            "tuples_batched": self.tuples_batched,
            "caches": [cache.as_dict() for cache in self.caches],
            "backends": [
                {"backend": backend.backend, "requests": backend.requests,
                 "plan_hits": backend.plan_hits,
                 "plan_misses": backend.plan_misses}
                for backend in self.backends],
            "shards": [
                {"shard": shard.shard, "tasks": shard.tasks,
                 "rows": shard.rows, "witnesses": shard.witnesses,
                 "partition_hits": shard.partition_hits,
                 "partition_misses": shard.partition_misses}
                for shard in self.shards],
            "single_flight": (None if self.single_flight is None
                              else self.single_flight.as_dict()),
        }


#: A single-quoted SQL string literal (``''`` escapes a quote), matching
#: the lexer's own token shape.
_SQL_LITERAL = re.compile(r"'(?:[^']|'')*'")


def normalise_sql(sql: str) -> str:
    """Whitespace-insensitive cache/coalescing key for SQL text.

    Whitespace is collapsed only *outside* single-quoted string literals:
    ``WHERE seg = 'a  b'`` and ``WHERE seg = 'a b'`` are different queries
    and must never share a parse-cache entry or a coalescing flight, while
    the same query reformatted across lines must.  Chunks are rejoined
    around the verbatim literals with a NUL separator so a key is
    unambiguous; it is a key, not re-parseable SQL.
    """
    parts: list[str] = []
    last = 0
    for match in _SQL_LITERAL.finditer(sql):
        parts.append(" ".join(sql[last:match.start()].split()))
        parts.append(match.group(0))
        last = match.end()
    parts.append(" ".join(sql[last:].split()))
    if len(parts) == 1:
        return parts[0]
    return "\x00".join(parts)


#: Backwards-compatible private alias (pre-PR 5 internal name).
_normalise_sql = normalise_sql


def _seed_token(root: np.random.SeedSequence) -> tuple:
    """Hashable identity of a root sequence for the certainty-cache key.

    Both the entropy *and* the spawn key matter: two children of the same
    parent (``SeedSequence(0).spawn(2)``) share entropy but draw different
    streams, so collapsing them onto one cache slot would serve an estimate
    computed under a different stream than a cold run would use.
    """
    entropy = root.entropy
    if isinstance(entropy, (list, tuple, np.ndarray)):
        entropy = tuple(int(word) for word in entropy)
    return (entropy, tuple(int(word) for word in root.spawn_key))


class AnnotationService:
    """Serve certainty-annotated answers for SQL queries over one database.

    The service treats its database as a stable snapshot: every cache keys
    off query text and formula structure only.  Call :meth:`invalidate`
    after mutating the database.
    """

    def __init__(self, database, options: Optional[ServiceOptions] = None,
                 **overrides) -> None:
        if options is None:
            options = ServiceOptions()
        if overrides:
            options = replace(options, **overrides)
        if options.method not in SERVICE_METHODS:
            raise ValueError(
                f"unknown method {options.method!r}; expected one of {SERVICE_METHODS}")
        if options.executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {options.executor!r}; expected one of {EXECUTORS}")
        if options.backend is not None:
            # One conversion at construction; the snapshot then serves every
            # request under the requested layout.
            database = database.with_backend(options.backend,
                                             shards=options.shards)
        elif options.shards is not None and hasattr(database, "with_shards"):
            database = database.with_shards(options.shards)
        self._database = database
        self._options = options
        self._dimension = len(database.num_nulls_ordered())
        # The fallback root for requests without their own seed is drawn
        # once per service: with ``options.seed=None`` this fixes fresh OS
        # entropy at construction, so repeated seedless requests still share
        # the certainty cache (a per-request fresh root would make every
        # cache key unique and silently disable cross-request reuse).
        self._default_root = root_sequence(options.seed)
        self._parse_cache = LruCache(options.parse_cache_size, name="parsed sql")
        self._plan_cache = LruCache(options.plan_cache_size, name="candidates")
        self._result_cache = LruCache(options.result_cache_size, name="certainty")
        # Concurrent requests (the network server runs submits on worker
        # threads) racing on a cold canonical lineage join one estimate
        # instead of computing it twice: one computation, one cache fill.
        self._estimate_flights = SingleFlight(name="estimate flights")
        self._requests = 0
        self._answers_served = 0
        self._estimates_computed = 0
        self._estimates_reused = 0
        self._tuples_batched = 0
        #: shard index -> [tasks, rows, witnesses, partition hits, misses].
        self._shard_counters: dict[int, list[int]] = {}
        # The network server calls ``submit`` from worker threads; unlocked
        # read-modify-write would drop increments and skew the very
        # counters the coalescing audit relies on.
        self._counters_lock = threading.Lock()

    # -- public API --------------------------------------------------------

    @property
    def database(self):
        return self._database

    @property
    def options(self) -> ServiceOptions:
        return self._options

    def annotate(self, query, **request) -> list[AnnotatedAnswer]:
        """Annotate and return just the answers (see :meth:`submit`)."""
        return list(self.submit(query, **request).answers)

    def submit(self, query, *,
               candidates: Optional[Sequence] = None,
               epsilon: Optional[float] = None,
               delta: Optional[float] = None,
               method: Optional[str] = None,
               limit: Optional[int] = None,
               seed: SeedLike = None,
               jobs: Optional[int] = None,
               executor: Optional[str] = None,
               adaptive: Optional[bool] = None,
               group_witnesses: bool = True,
               reuse_results: Optional[bool] = None,
               on_update: Optional[GroupUpdateCallback] = None) -> ServiceResponse:
        """Run one annotation request through the full service lifecycle.

        ``query`` is SQL text or a parsed ``SelectQuery``; ``candidates``
        may carry a pre-enumerated candidate list (the benchmarks use this
        to time the Monte-Carlo phase separately from the join).  Request
        parameters default to the service's :class:`ServiceOptions`.
        """
        started = time.perf_counter()
        options = self._options
        epsilon = options.epsilon if epsilon is None else epsilon
        delta = options.delta if delta is None else delta
        method = options.method if method is None else method
        jobs = options.jobs if jobs is None else jobs
        executor = options.executor if executor is None else executor
        adaptive = options.adaptive if adaptive is None else adaptive
        reuse = options.reuse_results if reuse_results is None else reuse_results
        if method not in SERVICE_METHODS:
            raise ValueError(
                f"unknown method {method!r}; expected one of {SERVICE_METHODS}")
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}")
        root = self._default_root if seed is None else root_sequence(seed)
        seed_token = _seed_token(root)

        select = self._parse(query)
        if candidates is None:
            candidates = self._plan(query, select, limit, group_witnesses, jobs)

        if reuse:
            schedule = build_schedule(candidates)
        else:
            # Independent estimates per tuple: one single-member group per
            # candidate, each with a distinct replica token in its stream.
            schedule = [TaskGroup(canonical=group.canonical, members=(index,))
                        for group in build_schedule(candidates)
                        for index in group.members]

        def cache_key(group: TaskGroup) -> tuple:
            return (group.canonical.key, epsilon, delta, method, adaptive,
                    seed_token)

        def decide(group: TaskGroup) -> tuple[CertaintyResult, bool]:
            key = cache_key(group)
            if not reuse:
                result = self._estimate(group, epsilon, delta, method,
                                        adaptive, root, (group.members[0],),
                                        on_update)
                return result, False
            cached = self._result_cache.get(key)
            if cached is not None:
                return cached, True

            def compute() -> tuple[CertaintyResult, bool]:
                # Re-probe under flight leadership: a racing request may
                # have filled the cache between our miss above and winning
                # this flight (its fill happens before its flight is
                # vacated, so missing both is impossible).  This makes
                # "exactly one computation per lineage" an invariant, not
                # a fast path.
                landed = self._result_cache.peek(key)
                if landed is not None:
                    return landed, False
                result = self._estimate(group, epsilon, delta, method,
                                        adaptive, root, (), on_update)
                self._result_cache.put(key, result)
                return result, True

            # Single-flight on the canonical lineage digest: a concurrent
            # request racing on the same cold lineage joins this estimate
            # rather than recomputing it.  Joined results are accounted as
            # reuse -- exactly one computation and one cache fill happen.
            (result, computed), leader = self._estimate_flights.run(
                (group.canonical.digest, epsilon, delta, method, adaptive,
                 seed_token), compute)
            return result, not (leader and computed)

        # Adaptive streaming callbacks need to run in this process, so the
        # process executor only takes over callback-free requests; results
        # are bit-identical either way (streams are content-keyed).
        if executor == "process" and jobs > 1 and on_update is None:
            outcomes = self._decide_in_processes(
                schedule, cache_key, reuse, epsilon, delta, method, adaptive,
                root, jobs)
        else:
            outcomes = run_tasks(
                [lambda group=group: decide(group) for group in schedule],
                jobs=jobs)

        by_candidate: dict[int, CertaintyResult] = {}
        digest_by_candidate: dict[int, bytes] = {}
        from_cache = 0
        for group, (result, cached) in zip(schedule, outcomes):
            if cached:
                from_cache += 1
            for member in group.members:
                by_candidate[member] = result
                digest_by_candidate[member] = group.canonical.digest

        answers = tuple(
            AnnotatedAnswer(values=candidate.values, columns=candidate.columns,
                            certainty=by_candidate[index],
                            witnesses=candidate.witnesses,
                            lineage_digest=digest_by_candidate[index])
            for index, candidate in enumerate(candidates))

        computed = len(schedule) - from_cache
        batched = len(candidates) - len(schedule)
        with self._counters_lock:
            self._requests += 1
            self._answers_served += len(answers)
            self._estimates_computed += computed
            self._estimates_reused += from_cache
            self._tuples_batched += batched
        stats = RequestStats(
            candidates=len(candidates),
            groups=len(schedule),
            groups_from_cache=from_cache,
            groups_computed=computed,
            tuples_batched=batched,
            elapsed_seconds=time.perf_counter() - started,
            seed_entropy=seed_token[0] if isinstance(seed_token[0], int) else 0,
        )
        return ServiceResponse(answers=answers, stats=stats)

    def stats(self) -> ServiceStats:
        """Lifetime counters plus snapshots of every cache layer."""
        plan_stats = self._plan_cache.stats()
        with self._counters_lock:
            requests = self._requests
            answers_served = self._answers_served
            estimates_computed = self._estimates_computed
            estimates_reused = self._estimates_reused
            tuples_batched = self._tuples_batched
            shard_counters = {shard: list(counters) for shard, counters
                              in self._shard_counters.items()}
        return ServiceStats(
            requests=requests,
            answers_served=answers_served,
            estimates_computed=estimates_computed,
            estimates_reused=estimates_reused,
            tuples_batched=tuples_batched,
            caches=(
                self._parse_cache.stats(),
                plan_stats,
                self._result_cache.stats(),
                compile_cache_stats(),
            ),
            # A service has exactly one execution backend (fixed at
            # construction), so the per-backend row is derived from the
            # existing counters rather than tracked separately; the report
            # shape stays ready for a multi-backend future.
            backends=(BackendStats(
                backend=getattr(self._database, "backend", "rows"),
                requests=requests,
                plan_hits=plan_stats.hits,
                plan_misses=plan_stats.misses),),
            shards=tuple(
                ShardStats(shard=shard, tasks=counters[0], rows=counters[1],
                           witnesses=counters[2], partition_hits=counters[3],
                           partition_misses=counters[4])
                for shard, counters in sorted(shard_counters.items())),
            single_flight=self._estimate_flights.stats(),
        )

    def invalidate(self) -> None:
        """Drop every cached artefact (call after mutating the database)."""
        self._parse_cache.clear()
        self._plan_cache.clear()
        self._result_cache.clear()
        clear_shards = getattr(self._database, "clear_shard_cache", None)
        if clear_shards is not None:
            clear_shards()

    # -- lifecycle stages --------------------------------------------------

    def _parse(self, query):
        if not isinstance(query, str):
            return query
        from repro.engine.sql.parser import parse_sql
        key = _normalise_sql(query)
        return self._parse_cache.get_or_compute(key, lambda: parse_sql(query))

    def _plan(self, query, select, limit: Optional[int],
              group_witnesses: bool, jobs: int) -> tuple:
        from repro.engine.candidates import enumerate_candidates

        def enumerate_() -> tuple:
            sink: dict = {}
            planned = tuple(enumerate_candidates(
                select, self._database, limit=limit,
                group_witnesses=group_witnesses, jobs=jobs,
                shard_stats=sink))
            self._record_shard_stats(sink)
            return planned

        if not isinstance(query, str):
            # No stable text key; planning an AST is not cached.
            return enumerate_()
        key = (_normalise_sql(query), limit, group_witnesses)
        return self._plan_cache.get_or_compute(key, enumerate_)

    def _record_shard_stats(self, sink: dict) -> None:
        if not sink.get("sharded"):
            return
        # Partitioning is a per-request, all-shards-at-once event: count
        # one hit per shard when every table's partition came from the
        # cache, else one miss (not the sink's per-table totals, which
        # would overcount by the table count on every shard row).
        fully_cached = sink.get("partition_misses", 0) == 0
        with self._counters_lock:
            for entry in sink.get("per_shard", ()):
                counters = self._shard_counters.setdefault(
                    entry["shard"], [0, 0, 0, 0, 0])
                counters[0] += entry["tasks"]
                counters[1] += entry["rows"]
                counters[2] += entry["witnesses"]
                counters[3] += 1 if fully_cached else 0
                counters[4] += 0 if fully_cached else 1

    def _decide_in_processes(self, schedule: Sequence[TaskGroup], cache_key,
                             reuse: bool, epsilon: float, delta: float,
                             method: str, adaptive: bool,
                             root: np.random.SeedSequence,
                             jobs: int) -> list[tuple[CertaintyResult, bool]]:
        """The Monte-Carlo phase across worker processes, cache-coherent.

        Cache lookups stay in this process (the caches are not shared with
        workers); only the cache-missing groups ship out.  Payloads are
        pure data -- translation, parameters, the root seed's identity --
        and every worker re-derives its stream from the content digest, so
        the outcome per group equals the thread executor's bit for bit.

        Unlike the thread path, this batch route does not join the
        cross-request estimate flights: concurrent process-executor
        requests may duplicate a group's work (never its answer).  The
        network server therefore serves with the thread executor.
        """
        outcomes: list = [None] * len(schedule)
        payloads = []
        positions = []
        for position, group in enumerate(schedule):
            if reuse:
                cached = self._result_cache.get(cache_key(group))
                if cached is not None:
                    outcomes[position] = (cached, True)
                    continue
            replica = () if reuse else (group.members[0],)
            payloads.append((
                group.canonical.translation(), epsilon, delta, method,
                adaptive, root.entropy, tuple(root.spawn_key),
                group.canonical.digest, replica,
                self._options.adaptive_coarse, self._options.adaptive_factor))
            positions.append(position)
        results = process_map(_estimate_task, payloads, jobs=jobs)
        for position, result in zip(positions, results):
            group = schedule[position]
            result = replace(result, dimension=self._dimension,
                             relevant_dimension=group.canonical.dimension)
            if reuse:
                self._result_cache.put(cache_key(group), result)
            outcomes[position] = (result, False)
        return outcomes

    def _estimate(self, group: TaskGroup, epsilon: float, delta: float,
                  method: str, adaptive: bool, root: np.random.SeedSequence,
                  replica: tuple[int, ...],
                  on_update: Optional[GroupUpdateCallback]) -> CertaintyResult:
        canonical = group.canonical
        translation = canonical.translation()
        if adaptive:
            callback = None
            if on_update is not None:
                callback = lambda update: on_update(group, update)  # noqa: E731
            result = adaptive_certainty(
                translation, epsilon=epsilon, delta=delta, method=method,
                stream_factory=lambda stage: spawn_stream(
                    root, canonical.digest, *replica, stage),
                on_update=callback,
                coarse=self._options.adaptive_coarse,
                factor=self._options.adaptive_factor)
        else:
            result = certainty_from_translation(
                translation, epsilon=epsilon, delta=delta, method=method,
                rng=spawn_stream(root, canonical.digest, *replica))
        # The canonical translation deliberately forgets the database's
        # ambient dimension; patch it back for faithful result metadata.
        return replace(result, dimension=self._dimension,
                       relevant_dimension=canonical.dimension)


def _estimate_task(payload) -> CertaintyResult:
    """Process-pool twin of :meth:`AnnotationService._estimate`.

    Module-level so it pickles; receives only content (translation, request
    parameters, the root seed's entropy/spawn-key identity) and re-derives
    the group's stream exactly as the in-process path does.  Dimension
    metadata is patched back by the parent, which knows the database.
    """
    (translation, epsilon, delta, method, adaptive, entropy, spawn_key,
     digest, replica, coarse, factor) = payload
    root = np.random.SeedSequence(entropy=entropy, spawn_key=spawn_key)
    if adaptive:
        return adaptive_certainty(
            translation, epsilon=epsilon, delta=delta, method=method,
            stream_factory=lambda stage: spawn_stream(
                root, digest, *replica, stage),
            on_update=None, coarse=coarse, factor=factor)
    return certainty_from_translation(
        translation, epsilon=epsilon, delta=delta, method=method,
        rng=spawn_stream(root, digest, *replica))
