"""Deterministic per-task random streams via ``SeedSequence`` spawning.

The sequential annotate loop of PR 1 drew every estimate from one shared
generator stream, which makes the result of task ``k`` depend on how many
draws tasks ``0..k-1`` consumed -- fatally order-dependent once tasks run in
parallel.  The service instead gives every task its *own* stream, derived
from the request's root :class:`numpy.random.SeedSequence` with a spawn key
built from the task's canonical-lineage digest (:mod:`repro.service.canonical`)
plus small integer tokens (adaptive stage index, per-member replica index).

Spawn keys make the derivation associative and collision-resistant: NumPy
hashes ``(entropy, spawn_key)`` through its internal mixing function, the
same mechanism ``SeedSequence.spawn`` uses for its children.  Keying by
content digest rather than task *index* has two consequences the service
relies on:

* **bit-identical parallelism** -- the stream of a task does not depend on
  scheduling order or worker count, so ``jobs=4`` reproduces ``jobs=1``
  exactly;
* **cache coherence** -- the estimate for a canonical lineage at a given
  ``(seed, epsilon, delta, method)`` is the same no matter which query it
  first appeared in, so a cached result equals what a cold run would have
  produced.
"""

from __future__ import annotations

from typing import Union

import numpy as np

#: Acceptable root seeds: an integer, a pre-built SeedSequence, or ``None``
#: for fresh OS entropy.
SeedLike = Union[int, np.random.SeedSequence, None]

_WORD = 0xFFFFFFFF


def root_sequence(seed: SeedLike = None) -> np.random.SeedSequence:
    """The request-level root sequence all task streams are spawned from."""
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(seed)


def _spawn_words(token: Union[int, bytes]) -> tuple[int, ...]:
    """Break a token into uint32 words for use inside a spawn key."""
    if isinstance(token, bytes):
        token = int.from_bytes(token[:16], "big")
    if token < 0:
        raise ValueError(f"spawn tokens must be non-negative, got {token}")
    words = []
    while True:
        words.append(token & _WORD)
        token >>= 32
        if not token:
            return tuple(words)


def spawn_stream(root: np.random.SeedSequence,
                 *tokens: Union[int, bytes]) -> np.random.Generator:
    """A generator spawned from ``root`` under a content-derived spawn key.

    ``tokens`` may mix integers (stage/replica indices) and byte strings
    (lineage digests, truncated to 128 bits).  The same ``(root, tokens)``
    always yields the same stream, independent of call order.
    """
    key: tuple[int, ...] = tuple(root.spawn_key)
    for token in tokens:
        key += _spawn_words(token)
    spawned = np.random.SeedSequence(entropy=root.entropy, spawn_key=key)
    return np.random.default_rng(spawned)
