"""Batch scheduler: group candidate tuples sharing a formula skeleton.

The annotate loop of PR 1 walked candidates one by one, deciding each
lineage with its own kernel invocation and deduplicating only *exact*
``(formula, variables)`` repeats.  The scheduler generalises that: it
canonicalises every candidate's lineage (:mod:`repro.service.canonical`) and
groups candidates whose canonical forms coincide, so a whole group is
decided by **one** compiled-kernel estimate.  Ungrouped (bag-semantics) runs
and generated workloads -- where every tuple owns private nulls but shares
the query's arithmetic pattern -- collapse from hundreds of estimates to a
handful of distinct skeletons.

Groups are emitted in first-member order, so downstream processing (and the
answers eventually returned) keeps the engine's first-witness order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.service.canonical import CanonicalLineage, canonicalise_lineage

if TYPE_CHECKING:  # imported lazily to keep the service importable on its own
    from repro.engine.candidates import CandidateAnswer


@dataclass(frozen=True)
class TaskGroup:
    """One certainty computation covering every member candidate.

    ``members`` are indices into the request's candidate list; all share the
    same canonical lineage, hence the same measure of certainty.
    """

    canonical: CanonicalLineage
    members: tuple[int, ...]

    @property
    def size(self) -> int:
        return len(self.members)


def partition_batches(items: Sequence, size: int) -> list[list]:
    """Split ``items`` into consecutive batches of at most ``size``.

    The fused execution path batches schedule order contiguously so the
    answers' first-witness order survives fusion; ``size <= 1`` degenerates
    to singleton batches (the per-group path's shape).
    """
    if size <= 1:
        return [[item] for item in items]
    return [list(items[start:start + size])
            for start in range(0, len(items), size)]


def build_schedule(candidates: Sequence["CandidateAnswer"]) -> list[TaskGroup]:
    """Group candidates by canonical lineage, in first-member order."""
    order: list[CanonicalLineage] = []
    members_by_key: dict[tuple, list[int]] = {}
    for index, candidate in enumerate(candidates):
        canonical = canonicalise_lineage(candidate.lineage)
        bucket = members_by_key.get(canonical.key)
        if bucket is None:
            members_by_key[canonical.key] = [index]
            order.append(canonical)
        else:
            bucket.append(index)
    return [TaskGroup(canonical=canonical,
                      members=tuple(members_by_key[canonical.key]))
            for canonical in order]
