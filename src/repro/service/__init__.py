"""Query-serving subsystem: cached, parallel, adaptive-precision annotation.

The paper's end-to-end story is "SQL in, certainty-annotated answers out";
this package is the layer that makes that story *servable*.  Where the
engine's annotate loop re-parses, re-plans and re-samples every request from
scratch, :class:`AnnotationService` amortises each stage:

* :mod:`repro.service.canonical` -- null-renaming-invariant canonical forms
  of lineage formulae, the key under which work is shared;
* :mod:`repro.service.scheduler` -- batching of candidate tuples that share
  a formula skeleton into one kernel invocation;
* :mod:`repro.service.rng` -- ``SeedSequence``-spawned per-task streams
  keyed by lineage digest, making parallel runs bit-identical to serial;
* :mod:`repro.service.executor` -- the ``--jobs N`` thread pool;
* :mod:`repro.service.adaptive` -- coarse-to-fine estimation streaming
  monotonically tightening confidence intervals;
* :mod:`repro.service.service` -- the :class:`AnnotationService` façade
  tying the lifecycle together behind parse/plan/result LRU caches.

``repro.engine.annotate`` and the ``repro`` CLI (including ``repro serve``)
are thin wrappers over this package.
"""

from repro.caching import CacheStats, LruCache, SingleFlight, SingleFlightStats
from repro.service.adaptive import (
    AdaptiveUpdate,
    adaptive_certainty,
    adaptive_schedule,
    intersect_intervals,
)
from repro.service.answers import AnnotatedAnswer
from repro.service.canonical import (
    CanonicalisationError,
    CanonicalLineage,
    canonicalise,
    canonicalise_lineage,
)
from repro.service.executor import (
    EXECUTORS,
    available_cpus,
    process_map,
    run_tasks,
    shutdown_pools,
)
from repro.service.fused import (
    FusedTask,
    FusionAccounting,
    decide_fused_batch,
    fusable_method,
)
from repro.service.planner import (
    MAX_FUSION_BATCH,
    PLANNER_MODES,
    CostModel,
    PlanDecision,
    Planner,
    PlannerStats,
)
from repro.service.rng import root_sequence, spawn_stream
from repro.service.scheduler import TaskGroup, build_schedule, partition_batches
from repro.service.service import (
    SERVICE_METHODS,
    AnnotationService,
    BackendStats,
    FusionStats,
    RequestStats,
    ServiceOptions,
    ServiceResponse,
    ServiceStats,
    ShardStats,
)

__all__ = [
    "EXECUTORS",
    "MAX_FUSION_BATCH",
    "PLANNER_MODES",
    "SERVICE_METHODS",
    "AdaptiveUpdate",
    "AnnotatedAnswer",
    "AnnotationService",
    "BackendStats",
    "CacheStats",
    "CanonicalLineage",
    "CanonicalisationError",
    "CostModel",
    "FusedTask",
    "FusionAccounting",
    "FusionStats",
    "LruCache",
    "PlanDecision",
    "Planner",
    "PlannerStats",
    "RequestStats",
    "ServiceOptions",
    "ServiceResponse",
    "ServiceStats",
    "ShardStats",
    "SingleFlight",
    "SingleFlightStats",
    "TaskGroup",
    "adaptive_certainty",
    "adaptive_schedule",
    "available_cpus",
    "build_schedule",
    "canonicalise",
    "canonicalise_lineage",
    "decide_fused_batch",
    "fusable_method",
    "intersect_intervals",
    "partition_batches",
    "process_map",
    "root_sequence",
    "run_tasks",
    "shutdown_pools",
    "spawn_stream",
]
