"""Cost-based execution planning: pick the configuration, not just run it.

PRs 1-5 added the knobs -- ``--backend``, ``--shards``, ``--jobs``,
``--executor``, and now fusion batching -- but left choosing them to the
user, and BENCH_PR4 showed the wrong choice inverts the win (columnar and
sharded overhead losing to the rows engine on small tables and 1-core
hosts).  :class:`Planner` closes that loop with a calibrated cost model:

* **calibration** -- ``benchmarks/calibrate.py`` measures the machine's
  per-row enumeration costs, fixed backend overheads, kernel-launch and
  dispatch costs, and writes them as JSON; :meth:`CostModel.load` picks the
  file up from ``$REPRO_CALIBRATION`` or ``benchmarks/calibration.json``,
  falling back to conservative built-ins;
* **runtime feedback** -- the service feeds every request's observed
  enumeration cost back through :meth:`Planner.observe_enumeration` (the
  same counters ``\\stats`` reports), and the model blends observed per-row
  costs over the calibrated priors once enough rows have been seen;
* **two planning points** -- :meth:`Planner.plan_enumeration` runs before
  candidate enumeration (all it can know is the query's table
  cardinalities) and picks backend + shard count, including the
  rows-for-tiny-tables fallback; :meth:`Planner.plan_execution` runs after
  scheduling (when the group count and dimensions are known) and picks
  jobs, executor, and the fusion batch size for the Monte-Carlo phase.

The planner only ever changes *how* a request executes, never its answer:
every configuration it may pick is bit-identical by construction (streams
are content-keyed; fusion is bit-identical per :mod:`repro.compile.fusion`).
"""

from __future__ import annotations

import json
import math
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.geometry.montecarlo import hoeffding_sample_size
from repro.service.adaptive import adaptive_schedule
from repro.service.executor import available_cpus

#: Planner modes accepted by the service, CLI, and server.
PLANNER_MODES = ("manual", "auto")

#: Largest fused batch the planner will schedule: beyond this the fused
#: artefact's memory footprint grows without meaningfully amortising more
#: launch overhead (the per-launch fixed cost is already split ~64 ways).
MAX_FUSION_BATCH = 64

#: Conservative built-in coefficients (seconds), used when no calibration
#: file exists.  ``benchmarks/calibrate.py`` measures and overrides them.
DEFAULT_COEFFICIENTS = {
    #: Per input row, row-at-a-time candidate enumeration.
    "rows_row_cost": 2.0e-6,
    #: Per input row, vectorized columnar enumeration.
    "columnar_row_cost": 1.5e-7,
    #: Fixed per-request columnar overhead (mask allocation, column views).
    "columnar_overhead": 4.0e-4,
    #: Fixed per-shard overhead of the sharded process path (dispatch,
    #: shared-memory attach, merge).
    "shard_overhead": 2.5e-3,
    #: Fixed cost of one compiled-kernel launch (argument marshalling,
    #: small-matmul fixed costs).
    "kernel_launch": 2.5e-4,
    #: Per sample per dimension marginal sampling + deciding cost.
    "sample_coeff": 1.2e-8,
    #: Marginal per-group cost inside a fused launch (block stacking,
    #: per-group stream draws).
    "fused_group_coeff": 4.0e-5,
    #: Per-task dispatch overhead of the thread executor.
    "thread_task": 5.0e-5,
    #: Per-task dispatch overhead of the process executor (pickling,
    #: result shipping).
    "process_task": 2.0e-3,
}

#: Block size of the Monte-Carlo loop (mirrors the kernels' schedule).
_BLOCK = 65_536

#: Observed rows per backend before runtime feedback outweighs calibration.
_FEEDBACK_ROWS = 2_000


def _calibration_candidates() -> list[Path]:
    paths = []
    override = os.environ.get("REPRO_CALIBRATION")
    if override:
        paths.append(Path(override))
    paths.append(Path("benchmarks") / "calibration.json")
    # The repo-root copy, for services launched from elsewhere.
    paths.append(Path(__file__).resolve().parents[3] / "benchmarks"
                 / "calibration.json")
    return paths


@dataclass(frozen=True)
class CostModel:
    """Calibrated cost coefficients plus the formulas the planner compares."""

    coefficients: dict = field(default_factory=lambda: dict(DEFAULT_COEFFICIENTS))
    source: str = "defaults"

    @classmethod
    def load(cls, path: Optional[str] = None) -> "CostModel":
        """Coefficients from ``path``, ``$REPRO_CALIBRATION``, or
        ``benchmarks/calibration.json``; built-in defaults otherwise.

        Unknown keys in the file are kept (forward compatibility); missing
        keys fall back to the defaults, so partial calibrations work.
        """
        candidates = [Path(path)] if path else _calibration_candidates()
        for candidate in candidates:
            try:
                loaded = json.loads(candidate.read_text())
            except (OSError, ValueError):
                continue
            if not isinstance(loaded, dict):
                continue
            coefficients = dict(DEFAULT_COEFFICIENTS)
            coefficients.update({key: float(value)
                                 for key, value in loaded.items()
                                 if isinstance(value, (int, float))})
            return cls(coefficients=coefficients, source=str(candidate))
        return cls()

    def __getitem__(self, key: str) -> float:
        return self.coefficients[key]

    def enumeration_cost(self, backend: str, rows: int, shards: int,
                         cpus: int,
                         row_cost: Optional[float] = None) -> float:
        """Modelled seconds to enumerate candidates over ``rows`` input rows."""
        if backend == "rows":
            return (self["rows_row_cost"] if row_cost is None else row_cost) * rows
        cost = self["columnar_overhead"]
        per_row = self["columnar_row_cost"] if row_cost is None else row_cost
        if shards > 1:
            cost += shards * self["shard_overhead"]
            cost += per_row * rows / max(1, min(shards, cpus))
        else:
            cost += per_row * rows
        return cost

    def estimation_cost(self, groups: int, samples: int, dimension: int,
                        batch: int) -> float:
        """Modelled seconds to decide ``groups`` at ``samples`` draws each.

        ``batch`` is the fusion batch size (``<= 1`` means the per-group
        path).  Launch overhead is paid once per kernel launch; fusion
        amortises it across a batch at a small per-group marginal cost.
        """
        launches = max(1, math.ceil(samples / _BLOCK))
        sampling = groups * samples * max(1, dimension) * self["sample_coeff"]
        if batch <= 1:
            return sampling + groups * launches * self["kernel_launch"]
        batches = math.ceil(groups / batch)
        return (sampling
                + batches * launches * self["kernel_launch"]
                + groups * launches * self["fused_group_coeff"])


@dataclass(frozen=True)
class PlanDecision:
    """One request's planned execution configuration, with its cost estimate."""

    backend: str
    shards: int
    jobs: int
    executor: str
    fusion: int
    estimated_cost: float

    def as_dict(self) -> dict:
        return {"backend": self.backend, "shards": self.shards,
                "jobs": self.jobs, "executor": self.executor,
                "fusion": self.fusion,
                "estimated_cost": self.estimated_cost}


@dataclass(frozen=True)
class PlannerStats:
    """Lifetime planning counters for the stats report."""

    plans: int
    backend_choices: dict
    fused_plans: int
    observed_rows: dict
    model_source: str

    def as_dict(self) -> dict:
        return {"plans": self.plans,
                "backend_choices": dict(self.backend_choices),
                "fused_plans": self.fused_plans,
                "observed_rows": dict(self.observed_rows),
                "model_source": self.model_source}


class Planner:
    """Pick backend/shards before enumeration, jobs/executor/fusion after.

    Thread-safe: the network server plans concurrent requests from worker
    threads, and runtime feedback mutates the observation state.
    """

    def __init__(self, model: Optional[CostModel] = None,
                 cpus: Optional[int] = None) -> None:
        self._model = CostModel.load() if model is None else model
        self._cpus = available_cpus() if cpus is None else max(1, cpus)
        self._lock = threading.Lock()
        #: backend -> [observed rows, observed seconds].
        self._observed: dict[str, list[float]] = {}
        self._plans = 0
        self._fused_plans = 0
        self._backend_choices: dict[str, int] = {}

    @property
    def model(self) -> CostModel:
        return self._model

    @property
    def cpus(self) -> int:
        return self._cpus

    # -- planning points ---------------------------------------------------

    def plan_enumeration(self, cardinalities: Sequence[int]) -> tuple[str, int]:
        """Backend + shard count for enumerating over these table sizes.

        Tiny tables fall back to the rows engine (the fixed columnar
        overhead dominates); large tables go columnar, sharded across the
        CPUs when splitting the row work beats the per-shard overhead.
        """
        rows = int(sum(cardinalities))
        options = [("rows", 1), ("columnar", 1)]
        if self._cpus > 1:
            options.append(("columnar", self._cpus))
        best = min(options, key=lambda option: self._model.enumeration_cost(
            option[0], rows, option[1], self._cpus,
            row_cost=self._observed_row_cost(option[0])))
        with self._lock:
            self._plans += 1
            self._backend_choices[best[0]] = (
                self._backend_choices.get(best[0], 0) + 1)
        return best

    def plan_execution(self, group_count: int,
                       dimensions: Sequence[int], *,
                       epsilon: float, delta: float, method: str,
                       adaptive: bool, coarse: float,
                       factor: float) -> tuple[int, str, int]:
        """``(jobs, executor, fusion batch)`` for the Monte-Carlo phase."""
        if group_count == 0:
            return 1, "thread", 0
        samples = self._planned_samples(epsilon, delta, adaptive, coarse,
                                        factor)
        dimension = (int(sum(dimensions) / len(dimensions))
                     if dimensions else 1)
        fusable = method in ("afpras", "auto") and any(dimensions)
        batch = 0
        if fusable and group_count > 1:
            solo = self._model.estimation_cost(group_count, samples,
                                               dimension, 1)
            candidate = min(group_count, MAX_FUSION_BATCH)
            fused = self._model.estimation_cost(group_count, samples,
                                                dimension, candidate)
            if fused < solo:
                batch = candidate
        tasks = math.ceil(group_count / batch) if batch > 1 else group_count
        per_task = self._model.estimation_cost(
            max(1, group_count // max(1, tasks)), samples, dimension,
            batch if batch > 1 else 1)
        jobs = 1
        executor = "thread"
        if self._cpus > 1 and tasks > 1:
            if per_task > 4 * self._model["process_task"]:
                jobs = min(self._cpus, tasks)
                executor = "process"
            elif per_task > 4 * self._model["thread_task"]:
                jobs = min(self._cpus, tasks)
        if batch > 1 and jobs > 1:
            # Re-balance: with several workers, smaller batches spread the
            # fused work evenly without losing the amortisation win.
            batch = max(2, min(batch, math.ceil(group_count / jobs)))
        with self._lock:
            if batch > 1:
                self._fused_plans += 1
        return jobs, executor, batch

    def decide(self, cardinalities: Sequence[int], group_hint: int,
               dimensions: Sequence[int], *, epsilon: float, delta: float,
               method: str, adaptive: bool, coarse: float,
               factor: float) -> PlanDecision:
        """Full-request decision (both planning points), for introspection."""
        backend, shards = self.plan_enumeration(cardinalities)
        jobs, executor, fusion = self.plan_execution(
            group_hint, dimensions, epsilon=epsilon, delta=delta,
            method=method, adaptive=adaptive, coarse=coarse, factor=factor)
        samples = self._planned_samples(epsilon, delta, adaptive, coarse,
                                        factor)
        dimension = (int(sum(dimensions) / len(dimensions))
                     if dimensions else 1)
        cost = (self._model.enumeration_cost(backend, int(sum(cardinalities)),
                                             shards, self._cpus)
                + self._model.estimation_cost(group_hint, samples, dimension,
                                              fusion if fusion > 1 else 1))
        return PlanDecision(backend=backend, shards=shards, jobs=jobs,
                            executor=executor, fusion=fusion,
                            estimated_cost=cost)

    # -- runtime feedback --------------------------------------------------

    def observe_enumeration(self, backend: str, rows: int,
                            seconds: float) -> None:
        """Feed an observed enumeration back into the per-row cost estimate."""
        if rows <= 0 or seconds < 0:
            return
        with self._lock:
            totals = self._observed.setdefault(backend, [0.0, 0.0])
            totals[0] += rows
            totals[1] += seconds

    def _observed_row_cost(self, backend: str) -> Optional[float]:
        """Observed per-row cost once enough rows back it; ``None`` before."""
        with self._lock:
            totals = self._observed.get(backend)
            if totals is None or totals[0] < _FEEDBACK_ROWS:
                return None
            return totals[1] / totals[0]

    def _planned_samples(self, epsilon: float, delta: float, adaptive: bool,
                         coarse: float, factor: float) -> int:
        if not adaptive:
            return hoeffding_sample_size(epsilon, delta)
        schedule = adaptive_schedule(epsilon, coarse=coarse, factor=factor)
        stage_delta = delta / len(schedule)
        return sum(hoeffding_sample_size(stage, stage_delta)
                   for stage in schedule)

    def stats(self) -> PlannerStats:
        with self._lock:
            return PlannerStats(
                plans=self._plans,
                backend_choices=dict(self._backend_choices),
                fused_plans=self._fused_plans,
                observed_rows={backend: int(totals[0]) for backend, totals
                               in self._observed.items()},
                model_source=self._model.source)
