"""Parallel task execution with serial-identical results.

The executor runs the scheduler's task groups across ``jobs`` worker
threads.  Because every task derives its own random stream from a
content-keyed ``SeedSequence`` spawn (:mod:`repro.service.rng`), a task's
result is independent of *which* worker runs it and *when*; the executor
therefore only has to return results in task order for ``jobs=N`` to be
bit-identical to ``jobs=1``.

Threads (not processes) are the right tool here: the hot loops are NumPy
matrix products that release the GIL, the compiled-kernel and result caches
are shared without pickling, and start-up cost is negligible for
request-sized batches.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

T = TypeVar("T")


def default_jobs() -> int:
    """A sensible worker count for ``jobs=0`` ("use all cores") requests."""
    return max(1, os.cpu_count() or 1)


def run_tasks(tasks: Sequence[Callable[[], T]], jobs: int = 1) -> list[T]:
    """Run ``tasks`` and return their results in task order.

    ``jobs <= 1`` runs inline (no pool, no thread switches); ``jobs == 0``
    uses one worker per CPU.  Exceptions propagate to the caller either way.
    """
    if jobs == 0:
        jobs = default_jobs()
    if jobs <= 1 or len(tasks) <= 1:
        return [task() for task in tasks]
    with ThreadPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
        futures = [pool.submit(task) for task in tasks]
        return [future.result() for future in futures]
