"""Parallel task execution with serial-identical results.

Two pools live here, for the two shapes of parallelism the service uses:

* **threads** (:func:`run_tasks`) -- the PR 2 executor.  The scheduler's
  task groups are closures over shared caches; NumPy kernels release the
  GIL, so threads overlap the Monte-Carlo phase without any pickling.
* **processes** (:func:`process_map`) -- the PR 4 executor.  Candidate
  enumeration over shards, and the certainty estimates when the service is
  configured with ``executor="process"``, are CPU-bound Python+NumPy mixes
  whose Python share the GIL serialises; a ``ProcessPoolExecutor`` spans
  cores instead.  Process tasks must be module-level functions over
  picklable payloads -- the shard relations themselves travel through
  shared-memory blocks (:mod:`repro.relational.sharding`), not the pickle.

Determinism is preserved by construction in both pools: every task derives
its own random stream from a content-keyed ``SeedSequence`` spawn
(:mod:`repro.service.rng`), so a task's result is independent of *which*
worker runs it and *when*, and both pools return results in task order.
``jobs=N`` is therefore bit-identical to ``jobs=1`` under either executor.

The process pool is created lazily, prefers the ``fork`` start method where
available (workers inherit the parent's imports; start-up is milliseconds,
not an interpreter boot per task wave) and is kept alive for reuse across
requests; :func:`shutdown_pools` tears it down, and ``atexit`` does so as a
backstop.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Optional, Sequence, TypeVar

T = TypeVar("T")
P = TypeVar("P")

#: Executor kinds the service accepts for its Monte-Carlo phase.
EXECUTORS = ("thread", "process")


def available_cpus() -> int:
    """CPUs actually available to this process.

    ``sched_getaffinity`` respects container/cgroup CPU masks where
    ``os.cpu_count()`` reports the whole host -- the difference is exactly
    the 1-core-host regression BENCH_PR4 documented, so the planner (and
    ``jobs=0``) must see the real budget.
    """
    if hasattr(os, "sched_getaffinity"):
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except OSError:  # pragma: no cover - platform-specific failure
            pass
    return max(1, os.cpu_count() or 1)


def default_jobs() -> int:
    """A sensible worker count for ``jobs=0`` ("use all cores") requests."""
    return available_cpus()


def run_tasks(tasks: Sequence[Callable[[], T]], jobs: int = 1) -> list[T]:
    """Run ``tasks`` and return their results in task order.

    ``jobs <= 1`` runs inline (no pool, no thread switches); ``jobs == 0``
    uses one worker per CPU.  Exceptions propagate to the caller either way.
    """
    if jobs == 0:
        jobs = default_jobs()
    if jobs <= 1 or len(tasks) <= 1:
        return [task() for task in tasks]
    with ThreadPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
        futures = [pool.submit(task) for task in tasks]
        return [future.result() for future in futures]


# -- the shared process pool -------------------------------------------------

_pool: Optional[ProcessPoolExecutor] = None
_pool_workers = 0
_pool_lock = threading.Lock()


def _context():
    """The multiprocessing start method backing the pool.

    ``fork`` keeps worker start-up at COW speed and lets workers inherit
    already-imported NumPy/SciPy; where it is unavailable (Windows, or
    macOS defaults) the platform default applies and payload shipping
    simply costs a little more.
    """
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _shared_pool(workers: int) -> ProcessPoolExecutor:
    global _pool, _pool_workers
    with _pool_lock:
        if _pool is None or _pool_workers < workers:
            if _pool is not None:
                _pool.shutdown(wait=True)
            _pool = ProcessPoolExecutor(max_workers=workers,
                                        mp_context=_context())
            _pool_workers = workers
        return _pool


def shutdown_pools() -> None:
    """Tear down the shared process pool (tests, interpreter exit)."""
    global _pool, _pool_workers
    with _pool_lock:
        if _pool is not None:
            _pool.shutdown(wait=True)
            _pool = None
            _pool_workers = 0


atexit.register(shutdown_pools)


def process_map(function: Callable[[P], T], payloads: Sequence[P],
                jobs: int = 1, chunksize: Optional[int] = None) -> list[T]:
    """Map a module-level ``function`` over ``payloads`` across processes.

    Results come back in payload order, so callers see serial semantics.
    ``jobs <= 1`` (or a single payload) runs inline without touching the
    pool; ``jobs == 0`` uses one worker per CPU.  ``chunksize`` batches
    consecutive payloads into one worker round-trip -- the per-shard
    batching knob -- defaulting to an even split over the workers.  The
    first worker exception propagates, as with the thread executor.
    """
    if jobs == 0:
        jobs = default_jobs()
    if jobs <= 1 or len(payloads) <= 1:
        return [function(payload) for payload in payloads]
    workers = min(jobs, len(payloads))
    if chunksize is None:
        chunksize = max(1, -(-len(payloads) // workers))
    pool = _shared_pool(workers)
    try:
        return list(pool.map(function, payloads, chunksize=chunksize))
    except BrokenProcessPool:
        # A worker died (OOM kill, signal).  Drop the poisoned pool and run
        # inline: slower, deterministic, never wrong.
        shutdown_pools()
        return [function(payload) for payload in payloads]
