"""Fused Monte-Carlo estimation: one kernel sweep per round for many groups.

The per-group execution path of :class:`~repro.service.service.AnnotationService`
launches one compiled-kernel estimate per skeleton group.
:func:`decide_fused_batch` is its fused twin: it compiles every group of a
batch, stacks the compiled kernels block-diagonally
(:mod:`repro.compile.fusion`), and then decides each Monte-Carlo round for
the *whole batch* with a single fused kernel pass.

Bit-identity with the per-group path is preserved end to end:

* **sampling is never fused** -- each group draws its direction blocks from
  its own stream, spawned from the request root under the group's canonical
  lineage digest (plus replica and adaptive-stage tokens), with the exact
  block schedule of :func:`~repro.geometry.montecarlo.estimate_indicator_mean_batch`;
* **deciding is fused but partitioned by kernel branch**
  (:func:`~repro.compile.fusion.fusion_mode`), so every group's decisions come
  out of the same arithmetic as its unfused kernel;
* **results are constructed field-for-field** as
  :func:`~repro.certainty.afpras.afpras_measure` (and, for adaptive ladders,
  :func:`~repro.service.adaptive.adaptive_certainty`) would construct them --
  fused execution is visible only in the service's fusion counters, never in
  an answer.

Adaptive requests fuse per rung: every stage of the epsilon ladder runs as
one fused pass over the still-active groups, each drawing from its own
stage-keyed stream.  A group retires from the batch when a stage answers it
exactly (the ladder's short-circuit) -- for sampled AFPRAS groups that never
happens, so retirement is protocol-completeness, not a hot path -- and the
batch re-fuses over the survivors.

Only groups whose resolved method is AFPRAS sampling in dimension >= 1 are
eligible (:func:`fusable_method`); everything else -- exact folds, FPRAS
fallbacks, zero-dimensional constants -- keeps today's per-group path, which
tries those backends in exactly the historical order.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Sequence

import numpy as np

from repro.caching import LruCache
from repro.certainty.exact import ExactComputationError, ExactOptions, exact_measure
from repro.certainty.result import CertaintyResult
from repro.compile import DEFAULT_BLOCK_SIZE, compile_formula, fuse_formulas, fusion_mode
from repro.constraints.translate import TranslationResult
from repro.geometry.ball import sample_direction
from repro.geometry.montecarlo import hoeffding_sample_size
from repro.service.adaptive import (
    AdaptiveUpdate,
    adaptive_schedule,
    intersect_intervals,
)
from repro.service.rng import spawn_stream


@dataclass(frozen=True)
class FusedTask:
    """One schedulable group in content form (picklable for process pools)."""

    translation: TranslationResult
    digest: bytes
    replica: tuple[int, ...] = ()


@dataclass
class FusionAccounting:
    """What a fused batch cost: the counters the service's stats surface."""

    kernels_launched: int = 0
    batch_sizes: list = field(default_factory=list)


#: Callback receiving ``(task position, AdaptiveUpdate)`` per fused stage.
PositionUpdateCallback = Callable[[int, AdaptiveUpdate], None]

#: Memo of fused artefacts keyed by the batch's canonical digests.  A fused
#: batch is a pure function of its member kernels, and those are themselves
#: memoised on canonical digests -- so a repeated request (or the next rung
#: of an adaptive ladder over the same survivors) reuses the block-stacked
#: artefact instead of rebuilding offset arrays and block matrices.
_FUSED_CACHE = LruCache(128, name="fused kernels")


def _fuse_cached(compiled: Sequence, digests: tuple[bytes, ...]):
    return _FUSED_CACHE.get_or_compute(
        digests, lambda: fuse_formulas(compiled))


def fusable_method(method: str, translation: TranslationResult) -> bool:
    """Whether a group with this resolved ``method`` may join a fused batch.

    ``"afpras"`` groups fuse whenever they actually sample (dimension >= 1;
    zero-dimensional formulas fold to exact constants without drawing).
    ``"auto"`` groups fuse only when the historical ladder would fall through
    to AFPRAS: the exact backend is probed first (it consumes no randomness,
    so probing is free of stream effects), and linear formulas are left to
    the per-group path where the FPRAS gets its historical attempt.
    ``"exact"``/``"fpras"`` never fuse.
    """
    if not translation.relevant_variables:
        return False
    if method == "afpras":
        return True
    if method != "auto":
        return False
    try:
        exact_measure(translation, ExactOptions())
        return False
    except ExactComputationError:
        pass
    return not translation.formula.is_linear()


def decide_fused_batch(tasks: Sequence[FusedTask],
                       *,
                       epsilon: float,
                       delta: float,
                       adaptive: bool,
                       root: np.random.SeedSequence,
                       coarse: float,
                       factor: float,
                       on_update: Optional[PositionUpdateCallback] = None,
                       block_size: int = DEFAULT_BLOCK_SIZE
                       ) -> tuple[list[CertaintyResult], FusionAccounting]:
    """Estimate every task of a batch through fused kernel launches.

    Returns results in task order (dimension metadata is the canonical
    translation's; the service patches the ambient dimension back, as it
    does on the per-group path) plus the batch's fusion accounting.
    """
    accounting = FusionAccounting()
    results: list[Optional[CertaintyResult]] = [None] * len(tasks)
    by_mode: dict[str, list[int]] = {}
    compiled = []
    for position, task in enumerate(tasks):
        kernel = compile_formula(task.translation.formula,
                                 tuple(task.translation.relevant_variables),
                                 digest=task.digest)
        compiled.append(kernel)
        by_mode.setdefault(fusion_mode(kernel), []).append(position)
    for positions in by_mode.values():
        accounting.batch_sizes.append(len(positions))
        if adaptive:
            outcomes = _fused_adaptive(
                [tasks[i] for i in positions], [compiled[i] for i in positions],
                positions, epsilon, delta, root, coarse, factor, on_update,
                accounting, block_size)
        else:
            fused = _fuse_cached([compiled[i] for i in positions],
                                 tuple(tasks[i].digest for i in positions))
            positives, samples = _fused_pass(
                fused, [tasks[i] for i in positions], epsilon, delta, root,
                (), accounting, block_size)
            outcomes = [
                _sampled_result(task, int(count) / samples, samples,
                                epsilon, delta)
                for task, count in zip([tasks[i] for i in positions], positives)]
        for position, outcome in zip(positions, outcomes):
            results[position] = outcome
    return results, accounting


def run_fused_payload(payload) -> tuple[list[CertaintyResult], int, list]:
    """Process-pool twin of :func:`decide_fused_batch` (module-level, picklable).

    The payload carries only content -- translations, digests, replica
    tokens, request parameters, and the root seed's identity -- and the
    worker re-derives every stream exactly as the in-process path does.
    """
    (items, epsilon, delta, adaptive, entropy, spawn_key, coarse,
     factor) = payload
    root = np.random.SeedSequence(entropy=entropy, spawn_key=spawn_key)
    tasks = [FusedTask(translation=translation, digest=digest, replica=replica)
             for translation, digest, replica in items]
    results, accounting = decide_fused_batch(
        tasks, epsilon=epsilon, delta=delta, adaptive=adaptive, root=root,
        coarse=coarse, factor=factor, on_update=None)
    return results, accounting.kernels_launched, accounting.batch_sizes


def fused_payload(tasks: Sequence[FusedTask], epsilon: float, delta: float,
                  adaptive: bool, root: np.random.SeedSequence,
                  coarse: float, factor: float) -> tuple:
    """Build the picklable payload :func:`run_fused_payload` consumes."""
    return (tuple((task.translation, task.digest, task.replica)
                  for task in tasks),
            epsilon, delta, adaptive, root.entropy, tuple(root.spawn_key),
            coarse, factor)


# -- internals ---------------------------------------------------------------


def _fused_pass(fused, tasks: Sequence[FusedTask], epsilon: float,
                delta: float, root: np.random.SeedSequence,
                stage_tokens: tuple[int, ...], accounting: FusionAccounting,
                block_size: int) -> tuple[np.ndarray, int]:
    """One fused Hoeffding estimate over every task, per-group streams.

    Mirrors :func:`~repro.geometry.montecarlo.estimate_indicator_mean_batch`:
    the same sample count, split into the same blocks, each group drawing
    its block from its own spawned stream -- only the *deciding* is fused.
    """
    samples = hoeffding_sample_size(epsilon, delta)
    generators = [spawn_stream(root, task.digest, *task.replica, *stage_tokens)
                  for task in tasks]
    positives = np.zeros(len(tasks), dtype=np.int64)
    remaining = samples
    while remaining:
        count = min(remaining, block_size)
        blocks = [sample_direction(dimension, generator, size=count)
                  for dimension, generator in zip(fused.dimensions, generators)]
        decisions = fused.asymptotic_truth_batch(blocks)
        positives += np.count_nonzero(decisions, axis=0)
        remaining -= count
        accounting.kernels_launched += 1
    return positives, samples


def _sampled_result(task: FusedTask, value: float, samples: int,
                    epsilon: float, delta: float) -> CertaintyResult:
    """Field-for-field the result :func:`afpras_measure` would construct."""
    return CertaintyResult(
        value=value,
        method="afpras",
        guarantee="additive",
        epsilon=epsilon,
        delta=delta,
        samples=samples,
        dimension=task.translation.dimension,
        relevant_dimension=len(task.translation.relevant_variables),
        details={"engine": "batched"},
    )


def _fused_adaptive(tasks: Sequence[FusedTask], compiled: Sequence,
                    positions: Sequence[int], epsilon: float, delta: float,
                    root: np.random.SeedSequence, coarse: float, factor: float,
                    on_update: Optional[PositionUpdateCallback],
                    accounting: FusionAccounting,
                    block_size: int) -> list[CertaintyResult]:
    """The epsilon ladder of :func:`adaptive_certainty`, fused per rung.

    Every stage runs as one fused pass over the active groups (stage-keyed
    streams, union-bound ``delta / K`` budget, running interval
    intersection); a group whose stage answers exactly retires from the
    batch and the survivors re-fuse.
    """
    schedule = adaptive_schedule(epsilon, coarse=coarse, factor=factor)
    stages = len(schedule)
    stage_delta = delta / stages
    count = len(tasks)
    intervals: list[Optional[tuple[float, float]]] = [None] * count
    traces: list[list[dict]] = [[] for _ in range(count)]
    lasts: list[Optional[CertaintyResult]] = [None] * count
    totals = [0] * count
    active = list(range(count))
    fused = _fuse_cached(compiled, tuple(task.digest for task in tasks))
    for stage, stage_epsilon in enumerate(schedule):
        positives, samples = _fused_pass(
            fused, [tasks[i] for i in active], stage_epsilon, stage_delta,
            root, (stage,), accounting, block_size)
        retired = []
        for slot, index in enumerate(active):
            result = _sampled_result(tasks[index], int(positives[slot]) / samples,
                                     samples, stage_epsilon, stage_delta)
            exact = result.guarantee == "exact"
            final = exact or stage == stages - 1
            intervals[index] = intersect_intervals(intervals[index], result.interval())
            traces[index].append({
                "stage": stage,
                "epsilon": None if exact else stage_epsilon,
                "value": result.value,
                "interval": list(intervals[index]),
                "samples": result.samples,
            })
            totals[index] += result.samples
            lasts[index] = result
            if on_update is not None:
                on_update(positions[index], AdaptiveUpdate(
                    stage=stage, stages=stages,
                    epsilon=stage_epsilon, value=result.value,
                    interval=intervals[index], samples=result.samples,
                    final=final))
            if exact:  # pragma: no cover - sampled results are never exact
                retired.append(index)
        if retired:  # pragma: no cover - see above
            active = [index for index in active if index not in retired]
            if not active:
                break
            fused = _fuse_cached([compiled[i] for i in active],
                                 tuple(tasks[i].digest for i in active))
    outcomes = []
    for index in range(count):
        last = lasts[index]
        details = dict(last.details)
        details["adaptive"] = traces[index]
        details["interval"] = list(intervals[index])
        if last.guarantee == "exact":  # pragma: no cover - sampled, never exact
            outcomes.append(replace(last, samples=totals[index], details=details))
        else:
            outcomes.append(replace(last, samples=totals[index], delta=delta,
                                    details=details))
    return outcomes
