"""A minimal HTTP/1.1 adapter over the server app (no dependencies).

The routes mirror the TCP wire protocol one-to-one:

``GET /healthz``
    Liveness: ``200`` with the app's health object (status turns
    ``draining`` during shutdown).
``GET /stats``
    The server/service counter report as JSON -- the same payload as the
    TCP ``stats`` op, including the single-flight coalescing counters the
    acceptance criteria audit.
``GET /metrics``
    Prometheus text exposition (version 0.0.4): request/phase latency
    histograms plus scrape-time exports of every server and service
    lifetime counter.  Rendering happens only when scraped; the query hot
    path pays nothing for it.
``GET /history?seconds=N``
    The tsdb window: periodic metrics snapshots kept server-side, the
    data ``repro top`` renders sparklines and windowed quantiles from.
``GET /profile?seconds=N``
    Runs the sampling profiler for N seconds (default 1, capped at 60)
    and answers ``text/plain`` collapsed stacks -- pipe straight into
    ``flamegraph.pl`` or speedscope.
``GET /trace?id=TRACE_ID``
    One stored trace as a Chrome trace-event JSON document (the latest
    trace when ``id`` is omitted); 404 when nothing is stored.
``GET /alerts``
    SLO burn-rate alert states plus a rolled-up ``firing`` flag.
``POST /mutate``
    Body is a TCP mutation message (``{"sql": "INSERT ..."}``).  The
    response is the terminal ``mutation`` event (with the committed
    ``data_version``) or a typed ``error`` event with its code mapped
    onto a status (``validation`` -> 400, ``conflict`` -> 409).
``POST /query``
    Body is a TCP query message (``{"sql": ..., "options": {...}}``).  The
    default response is one JSON object -- the terminal ``result`` or
    ``error`` event, with ``error`` codes mapped onto status codes
    (``bad_request``/``invalid_query`` -> 400, ``overloaded``/``draining``
    -> 503, ``internal`` -> 500).  With ``"stream": true`` in the body the
    response is ``application/x-ndjson``: every adaptive update event as
    its own line, terminal event last, connection closed at the end
    (HTTP/1.1 EOF-delimited body).

Connections are single-request: the adapter always answers with
``Connection: close``.  This keeps the parser ~80 lines and is exactly
what health probes, curl and the benchmark harness need; long-lived
multiplexed traffic belongs on the TCP protocol.
"""

from __future__ import annotations

import asyncio
import inspect
import json
from urllib.parse import parse_qsl

from repro.server.protocol import MAX_LINE_BYTES, dump_line

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 409: "Conflict",
            413: "Payload Too Large",
            500: "Internal Server Error", 503: "Service Unavailable"}

#: Wire error codes -> HTTP status.
_ERROR_STATUS = {"bad_request": 400, "invalid_query": 400,
                 "validation": 400, "conflict": 409,
                 "overloaded": 503, "draining": 503,
                 "unavailable": 503, "internal": 500}


async def _maybe_await(value):
    """Sync for :class:`ServerApp`, async for the cluster coordinator."""
    if inspect.isawaitable(value):
        return await value
    return value


def _response(status: int, body: bytes,
              content_type: str = "application/json") -> bytes:
    head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n")
    return head.encode("latin-1") + body


def _json_response(status: int, payload: dict) -> bytes:
    return _response(status, json.dumps(payload).encode("utf-8"))


async def _read_request(reader: asyncio.StreamReader):
    """Parse one request; returns ``(method, target, body)`` or ``None``."""
    request_line = await reader.readline()
    if not request_line.strip():
        return None
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise ValueError("malformed request line")
    method, target, _version = parts
    content_length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                raise ValueError("malformed Content-Length")
    if content_length > MAX_LINE_BYTES:
        raise ValueError("payload too large")
    body = await reader.readexactly(content_length) if content_length else b""
    path, _, query_string = target.partition("?")
    params = dict(parse_qsl(query_string)) if query_string else {}
    return method, path, params, body


def _float_param(params: dict, key: str, default=None):
    """A numeric query parameter, or raise ``ValueError`` with the key."""
    raw = params.get(key)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"'{key}' must be a number, got {raw!r}") from None


async def handle_http_connection(server, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
    """Serve one HTTP request on a fresh connection, then close."""
    try:
        request = await _read_request(reader)
    except (ValueError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
        writer.write(_json_response(400, {"error": "malformed HTTP request"}))
        await writer.drain()
        return
    if request is None:
        return
    method, target, params, body = request
    app = server.app

    if target == "/healthz":
        if method != "GET":
            writer.write(_json_response(405, {"error": "use GET"}))
        else:
            health = await _maybe_await(app.health())
            writer.write(_json_response(200, health))
    elif target == "/stats":
        if method != "GET":
            writer.write(_json_response(405, {"error": "use GET"}))
        else:
            stats = await _maybe_await(app.stats())
            writer.write(_json_response(200, stats))
    elif target == "/metrics":
        if method != "GET":
            writer.write(_json_response(405, {"error": "use GET"}))
        else:
            metrics = await _maybe_await(app.metrics_text())
            writer.write(_response(
                200, metrics.encode("utf-8"),
                content_type="text/plain; version=0.0.4; charset=utf-8"))
    elif target == "/history":
        if method != "GET":
            writer.write(_json_response(405, {"error": "use GET"}))
        else:
            try:
                seconds = _float_param(params, "seconds")
            except ValueError as error:
                writer.write(_json_response(400, {"error": str(error)}))
            else:
                payload = await _maybe_await(app.history(seconds))
                writer.write(_json_response(200, payload))
    elif target == "/profile":
        if method != "GET":
            writer.write(_json_response(405, {"error": "use GET"}))
        else:
            try:
                seconds = _float_param(params, "seconds", 1.0)
            except ValueError as error:
                writer.write(_json_response(400, {"error": str(error)}))
            else:
                if seconds is None or seconds <= 0:
                    writer.write(_json_response(
                        400, {"error": "'seconds' must be positive"}))
                else:
                    payload = await _maybe_await(app.profile(seconds=seconds))
                    writer.write(_response(
                        200, payload["collapsed"].encode("utf-8"),
                        content_type="text/plain; charset=utf-8"))
    elif target == "/trace":
        if method != "GET":
            writer.write(_json_response(405, {"error": "use GET"}))
        else:
            payload = await _maybe_await(app.trace_export(params.get("id")))
            if payload is None:
                writer.write(_json_response(404, {"error": "no stored trace"}))
            else:
                writer.write(_json_response(200, payload["chrome"]))
    elif target == "/alerts":
        if method != "GET":
            writer.write(_json_response(405, {"error": "use GET"}))
        else:
            payload = await _maybe_await(app.alerts_report())
            writer.write(_json_response(200, payload))
    elif target in getattr(app, "http_routes", {}):
        # App-specific read-only routes (the coordinator's /cluster).
        if method != "GET":
            writer.write(_json_response(405, {"error": "use GET"}))
        else:
            payload = await app.http_routes[target](params)
            writer.write(_json_response(200, payload))
    elif target == "/query":
        if method != "POST":
            writer.write(_json_response(405, {"error": "use POST"}))
        else:
            server._enter_request()
            try:
                await _handle_query(app, body, writer)
            finally:
                server._exit_request()
    elif target == "/mutate":
        if method != "POST":
            writer.write(_json_response(405, {"error": "use POST"}))
        else:
            server._enter_request()
            try:
                await _handle_mutate(app, body, writer)
            finally:
                server._exit_request()
    else:
        writer.write(_json_response(404, {"error": f"no route {target}"}))
    await writer.drain()


async def _handle_query(app, body: bytes, writer: asyncio.StreamWriter) -> None:
    try:
        message = json.loads(body)
        if not isinstance(message, dict):
            raise ValueError("body must be a JSON object")
    except (ValueError, UnicodeDecodeError) as error:
        writer.write(_json_response(400, {"error": f"malformed body: {error}"}))
        return
    streaming = bool(message.get("stream"))
    if streaming:
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Connection: close\r\n\r\n")
        async for event in app.query_events(message):
            writer.write(dump_line(event))
            await writer.drain()
        return
    terminal = None
    async for event in app.query_events(message):
        terminal = event  # non-streaming: only the terminal event is sent
    status = 200
    if terminal.get("type") == "error":
        status = _ERROR_STATUS.get(terminal.get("code"), 500)
    writer.write(_json_response(status, terminal))


async def _handle_mutate(app, body: bytes,
                         writer: asyncio.StreamWriter) -> None:
    try:
        message = json.loads(body)
        if not isinstance(message, dict):
            raise ValueError("body must be a JSON object")
    except (ValueError, UnicodeDecodeError) as error:
        writer.write(_json_response(400, {"error": f"malformed body: {error}"}))
        return
    event = await app.mutate(message)
    status = 200
    if event.get("type") == "error":
        status = _ERROR_STATUS.get(event.get("code"), 500)
    writer.write(_json_response(status, event))
