"""The wire protocol of the repro network server.

One framing, two transports.  Every message is a single JSON object; the
TCP transport delimits messages with newlines (NDJSON), the HTTP adapter
carries the same objects as request/response bodies (and as an NDJSON
stream for adaptive responses).  This module owns everything both sides
must agree on:

* **requests** -- :func:`parse_query_request` validates a client message
  against the option schema and resolves request defaults, so malformed
  input dies at the protocol boundary with a typed error instead of
  surfacing as a traceback from deep inside the engine;
* **values** -- database constants travel as themselves, marked nulls as
  the same ``⊤:name`` / ``⊥:name`` strings the CSV layer uses
  (:func:`encode_value` / :func:`decode_value`);
* **answers** -- :func:`encode_answer` / :func:`decode_answer` round-trip
  an :class:`~repro.service.answers.AnnotatedAnswer` including its full
  :class:`~repro.certainty.result.CertaintyResult` and canonical-lineage
  digest, bit-exactly: floats are serialised by ``json`` via ``repr``
  (shortest round-trip form), so a decoded certainty equals the served one;
* **coalescing keys** -- :func:`request_key` is the digest under which the
  server single-flights concurrent identical requests;
* **trace context** -- query and mutation messages may carry an optional
  top-level ``traceparent`` field (:data:`TRACEPARENT_KEY`, W3C
  ``00-<trace_id>-<parent_span_id>-01`` layout; see
  :mod:`repro.obs.propagate`).  It rides *outside* ``options`` on purpose:
  options feed :func:`request_key`, and trace context must never change
  coalescing identity -- a traced and an untraced copy of the same query
  share one flight.  Result and mutation terminals from an observing
  server carry the request's ``trace_id`` back to the client.

Error taxonomy (the ``code`` field of ``type: "error"`` messages):

``bad_request``
    The message is not valid JSON, not an object, or violates the option
    schema.
``invalid_query``
    The SQL failed to parse/translate, or referenced unknown tables or
    columns.
``validation``
    A mutation statement failed validation: unknown table or column,
    wrong VALUES arity, a type mismatch, or arithmetic over a marked
    null.  The snapshot is untouched.
``conflict``
    A mutation would have produced a duplicate row under the engine's
    set semantics.  The snapshot is untouched.
``overloaded``
    Admission control rejected the request: the server already has
    ``max_pending`` computations queued or running.  Back off and retry.
``draining``
    The server received SIGTERM and is finishing in-flight requests; it
    will not accept new ones.
``internal``
    Anything else -- a bug, reported with the exception's message.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping

from repro.certainty.result import CertaintyResult
# Redundant alias = explicit re-export: transports import the trace-context
# field name from the protocol module they already depend on.
from repro.obs.propagate import TRACEPARENT_KEY as TRACEPARENT_KEY
from repro.service.answers import AnnotatedAnswer
from repro.service.planner import PLANNER_MODES
from repro.service.service import SERVICE_METHODS, normalise_sql
from repro.relational.values import BaseNull, NumNull

#: Prefixes marked nulls travel under (the CSV layer's convention).
_NUM_NULL_PREFIX = "⊤:"
_BASE_NULL_PREFIX = "⊥:"

#: Option keys a query request may carry, with their validators.
_OPTION_SCHEMA = ("epsilon", "delta", "method", "limit", "seed", "adaptive",
                  "planner")

#: Longest accepted wire line (requests and responses), 16 MiB.  Bounds the
#: per-connection buffer so one client cannot balloon the server's memory.
MAX_LINE_BYTES = 16 * 1024 * 1024


class ProtocolError(Exception):
    """A request the server refuses, carrying its wire-level error code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code

    def as_event(self, request_id: Any = None) -> dict:
        return error_event(request_id, self.code, str(self))


class OverloadError(ProtocolError):
    """Typed backpressure rejection: the admission queue is full."""

    def __init__(self, message: str) -> None:
        super().__init__("overloaded", message)


def error_event(request_id: Any, code: str, message: str) -> dict:
    return {"id": request_id, "type": "error", "code": code,
            "message": message}


def mutation_event(request_id: Any, outcome) -> dict:
    """The terminal message of a successful mutation statement.

    Carries the :class:`~repro.engine.mutate.MutationOutcome` fields --
    including ``data_version``, the version the statement committed, so a
    client can correlate later query results with the data they saw.
    """
    return {"id": request_id, "type": "mutation", **outcome.as_dict()}


def parse_mutation_request(message: Mapping) -> str:
    """Validate a mutation message; returns the statement's SQL text."""
    sql = message.get("sql", message.get("statement"))
    if not isinstance(sql, str) or not sql.strip():
        raise ProtocolError("bad_request",
                            "mutation requests need a non-empty 'sql' string")
    return sql


# -- requests ----------------------------------------------------------------


def parse_query_request(message: Mapping,
                        defaults: Mapping[str, Any]) -> tuple[str, dict]:
    """Validate a query message and resolve its options against defaults.

    Returns ``(sql, options)`` where ``options`` has every key of
    ``defaults`` filled in -- resolution happens *before* coalescing, so a
    request that spells out the default epsilon and one that omits it share
    a single-flight key.
    """
    sql = message.get("sql", message.get("query"))
    if not isinstance(sql, str) or not sql.strip():
        raise ProtocolError("bad_request",
                            "query requests need a non-empty 'sql' string")
    supplied = message.get("options", {})
    if not isinstance(supplied, Mapping):
        raise ProtocolError("bad_request", "'options' must be an object")
    unknown = sorted(set(supplied) - set(_OPTION_SCHEMA))
    if unknown:
        raise ProtocolError(
            "bad_request",
            f"unknown option(s) {', '.join(unknown)}; "
            f"accepted: {', '.join(_OPTION_SCHEMA)}")
    options = dict(defaults)
    options.update({key: supplied[key] for key in _OPTION_SCHEMA
                    if key in supplied})
    _validate_options(options)
    return sql, options


def _validate_options(options: Mapping[str, Any]) -> None:
    epsilon = options.get("epsilon")
    if not isinstance(epsilon, (int, float)) or isinstance(epsilon, bool) \
            or not 0.0 < float(epsilon) <= 1.0:
        raise ProtocolError("bad_request",
                            f"epsilon must be in (0, 1], got {epsilon!r}")
    delta = options.get("delta")
    if delta is not None and (not isinstance(delta, (int, float))
                              or isinstance(delta, bool)
                              or not 0.0 < float(delta) < 1.0):
        raise ProtocolError("bad_request",
                            f"delta must be in (0, 1), got {delta!r}")
    method = options.get("method")
    if method not in SERVICE_METHODS:
        raise ProtocolError(
            "bad_request",
            f"method must be one of {', '.join(SERVICE_METHODS)}, "
            f"got {method!r}")
    limit = options.get("limit")
    if limit is not None and (not isinstance(limit, int)
                              or isinstance(limit, bool) or limit < 0):
        raise ProtocolError("bad_request",
                            f"limit must be a non-negative integer, got {limit!r}")
    seed = options.get("seed")
    if seed is not None and (not isinstance(seed, int)
                             or isinstance(seed, bool) or seed < 0):
        raise ProtocolError("bad_request",
                            f"seed must be a non-negative integer, got {seed!r}")
    if not isinstance(options.get("adaptive"), bool):
        raise ProtocolError("bad_request", "adaptive must be a boolean")
    planner = options.get("planner")
    if planner is not None and planner not in PLANNER_MODES:
        # None means "the server's configured default" (and keeps defaults
        # dicts from planner-unaware callers valid).
        raise ProtocolError(
            "bad_request",
            f"planner must be one of {', '.join(PLANNER_MODES)}, "
            f"got {planner!r}")


def request_key(sql: str, options: Mapping[str, Any]) -> bytes:
    """The single-flight coalescing key of one fully-resolved request.

    SHA-256 over the normalised SQL (whitespace collapsed outside string
    literals only -- the service's cache-key normalisation, so literal
    contents can never make two different queries coalesce) and the
    sorted, resolved options.  Computed synchronously in the event loop --
    before parsing or planning -- so a burst of identical requests
    coalesces before any of them costs anything.  Structural sharing
    *across* different query texts happens one layer down, where the
    service single-flights estimates on the canonical lineage digest.
    """
    payload = json.dumps(
        {"sql": normalise_sql(sql),
         "options": {key: options.get(key) for key in _OPTION_SCHEMA}},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).digest()


# -- values and answers ------------------------------------------------------


def encode_value(value: Any) -> Any:
    """A database value as it travels on the wire."""
    if isinstance(value, NumNull):
        return _NUM_NULL_PREFIX + value.name
    if isinstance(value, BaseNull):
        return _BASE_NULL_PREFIX + value.name
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, (int, float)):
        return value
    return str(value)


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value` (nulls come back as marked-null objects)."""
    if isinstance(value, str):
        if value.startswith(_NUM_NULL_PREFIX):
            return NumNull(value[len(_NUM_NULL_PREFIX):])
        if value.startswith(_BASE_NULL_PREFIX):
            return BaseNull(value[len(_BASE_NULL_PREFIX):])
    return value


def sanitize(value: Any) -> Any:
    """Best-effort JSON-safe projection of arbitrary detail payloads.

    Certainty details may carry NumPy scalars, arrays, or nested traces;
    everything JSON cannot carry natively is converted (scalars to Python
    numbers, arrays to lists, bytes to hex, unknown objects to ``str``).
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, dict):
        return {str(key): sanitize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize(item) for item in value]
    # NumPy scalars and arrays, without importing numpy here.
    item = getattr(value, "item", None)
    if callable(item) and not getattr(value, "shape", ()):
        try:
            return sanitize(item())
        except (TypeError, ValueError):  # pragma: no cover - defensive
            pass
    tolist = getattr(value, "tolist", None)
    if callable(tolist):
        try:
            return sanitize(tolist())
        except (TypeError, ValueError):  # pragma: no cover - defensive
            pass
    return str(value)


def encode_certainty(certainty: CertaintyResult) -> dict:
    low, high = certainty.interval()
    return {
        "value": certainty.value,
        "method": certainty.method,
        "guarantee": certainty.guarantee,
        "epsilon": certainty.epsilon,
        "delta": certainty.delta,
        "samples": certainty.samples,
        "dimension": certainty.dimension,
        "relevant_dimension": certainty.relevant_dimension,
        "interval": [low, high],
        "details": sanitize(certainty.details),
    }


def decode_certainty(payload: Mapping) -> CertaintyResult:
    return CertaintyResult(
        value=payload["value"],
        method=payload["method"],
        guarantee=payload["guarantee"],
        epsilon=payload.get("epsilon"),
        delta=payload.get("delta"),
        samples=payload.get("samples", 0),
        dimension=payload.get("dimension", 0),
        relevant_dimension=payload.get("relevant_dimension", 0),
        details=dict(payload.get("details") or {}),
    )


def encode_answer(answer: AnnotatedAnswer) -> dict:
    return {
        "values": [encode_value(value) for value in answer.values],
        "columns": list(answer.columns),
        "witnesses": answer.witnesses,
        "certainty": encode_certainty(answer.certainty),
        "lineage": (answer.lineage_digest.hex()
                    if answer.lineage_digest is not None else None),
    }


def decode_answer(payload: Mapping) -> AnnotatedAnswer:
    lineage = payload.get("lineage")
    return AnnotatedAnswer(
        values=tuple(decode_value(value) for value in payload["values"]),
        columns=tuple(payload["columns"]),
        certainty=decode_certainty(payload["certainty"]),
        witnesses=payload["witnesses"],
        lineage_digest=bytes.fromhex(lineage) if lineage else None,
    )


# -- framing -----------------------------------------------------------------


def dump_line(message: Mapping) -> bytes:
    """One wire message as an NDJSON line (UTF-8, trailing newline)."""
    return (json.dumps(message, separators=(",", ":"),
                       ensure_ascii=False) + "\n").encode("utf-8")


def load_line(line: bytes) -> dict:
    """Parse one NDJSON line into a message object, or raise ProtocolError."""
    try:
        message = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise ProtocolError("bad_request", f"malformed JSON: {error}")
    if not isinstance(message, dict):
        raise ProtocolError("bad_request",
                            "wire messages must be JSON objects")
    return message


def update_event(request_id: Any, lineage_hex: str, update) -> dict:
    """An adaptive refinement streamed mid-request."""
    low, high = update.interval
    return {"id": request_id, "type": "update", "lineage": lineage_hex,
            "stage": update.stage, "stages": update.stages,
            "epsilon": update.epsilon, "value": update.value,
            "interval": [low, high], "samples": update.samples,
            "final": update.final}


def result_event(request_id: Any, response) -> dict:
    """The terminal message of a successful query.

    Coalesced followers receive the leader's event verbatim (only the
    ``id`` is rewritten per subscriber), so duplicate in-flight requests
    observe byte-identical payloads -- including ``elapsed_seconds``, which
    is the one computation's cost, not the follower's wait.
    """
    stats = response.stats
    return {
        "id": request_id,
        "type": "result",
        "answers": [encode_answer(answer) for answer in response.answers],
        "stats": {
            "candidates": stats.candidates,
            "groups": stats.groups,
            "groups_from_cache": stats.groups_from_cache,
            "groups_computed": stats.groups_computed,
            "tuples_batched": stats.tuples_batched,
            "elapsed_seconds": stats.elapsed_seconds,
            "kernels_launched": stats.kernels_launched,
            "tuples_fused": stats.tuples_fused,
            "fusion_batches": stats.fusion_batches,
            **({"planned": stats.planned}
               if stats.planned is not None else {}),
        },
    }
