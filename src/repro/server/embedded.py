"""Run the network server inside the current process, on a daemon thread.

Tests, benchmarks and the load generator all need "a real server on a real
socket" without spawning a subprocess: the event loop runs on a background
thread, listeners bind ephemeral ports, and :meth:`EmbeddedServer.stop`
performs the same graceful drain SIGTERM would.  Because the server's
:class:`~repro.service.AnnotationService` lives in this process, a test can
also reach through :attr:`EmbeddedServer.app` and assert on coalescing and
admission counters directly.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from repro.server.netserver import NetworkServer


class EmbeddedServer:
    """A :class:`NetworkServer` on a background event-loop thread."""

    def __init__(self, service, *, host: str = "127.0.0.1",
                 max_pending: int = 64, workers: int = 4,
                 http: bool = True, drain_timeout: float = 30.0,
                 observe: bool = True) -> None:
        self._server = NetworkServer(
            service, host=host, port=0, http_port=0 if http else None,
            max_pending=max_pending, workers=workers,
            drain_timeout=drain_timeout, observe=observe)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._stopped = threading.Event()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "EmbeddedServer":
        assert self._thread is None, "server already started"
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-embedded-server")
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._server.start())
        except BaseException as error:  # pragma: no cover - bind failures
            self._startup_error = error
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.close()
            self._stopped.set()

    def stop(self, timeout: float = 60.0) -> bool:
        """Drain gracefully and stop the loop; returns drain cleanliness."""
        assert self._loop is not None and self._thread is not None
        future = asyncio.run_coroutine_threadsafe(self._server.drain(),
                                                  self._loop)
        clean = future.result(timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)
        return clean

    def __enter__(self) -> "EmbeddedServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- addresses and introspection -----------------------------------------

    @property
    def host(self) -> str:
        return self._server.host

    @property
    def port(self) -> int:
        return self._server.port

    @property
    def http_port(self) -> Optional[int]:
        return self._server.http_port

    @property
    def app(self):
        return self._server.app
