"""The network front end: TCP NDJSON listener, HTTP adapter, drain protocol.

:class:`NetworkServer` owns the asyncio listeners and the connection
lifecycle around one :class:`~repro.server.app.ServerApp`:

* the **TCP transport** speaks newline-delimited JSON -- one request object
  per line in (``op``: ``query`` | ``mutate`` | ``stats`` | ``metrics`` |
  ``health`` | ``ping`` | ``history`` | ``profile`` | ``alerts`` |
  ``trace`` | ``trace_export``), one or more response objects per request
  out, every response stamped with the request's ``id`` so clients can
  correlate;
* the **HTTP transport** (:mod:`repro.server.http`) shares the app and the
  drain machinery;
* the **drain protocol** implements graceful SIGTERM shutdown: stop
  accepting connections, refuse new queries with the typed ``draining``
  error, wait for every in-flight flight to deliver its terminal event and
  every connection handler to flush it, then close sockets and exit 0.

Connections are served concurrently; *within* one connection requests are
processed in arrival order (a client that wants parallelism opens more
connections, which is what the load generator and the acceptance tests do).
"""

from __future__ import annotations

import asyncio
import inspect
import signal
from typing import Optional

from repro.obs.logsetup import get_logger
from repro.server.app import ServerApp
from repro.server.http import handle_http_connection
from repro.server.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    dump_line,
    error_event,
    load_line,
)

#: Default ports: TCP wire protocol and the HTTP adapter next to it.
DEFAULT_PORT = 7464
DEFAULT_HTTP_PORT = 7465

logger = get_logger("server")


async def _maybe_await(value):
    """Resolve a payload that may be sync (ServerApp) or async (a cluster
    coordinator aggregating over the fleet)."""
    if inspect.isawaitable(value):
        return await value
    return value


class NetworkServer:
    """TCP + HTTP listeners around one app.

    The app is either a :class:`ServerApp` built from a ``service`` (the
    single-process shape) or any object implementing the same interface
    passed via ``app=`` -- the cluster coordinator is served this way.
    """

    def __init__(self, service=None, *, app=None,
                 host: str = "127.0.0.1", port: int = DEFAULT_PORT,
                 http_port: Optional[int] = DEFAULT_HTTP_PORT,
                 max_pending: int = 64, workers: int = 4,
                 drain_timeout: float = 30.0, observe: bool = True) -> None:
        if app is not None:
            self.app = app
        elif service is not None:
            self.app = ServerApp(service, max_pending=max_pending,
                                 workers=workers, observe=observe)
        else:
            raise ValueError("NetworkServer needs a service or an app")
        self._host = host
        self._port = port
        self._http_port = http_port
        self._drain_timeout = drain_timeout
        self._tcp_server: Optional[asyncio.AbstractServer] = None
        self._http_server: Optional[asyncio.AbstractServer] = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._connection_tasks: set[asyncio.Task] = set()
        self._serving = 0
        self._flushed = asyncio.Event()
        self._flushed.set()

    # -- addresses -----------------------------------------------------------

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        """The bound TCP port (resolves ``port=0`` to the ephemeral choice)."""
        assert self._tcp_server is not None, "server not started"
        return self._tcp_server.sockets[0].getsockname()[1]

    @property
    def http_port(self) -> Optional[int]:
        if self._http_server is None:
            return None
        return self._http_server.sockets[0].getsockname()[1]

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        # Apps with their own bring-up (the cluster coordinator health-
        # checking its workers) finish it before the listeners open.
        starter = getattr(self.app, "start", None)
        if starter is not None:
            await starter()
        self._tcp_server = await asyncio.start_server(
            self._handle_tcp, self._host, self._port, limit=MAX_LINE_BYTES)
        if self._http_port is not None:
            self._http_server = await asyncio.start_server(
                self._handle_http, self._host, self._http_port,
                limit=MAX_LINE_BYTES)

    async def drain(self) -> bool:
        """Graceful shutdown; returns whether everything finished in time.

        Order matters: stop accepting first (no new connections), then
        refuse new queries on existing connections, then wait for in-flight
        computations *and* for their terminal events to be flushed to the
        clients that asked, and only then tear the sockets down.  A drain
        that blows ``drain_timeout`` gives up for real: connection handlers
        still waiting on a wedged flight are cancelled, so the process can
        exit instead of hanging on ``wait_closed``.
        """
        for server in (self._tcp_server, self._http_server):
            if server is not None:
                server.close()
        self.app.begin_drain()
        clean = await self.app.wait_idle(self._drain_timeout)
        try:
            await asyncio.wait_for(self._flushed.wait(), self._drain_timeout)
        except asyncio.TimeoutError:
            clean = False
        if not clean:
            for task in tuple(self._connection_tasks):
                task.cancel()
        for writer in tuple(self._connections):
            writer.close()
        for server in (self._tcp_server, self._http_server):
            if server is not None:
                try:
                    await asyncio.wait_for(server.wait_closed(), 5.0)
                except asyncio.TimeoutError:  # pragma: no cover - wedged
                    clean = False
        self.app.close()
        return clean

    def _enter_request(self) -> None:
        self._serving += 1
        self._flushed.clear()

    def _exit_request(self) -> None:
        self._serving -= 1
        if self._serving == 0:
            self._flushed.set()

    # -- the TCP wire protocol -----------------------------------------------

    async def _handle_tcp(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connection_tasks.add(task)
        self._connections.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(writer, error_event(
                        None, "bad_request",
                        f"request line exceeds {MAX_LINE_BYTES} bytes"))
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                self._enter_request()
                try:
                    await self._dispatch(writer, line)
                finally:
                    self._exit_request()
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._connection_tasks.discard(task)
            self._connections.discard(writer)
            writer.close()

    async def _dispatch(self, writer: asyncio.StreamWriter, line: bytes) -> None:
        try:
            message = load_line(line)
        except ProtocolError as error:
            await self._send(writer, error.as_event())
            return
        request_id = message.get("id")
        op = message.get("op", "query")
        if op == "ping":
            await self._send(writer, {"id": request_id, "type": "pong"})
        elif op == "health":
            health = await _maybe_await(self.app.health())
            await self._send(writer, {"id": request_id, "type": "health",
                                      **health})
        elif op == "stats":
            stats = await _maybe_await(self.app.stats())
            await self._send(writer, {"id": request_id, "type": "stats",
                                      "stats": stats})
        elif op == "metrics":
            metrics = await _maybe_await(self.app.metrics_text())
            await self._send(writer, {"id": request_id, "type": "metrics",
                                      "metrics": metrics})
        elif op == "history":
            seconds = message.get("seconds")
            if seconds is not None and (not isinstance(seconds, (int, float))
                                        or isinstance(seconds, bool)):
                await self._send(writer, error_event(
                    request_id, "bad_request", "'seconds' must be a number"))
            else:
                payload = await _maybe_await(self.app.history(seconds))
                await self._send(writer, {"id": request_id, "type": "history",
                                          **payload})
        elif op == "profile":
            seconds = message.get("seconds", 1.0)
            if not isinstance(seconds, (int, float)) \
                    or isinstance(seconds, bool) or seconds <= 0:
                await self._send(writer, error_event(
                    request_id, "bad_request",
                    "'seconds' must be a positive number"))
            else:
                payload = await _maybe_await(
                    self.app.profile(seconds=float(seconds)))
                await self._send(writer, {"id": request_id, "type": "profile",
                                          **payload})
        elif op == "alerts":
            payload = await _maybe_await(self.app.alerts_report())
            await self._send(writer, {"id": request_id, "type": "alerts",
                                      **payload})
        elif op in ("trace", "trace_export"):
            trace_id = message.get("trace_id")
            fetch = (self.app.trace_payload if op == "trace"
                     else self.app.trace_export)
            payload = await _maybe_await(
                fetch(trace_id if isinstance(trace_id, str) else None))
            if payload is None:
                detail = f" {trace_id!r}" if trace_id else ""
                await self._send(writer, error_event(
                    request_id, "bad_request", f"no stored trace{detail}"))
            else:
                await self._send(writer, {"id": request_id, "type": op,
                                          **payload})
        elif op == "query":
            async for event in self.app.query_events(message):
                stamped = dict(event)
                stamped["id"] = request_id
                await self._send(writer, stamped)
        elif op == "mutate":
            event = dict(await self.app.mutate(message))
            event["id"] = request_id
            await self._send(writer, event)
        else:
            # Apps may export extra (admin) ops -- the coordinator's
            # cluster / cluster_drain / cluster_scale verbs arrive here.
            handler = getattr(self.app, "admin_ops", {}).get(op)
            if handler is not None:
                event = dict(await handler(message))
                event["id"] = request_id
                await self._send(writer, event)
            else:
                await self._send(writer, error_event(
                    request_id, "bad_request", f"unknown op {op!r}"))

    async def _send(self, writer: asyncio.StreamWriter, message: dict) -> None:
        writer.write(dump_line(message))
        await writer.drain()

    async def _handle_http(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connection_tasks.add(task)
        self._connections.add(writer)
        try:
            await handle_http_connection(self, reader, writer)
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._connection_tasks.discard(task)
            self._connections.discard(writer)
            writer.close()


async def _run_until_signalled(server: NetworkServer,
                               announce: bool = True) -> bool:
    await server.start()
    if announce:
        http = server.http_port
        suffix = f" http={server.host}:{http}" if http is not None else ""
        # The stdout announce line is part of the CLI contract: the smoke
        # harness and the tests parse the bound ports from it.
        print(f"listening tcp={server.host}:{server.port}{suffix}",  # noqa: T201
              flush=True)
        logger.info("listening", extra={"tcp_port": server.port,
                                        "http_port": http})
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    registered = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
            registered.append(signum)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-Unix platforms: Ctrl-C surfaces as KeyboardInterrupt
    try:
        await stop.wait()
    finally:
        for signum in registered:
            loop.remove_signal_handler(signum)
    clean = await server.drain()
    if announce:
        # Also parsed by the graceful-shutdown tests; keep as stdout.
        print("drained" if clean else "drain timed out", flush=True)  # noqa: T201
    return clean


def serve(service=None, *, app=None, host: str = "127.0.0.1",
          port: int = DEFAULT_PORT,
          http_port: Optional[int] = DEFAULT_HTTP_PORT, max_pending: int = 64,
          workers: int = 4, drain_timeout: float = 30.0,
          announce: bool = True, observe: bool = True) -> int:
    """Run the server until SIGTERM/SIGINT; returns a process exit code."""
    server = NetworkServer(service, app=app, host=host, port=port,
                           http_port=http_port,
                           max_pending=max_pending, workers=workers,
                           drain_timeout=drain_timeout, observe=observe)
    try:
        clean = asyncio.run(_run_until_signalled(server, announce=announce))
    except KeyboardInterrupt:  # pragma: no cover - non-Unix fallback
        return 0
    if not clean:
        logger.warning("drain timed out with requests still in flight")
    return 0
