"""Async network serving for the annotation service.

The compute stack (kernels -> columnar engine -> sharded execution ->
:class:`~repro.service.AnnotationService`) answered queries fast but only
for callers inside the process; this package is the network layer on top:

* :mod:`repro.server.protocol` -- the NDJSON wire protocol: request
  validation, typed error taxonomy, bit-exact answer serialisation, the
  single-flight request key;
* :mod:`repro.server.app` -- transport-independent serving: bounded
  admission with typed backpressure, cross-connection single-flight
  coalescing with streamed-update replay, adaptive streaming, drain;
* :mod:`repro.server.netserver` -- the asyncio TCP listener, the SIGTERM
  drain protocol and the blocking :func:`~repro.server.netserver.serve`
  entry point the CLI uses;
* :mod:`repro.server.http` -- a dependency-free HTTP/1.1 adapter
  (``POST /query``, ``POST /mutate``, ``GET /healthz``, ``GET /stats``);
* :mod:`repro.server.embedded` -- the same server on a background thread,
  for tests, benchmarks and the load generator.

The compute layers are untouched underneath: requests run through the
ordinary ``AnnotationService.submit`` on a thread pool, so ``jobs``,
``shards``, ``backend``, ``executor``, ``adaptive`` and ``seed`` behave
exactly as they do in-process, and served answers are bit-identical to
local ones.
"""

from repro.server.app import ServerApp
from repro.server.embedded import EmbeddedServer
from repro.server.netserver import (
    DEFAULT_HTTP_PORT,
    DEFAULT_PORT,
    NetworkServer,
    serve,
)
from repro.server.protocol import (
    MAX_LINE_BYTES,
    OverloadError,
    ProtocolError,
    decode_answer,
    decode_value,
    encode_answer,
    encode_value,
    request_key,
)

__all__ = [
    "DEFAULT_HTTP_PORT",
    "DEFAULT_PORT",
    "EmbeddedServer",
    "MAX_LINE_BYTES",
    "NetworkServer",
    "OverloadError",
    "ProtocolError",
    "ServerApp",
    "decode_answer",
    "decode_value",
    "encode_answer",
    "encode_value",
    "request_key",
    "serve",
]
