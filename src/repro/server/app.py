"""The server application: admission, coalescing, and streamed execution.

:class:`ServerApp` is the transport-independent middle of the network
server -- both the TCP listener and the HTTP adapter reduce a query to
"iterate :meth:`query_events`", and everything the acceptance criteria care
about lives here:

* **admission control** -- at most ``max_pending`` computations may be
  queued or running; request ``max_pending + 1`` is rejected immediately
  with the typed ``overloaded`` error instead of joining an unbounded queue
  (clients see backpressure, the event loop never hides it);
* **single-flight coalescing** -- requests are keyed by
  :func:`~repro.server.protocol.request_key` *before* any work happens;
  arrivals matching an in-flight key subscribe to the leader's flight and
  receive replayed history plus live events, so N concurrent identical
  queries cost one computation and one cache fill (the service underneath
  additionally single-flights *estimates* on the canonical lineage digest,
  which coalesces structurally identical work across different query
  texts);
* **streaming** -- ``adaptive`` requests push every tightened interval to
  every subscriber as it lands: the service's ``on_update`` callback fires
  on a worker thread and is marshalled onto the event loop with
  ``call_soon_threadsafe``, which preserves per-lineage monotonic order;
* **mutations** -- :meth:`mutate` applies INSERT/DELETE/UPDATE statements
  through the service's MVCC commit path; writers are serialised behind a
  gate and counted as in-flight work, while readers keep streaming from
  the snapshot they pinned (no reader/writer blocking);
* **drain** -- :meth:`begin_drain` stops admitting, :meth:`wait_idle`
  resolves once every in-flight flight (queries and mutations alike) has
  delivered its terminal event.

Compute runs on a dedicated thread pool via ``run_in_executor``; the
service's own ``jobs``/``executor``/``shards`` options apply unchanged
inside each ``submit`` call.
"""

from __future__ import annotations

import asyncio
import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, AsyncIterator, Optional

from repro import package_version
from repro.engine.sql.lexer import SqlSyntaxError
from repro.engine.translate_sql import SqlTranslationError
from repro.obs.alerts import AlertEvaluator, disabled_report, server_slos
from repro.obs.metrics import counters_family
from repro.obs.profiler import DEFAULT_INTERVAL, profile_payload
from repro.obs.propagate import extract_context
from repro.obs.recorder import (
    NULL_RECORDER,
    Recorder,
    process_collector,
    service_stats_collector,
)
from repro.obs.trace import spans_to_chrome
from repro.obs.tsdb import TimeSeriesStore
from repro.relational.mutation import MutationError
from repro.relational.schema import SchemaError
from repro.server.protocol import (
    OverloadError,
    ProtocolError,
    error_event,
    mutation_event,
    parse_mutation_request,
    parse_query_request,
    request_key,
    result_event,
    update_event,
)

#: Exceptions that indicate a problem with the query, not with the server.
_QUERY_ERRORS = (SqlSyntaxError, SqlTranslationError, SchemaError, ValueError)

#: Terminal event types: after one of these, a flight is over.
_TERMINAL = ("result", "error")


class Flight:
    """One in-flight computation with its subscribers.

    ``history`` keeps every event already broadcast so a follower that
    coalesces onto the flight mid-stream sees the full sequence -- replayed
    history first, then live events, in the order the leader produced them.
    Events are stored without a request id; each subscriber stamps its own.
    """

    __slots__ = ("key", "history", "queues")

    def __init__(self, key: bytes) -> None:
        self.key = key
        self.history: list[dict] = []
        self.queues: list[asyncio.Queue] = []

    def subscribe(self) -> asyncio.Queue:
        queue: asyncio.Queue = asyncio.Queue()
        for event in self.history:
            queue.put_nowait(event)
        self.queues.append(queue)
        return queue

    def publish(self, event: dict) -> None:
        self.history.append(event)
        for queue in self.queues:
            queue.put_nowait(event)


class ServerApp:
    """Transport-independent query serving over one annotation service."""

    def __init__(self, service, *, max_pending: int = 64,
                 workers: int = 4, recorder: Optional[Recorder] = None,
                 observe: bool = True) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be at least 1, got {max_pending}")
        if workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        self._service = service
        self._observe = observe
        self._tsdb: Optional[TimeSeriesStore] = None
        self._alert_evaluator: Optional[AlertEvaluator] = None
        if observe:
            # Serving observes by default: reuse the service's live recorder
            # if one is attached, otherwise create one and attach it, so
            # request latency histograms and the slow-query log are
            # populated without any extra configuration.  Scrape-time
            # collectors export the service's and the server's lifetime
            # counters with zero cost on the request hot path.
            existing = getattr(service, "recorder", None)
            if recorder is None:
                recorder = (existing
                            if existing is not None and existing.enabled
                            else Recorder())
            self._recorder = recorder
            if existing is not recorder and hasattr(service, "use_recorder"):
                service.use_recorder(recorder)
            recorder.metrics.register_collector(
                service_stats_collector(service))
            recorder.metrics.register_collector(process_collector())
            recorder.metrics.register_collector(self._server_collector)
            # Periodic registry snapshots feed ``/history`` and the SLO
            # burn-rate evaluation; the sampler thread starts with the
            # server (NetworkServer.start calls ``app.start``).
            self._tsdb = TimeSeriesStore(recorder.metrics)
            self._alert_evaluator = AlertEvaluator(server_slos())
        else:
            # ``observe=False`` is the bare half of the overhead benchmark:
            # no recorder, no collectors, no sampler thread, no tracing.
            self._recorder = NULL_RECORDER
        self._max_pending = max_pending
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-server")
        self._flights: dict[bytes, Flight] = {}
        #: Strong references to leader tasks -- the loop only keeps weak
        #: ones, and a GC'd leader would strand every subscriber.
        self._flight_tasks: set[asyncio.Future] = set()
        self._started = time.monotonic()
        self._draining = False
        self._idle = asyncio.Event()
        self._idle.set()
        # Writers apply strictly one at a time; readers never wait on this
        # (MVCC snapshots -- a query pins whatever version is current when
        # its submit starts).
        self._mutation_gate = asyncio.Lock()
        self._mutations_inflight = 0
        # Lifetime counters, all mutated on the event loop only.
        self._requests = 0
        self._launched = 0
        self._coalesced = 0
        self._overloads = 0
        self._query_errors = 0
        self._internal_errors = 0
        self._mutations = 0
        self._mutation_errors = 0

    # -- request defaults ----------------------------------------------------

    @property
    def service(self):
        return self._service

    @property
    def draining(self) -> bool:
        return self._draining

    def request_defaults(self) -> dict[str, Any]:
        """The option values a request inherits when it omits them."""
        options = self._service.options
        seed = options.seed
        return {
            "epsilon": options.epsilon,
            "delta": options.delta,
            "method": options.method,
            "limit": None,
            "seed": seed if isinstance(seed, int) else None,
            "adaptive": options.adaptive,
            "planner": options.planner,
        }

    # -- the query path ------------------------------------------------------

    async def query_events(self, message: dict) -> AsyncIterator[dict]:
        """Serve one query message as a stream of wire events.

        Always yields at least one event and always ends with a terminal
        one (``result`` or ``error``); protocol violations, overload and
        engine errors all surface as typed error events rather than
        exceptions, so transports can forward events verbatim.
        """
        self._requests += 1
        try:
            sql, options = parse_query_request(message, self.request_defaults())
        except ProtocolError as error:
            self._query_errors += 1
            yield error.as_event()
            return
        if self._draining:
            yield error_event(None, "draining",
                              "server is draining; not accepting new queries")
            return

        key = request_key(sql, options)
        flight = self._flights.get(key)
        if flight is None:
            if len(self._flights) >= self._max_pending:
                self._overloads += 1
                yield OverloadError(
                    f"server is at its admission limit "
                    f"({self._max_pending} pending computations); retry later"
                ).as_event()
                return
            flight = Flight(key)
            self._flights[key] = flight
            self._idle.clear()
            self._launched += 1
            # The leader's trace context wins: coalesced followers share
            # the leader's flight, computation, and therefore trace id.
            task = asyncio.ensure_future(self._lead(
                flight, sql, options, context=extract_context(message)))
            self._flight_tasks.add(task)
            task.add_done_callback(self._flight_tasks.discard)
        else:
            self._coalesced += 1

        queue = flight.subscribe()
        while True:
            event = await queue.get()
            yield event
            if event.get("type") in _TERMINAL:
                return

    async def _lead(self, flight: Flight, sql: str, options: dict,
                    context=None) -> None:
        """Run the flight's one computation and broadcast its events."""
        loop = asyncio.get_running_loop()
        # A live recorder traces every request (that is what feeds phase
        # histograms and the slow log); an inbound ``traceparent`` makes
        # this trace one hop of a distributed one -- same trace id, local
        # root spans parented onto the sender's span.
        tr = (self._recorder.start_trace(context=context)
              if self._recorder.enabled else None)

        def on_update(group, update) -> None:
            # Fires on a service worker thread mid-submit; marshal onto the
            # loop.  call_soon_threadsafe is FIFO, so updates always land
            # before the executor future's completion callback below.
            loop.call_soon_threadsafe(
                flight.publish,
                update_event(None, group.canonical.digest.hex(), update))

        def submit():
            return self._service.submit(
                sql,
                epsilon=options["epsilon"], delta=options["delta"],
                method=options["method"], limit=options["limit"],
                seed=options["seed"], adaptive=options["adaptive"],
                planner=options.get("planner"), trace=tr,
                on_update=on_update if options["adaptive"] else None)

        try:
            response = await loop.run_in_executor(self._executor, submit)
            terminal = result_event(None, response)
        except _QUERY_ERRORS as error:
            self._query_errors += 1
            terminal = error_event(None, "invalid_query", str(error))
        except BaseException as error:  # noqa: BLE001 - reported, not hidden
            self._internal_errors += 1
            terminal = error_event(None, "internal",
                                   f"{type(error).__name__}: {error}")
        if tr is not None and tr.trace_id is not None:
            terminal["trace_id"] = tr.trace_id
        del self._flights[flight.key]
        self._maybe_idle()
        flight.publish(terminal)

    def _maybe_idle(self) -> None:
        if not self._flights and self._mutations_inflight == 0:
            self._idle.set()

    # -- the mutation path ---------------------------------------------------

    async def mutate(self, message: dict) -> dict:
        """Apply one mutation statement; returns its terminal event.

        Writers are serialised behind a single gate and counted as
        in-flight work, so a drain waits for a mutation that is mid-commit
        exactly as it waits for queries.  Readers never queue here: a
        query pins the snapshot current at its start, and the commit swaps
        the service's database reference atomically.
        """
        self._requests += 1
        try:
            sql = parse_mutation_request(message)
        except ProtocolError as error:
            self._mutation_errors += 1
            return error.as_event()
        if self._draining:
            return error_event(None, "draining",
                               "server is draining; not accepting mutations")
        # Honor a propagated trace context (the coordinator injects one on
        # broadcast mutations); purely local mutations stay untraced.
        context = extract_context(message)
        tr = (self._recorder.start_trace("mutation", context=context)
              if self._recorder.enabled and context is not None else None)
        span = tr.span("mutate") if tr is not None else None
        loop = asyncio.get_running_loop()
        self._mutations_inflight += 1
        self._idle.clear()
        try:
            async with self._mutation_gate:
                outcome = await loop.run_in_executor(
                    self._executor, self._service.mutate, sql)
        except MutationError as error:
            # Typed statement failures: "validation" and "conflict" --
            # checked before _QUERY_ERRORS since MutationError is a
            # ValueError too.
            self._mutation_errors += 1
            event = error_event(None, error.code, str(error))
        except _QUERY_ERRORS as error:
            self._mutation_errors += 1
            event = error_event(None, "invalid_query", str(error))
        except BaseException as error:  # noqa: BLE001 - reported, not hidden
            self._internal_errors += 1
            event = error_event(None, "internal",
                                f"{type(error).__name__}: {error}")
        else:
            self._mutations += 1
            event = mutation_event(None, outcome)
        finally:
            self._mutations_inflight -= 1
            self._maybe_idle()
        if tr is not None:
            if event.get("type") == "error":
                span.set("error", event.get("code", "error"))
            span.__exit__(None, None, None)
            self._recorder.trace_store.put(tr)
            event["trace_id"] = tr.trace_id
        return event

    # -- auxiliary operations ------------------------------------------------

    @property
    def recorder(self) -> Recorder:
        return self._recorder

    def health(self) -> dict:
        return {
            "status": "draining" if self._draining else "ok",
            "active": len(self._flights),
            "max_pending": self._max_pending,
            "uptime_seconds": time.monotonic() - self._started,
            "version": package_version(),
        }

    def metrics_text(self) -> str:
        """The Prometheus exposition for ``GET /metrics`` / the TCP
        ``metrics`` op: live instruments plus every registered collector."""
        if self._recorder.metrics is None:
            return "# observability disabled\n"
        return self._recorder.metrics.render()

    def history(self, seconds: Optional[float] = None) -> dict:
        """The tsdb window for ``GET /history`` / the TCP ``history`` op."""
        if self._tsdb is None:
            return {"interval_seconds": None, "capacity": 0,
                    "retention_seconds": 0.0, "snapshots": []}
        return self._tsdb.history(seconds)

    async def profile(self, seconds: float = 1.0,
                      interval: Optional[float] = None) -> dict:
        """Run the sampling profiler for ``seconds``; collapsed stacks.

        Blocking sampling runs on the default executor, never on the
        bounded compute pool -- a profile must not occupy a slot the
        queries it is observing are waiting for.
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, profile_payload, float(seconds),
            float(interval) if interval else DEFAULT_INTERVAL)

    def trace_payload(self, trace_id: Optional[str] = None) -> Optional[dict]:
        """One stored trace's spans (latest when ``trace_id`` is None)."""
        store = getattr(self._recorder, "trace_store", None)
        if store is None:
            return None
        trace = store.get(trace_id) if trace_id else store.latest()
        if trace is None:
            return None
        return {
            "trace_id": trace.trace_id,
            "name": trace.name,
            "process": f"server:{os.getpid()}",
            "spans": trace.span_dicts(),
        }

    def trace_export(self, trace_id: Optional[str] = None) -> Optional[dict]:
        """One stored trace as a ready-to-write Chrome trace document."""
        payload = self.trace_payload(trace_id)
        if payload is None:
            return None
        chrome = spans_to_chrome(payload["trace_id"],
                                 [(payload["process"], payload["spans"])])
        return {
            "trace_id": payload["trace_id"],
            "processes": [payload["process"]],
            "span_count": len(payload["spans"]),
            "chrome": chrome,
        }

    def alerts_report(self) -> dict:
        """SLO burn-rate alert states evaluated over the tsdb window."""
        if self._tsdb is None or self._alert_evaluator is None:
            return disabled_report()
        history = self._tsdb.history(self._alert_evaluator.max_window_seconds)
        return self._alert_evaluator.report(history["snapshots"])

    def _server_collector(self):
        """Scrape-time export of the app's own event-loop counters."""
        return [
            counters_family(
                "repro_server_requests_total",
                "Query requests received (before admission/coalescing)",
                [({}, self._requests)]),
            counters_family(
                "repro_server_flights_total",
                "Computations launched vs. requests coalesced onto one",
                [({"outcome": "launched"}, self._launched),
                 ({"outcome": "coalesced"}, self._coalesced)]),
            counters_family(
                "repro_server_overloads_total",
                "Requests rejected at the admission limit",
                [({}, self._overloads)]),
            counters_family(
                "repro_server_errors_total",
                "Terminal error events by kind",
                [({"kind": "query"}, self._query_errors),
                 ({"kind": "mutation"}, self._mutation_errors),
                 ({"kind": "internal"}, self._internal_errors)]),
            counters_family(
                "repro_server_mutations_total",
                "Mutation statements committed",
                [({}, self._mutations)]),
            counters_family(
                "repro_server_data_version",
                "Data version of the service's current snapshot",
                [({}, getattr(getattr(self._service, "database", None),
                              "data_version", 0))],
                kind="gauge"),
            counters_family(
                "repro_server_active_flights",
                "Computations currently in flight",
                [({}, len(self._flights))], kind="gauge"),
            counters_family(
                "repro_server_uptime_seconds",
                "Seconds since the server app started",
                [({}, time.monotonic() - self._started)], kind="gauge"),
        ]

    def stats(self) -> dict:
        """The ``/stats`` payload: server counters, the service report, and
        current SLO alert states."""
        return {
            "alerts": self.alerts_report()["alerts"],
            "server": {
                "requests": self._requests,
                "launched": self._launched,
                "coalesced": self._coalesced,
                "overloads": self._overloads,
                "query_errors": self._query_errors,
                "mutations": self._mutations,
                "mutation_errors": self._mutation_errors,
                "internal_errors": self._internal_errors,
                "active": len(self._flights),
                "max_pending": self._max_pending,
                "draining": self._draining,
            },
            "service": self._service.stats().as_dict(),
        }

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Start background observability (the tsdb sampler thread).

        Called by :meth:`NetworkServer.start`; apps driven directly in
        tests never need it -- ``history()`` samples on demand.
        """
        if self._tsdb is not None:
            self._tsdb.start()

    def begin_drain(self) -> None:
        """Stop admitting queries; in-flight ones keep running."""
        self._draining = True

    async def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Resolve once every flight has delivered its terminal event."""
        try:
            await asyncio.wait_for(self._idle.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    def close(self) -> None:
        """Release the compute pool and sampler thread (after draining)."""
        if self._tsdb is not None:
            self._tsdb.stop()
        self._executor.shutdown(wait=False, cancel_futures=True)
