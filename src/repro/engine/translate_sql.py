"""Translation of the SQL subset into conjunctive FO(+, ·, <) queries.

Every table occurrence of the FROM clause contributes one relation atom whose
arguments are fresh variables (one per column, named ``<binding>_<column>``),
WHERE predicates become numerical comparisons or base equalities, and the
SELECT list determines the head; all remaining variables are existentially
quantified.  The result is a conjunctive query in the sense of the paper, so
the fragment classification and the FPRAS applicability carry over directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.engine.sql.ast import (
    BinaryExpression,
    ColumnExpression,
    Condition,
    Expression,
    NumberLiteral,
    SelectQuery,
    StringLiteral,
    TableReference,
)
from repro.logic.builder import exists
from repro.logic.formulas import (
    BaseEquality,
    Comparison,
    ComparisonOperator,
    FONot,
    Formula,
    Query,
    RelationAtom,
    make_conjunction,
)
from repro.logic.terms import (
    BaseConstant,
    NumericConstant,
    Sort,
    Term,
    TermOperation,
    TermOperator,
    Variable,
)
from repro.relational.schema import DatabaseSchema


class SqlTranslationError(ValueError):
    """Raised when a SQL query does not fit the schema or the subset."""


_SQL_TO_COMPARISON = {
    "=": ComparisonOperator.EQ,
    "<>": ComparisonOperator.NE,
    "!=": ComparisonOperator.NE,
    "<": ComparisonOperator.LT,
    "<=": ComparisonOperator.LE,
    ">": ComparisonOperator.GT,
    ">=": ComparisonOperator.GE,
}

_SQL_TO_TERM_OPERATOR = {
    "+": TermOperator.ADD,
    "-": TermOperator.SUB,
    "*": TermOperator.MUL,
    "/": TermOperator.DIV,
}


@dataclass(frozen=True)
class ColumnBinding:
    """Where a query variable comes from: which table occurrence and column."""

    table_reference: TableReference
    column: str
    variable: Variable


class SqlScope:
    """Resolves column references to the variables of the translated query."""

    def __init__(self, query: SelectQuery, schema: DatabaseSchema) -> None:
        self._bindings: dict[tuple[str, str], ColumnBinding] = {}
        self._by_column: dict[str, list[ColumnBinding]] = {}
        seen_bindings: set[str] = set()
        for reference in query.tables:
            if reference.table not in schema:
                raise SqlTranslationError(f"unknown table {reference.table!r}")
            if reference.binding in seen_bindings:
                raise SqlTranslationError(
                    f"duplicate table binding {reference.binding!r}; use aliases")
            seen_bindings.add(reference.binding)
            relation_schema = schema.relation(reference.table)
            for attribute in relation_schema.attributes:
                sort = Sort.NUM if attribute.is_numeric else Sort.BASE
                variable = Variable(name=f"{reference.binding}_{attribute.name}",
                                    variable_sort=sort)
                binding = ColumnBinding(table_reference=reference,
                                        column=attribute.name, variable=variable)
                self._bindings[(reference.binding, attribute.name)] = binding
                self._by_column.setdefault(attribute.name, []).append(binding)

    def resolve(self, column: ColumnExpression) -> ColumnBinding:
        """Resolve ``alias.column`` (or a bare, unambiguous ``column``)."""
        if column.table is not None:
            key = (column.table, column.column)
            if key not in self._bindings:
                raise SqlTranslationError(
                    f"unknown column {column.table}.{column.column}")
            return self._bindings[key]
        candidates = self._by_column.get(column.column, [])
        if not candidates:
            raise SqlTranslationError(f"unknown column {column.column!r}")
        if len(candidates) > 1:
            raise SqlTranslationError(
                f"ambiguous column {column.column!r}; qualify it with a table alias")
        return candidates[0]

    def bindings_for(self, reference: TableReference) -> list[ColumnBinding]:
        return [binding for binding in self._bindings.values()
                if binding.table_reference == reference]

    def all_variables(self) -> list[Variable]:
        return [binding.variable for binding in self._bindings.values()]


def _expression_to_term(expression: Expression, scope: SqlScope) -> Term:
    if isinstance(expression, ColumnExpression):
        return scope.resolve(expression).variable
    if isinstance(expression, NumberLiteral):
        return NumericConstant(expression.value)
    if isinstance(expression, StringLiteral):
        return BaseConstant(expression.value)
    if isinstance(expression, BinaryExpression):
        left = _expression_to_term(expression.left, scope)
        right = _expression_to_term(expression.right, scope)
        return TermOperation(_SQL_TO_TERM_OPERATOR[expression.operator], left, right)
    raise SqlTranslationError(f"unsupported expression {expression!r}")


def _condition_to_formula(condition: Condition, scope: SqlScope) -> Formula:
    left = _expression_to_term(condition.left, scope)
    right = _expression_to_term(condition.right, scope)
    operator = _SQL_TO_COMPARISON.get(condition.operator)
    if operator is None:
        raise SqlTranslationError(f"unsupported operator {condition.operator!r}")
    if left.sort is Sort.BASE or right.sort is Sort.BASE:
        if left.sort is not right.sort:
            raise SqlTranslationError(
                f"cannot compare base and numerical values in {condition!r}")
        if operator is ComparisonOperator.EQ:
            return BaseEquality(left, right)
        if operator is ComparisonOperator.NE:
            return FONot(BaseEquality(left, right))
        raise SqlTranslationError(
            f"order comparison on base-typed values in {condition!r}")
    return Comparison(left, operator, right)


def sql_to_query(select: SelectQuery, schema: DatabaseSchema,
                 name: str = "sql_query") -> tuple[Query, Mapping[Variable, ColumnBinding]]:
    """Translate a parsed SELECT statement into a conjunctive query.

    Returns the query and a mapping from its head variables to the column
    bindings they project (useful for labelling outputs).
    """
    scope = SqlScope(select, schema)

    atoms: list[Formula] = []
    for reference in select.tables:
        relation_schema = schema.relation(reference.table)
        arguments = [scope.resolve(ColumnExpression(column=attribute.name,
                                                    table=reference.binding)).variable
                     for attribute in relation_schema.attributes]
        atoms.append(RelationAtom(relation=reference.table, terms=tuple(arguments)))
    for condition in select.conditions:
        atoms.append(_condition_to_formula(condition, scope))

    if select.select_star:
        head_bindings = [scope.resolve(ColumnExpression(column=binding.column,
                                                        table=reference.binding))
                         for reference in select.tables
                         for binding in scope.bindings_for(reference)]
    else:
        head_bindings = [scope.resolve(column) for column in select.select]
    head_variables = tuple(binding.variable for binding in head_bindings)
    # Duplicate projections of the same column are collapsed (the head of a
    # logical query is a set of variables); callers that need the duplicate
    # columns can use the returned binding map.
    unique_head: list[Variable] = []
    for variable in head_variables:
        if variable not in unique_head:
            unique_head.append(variable)

    body = make_conjunction(atoms)
    bound = [variable for variable in scope.all_variables() if variable not in unique_head]
    query = Query(head=tuple(unique_head), body=exists(bound, body), name=name)
    return query, {binding.variable: binding for binding in head_bindings}
