"""End-to-end query engine: SQL in, confidence-annotated answers out.

The paper's experimental pipeline (Section 9) evaluates a SQL query under
naive evaluation, extracts "a compact representation of the formulae
``phi_{q,D,a,s}``" for every returned tuple, and runs the Monte-Carlo
AFPRAS on each.  This subpackage is that pipeline, with the external
database system replaced by an in-memory engine built here:

* :mod:`repro.engine.sql` -- a lexer/parser for the SQL subset used by the
  paper's decision-support queries (``SELECT``-``FROM``-``WHERE`` with
  arithmetic predicates, ``AND``, and ``LIMIT``);
* :mod:`repro.engine.translate_sql` -- translation of the SQL AST into a
  conjunctive FO(+,·,<) query of :mod:`repro.logic`;
* :mod:`repro.engine.candidates` -- candidate-answer enumeration over the
  incomplete database with per-candidate lineage (the constraint formula of
  Proposition 5.3 specialised to conjunctive queries);
* :mod:`repro.engine.annotate` -- the public :func:`annotate` call returning
  each candidate tuple with its measure of certainty.
"""

from repro.engine.annotate import AnnotatedAnswer, annotate, annotate_query
from repro.engine.candidates import CandidateAnswer, enumerate_candidates
from repro.engine.sql.ast import SelectQuery
from repro.engine.sql.parser import parse_sql
from repro.engine.translate_sql import sql_to_query

__all__ = [
    "AnnotatedAnswer",
    "CandidateAnswer",
    "SelectQuery",
    "annotate",
    "annotate_query",
    "enumerate_candidates",
    "parse_sql",
    "sql_to_query",
]
