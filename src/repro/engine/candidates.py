"""Candidate-answer enumeration with per-candidate lineage.

The engine evaluates a conjunctive SELECT query directly over the incomplete
database: it joins the FROM tables (hash joins on base-equality predicates,
nested loops otherwise) and keeps a witness whenever no predicate is
*certainly* false.  Predicates whose truth depends on numerical nulls are
recorded symbolically; the disjunction over all witnesses of a given output
tuple is exactly the constraint formula ``phi_{q,D,a,s}`` of Proposition 5.3
specialised to conjunctive queries (up to measure-zero differences), i.e.
the candidate's *lineage*.  Base-type nulls are compared under the bijective
valuation view of Proposition 5.2: a base null equals only itself.

This is the "compact representation of the formulae phi" that the paper's
experimental pipeline extracts from Postgres, rebuilt on our own engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from repro.constraints.formula import (
    ConstraintFormula,
    FalseFormula,
    TrueFormula,
    conjunction,
    disjunction,
)
from repro.constraints.polynomials import Polynomial
from repro.constraints.translate import (
    RationalTerm,
    TranslationResult,
    _comparison_formula,
)
from repro.engine.sql.ast import (
    BinaryExpression,
    ColumnExpression,
    Condition,
    Expression,
    NumberLiteral,
    SelectQuery,
    StringLiteral,
)
from repro.engine.translate_sql import SqlTranslationError
from repro.logic.formulas import ComparisonOperator
from repro.relational.database import Database
from repro.relational.values import Value, is_base_null, is_num_null, is_numeric_constant

_SQL_TO_COMPARISON = {
    "=": ComparisonOperator.EQ,
    "<>": ComparisonOperator.NE,
    "!=": ComparisonOperator.NE,
    "<": ComparisonOperator.LT,
    "<=": ComparisonOperator.LE,
    ">": ComparisonOperator.GT,
    ">=": ComparisonOperator.GE,
}


@dataclass(frozen=True)
class CandidateAnswer:
    """One candidate output tuple together with its lineage."""

    values: tuple[Value, ...]
    columns: tuple[str, ...]
    lineage: TranslationResult
    witnesses: int

    def as_dict(self) -> dict[str, Value]:
        """The candidate as a ``{column label: value}`` mapping."""
        return dict(zip(self.columns, self.values))


@dataclass
class _Row:
    """A partial join result: one tuple chosen for each table bound so far."""

    tuples: dict[str, tuple[Value, ...]] = field(default_factory=dict)


class _ConditionCompiler:
    """Evaluates SQL expressions over a (partial) join row."""

    def __init__(self, database: Database, select: SelectQuery) -> None:
        self._database = database
        self._select = select
        self._column_positions: dict[str, dict[str, int]] = {}
        self._column_types: dict[str, dict[str, bool]] = {}
        self._binding_table: dict[str, str] = {}
        bindings_by_column: dict[str, list[str]] = {}
        for reference in select.tables:
            schema = database.relation_schema(reference.table)
            self._binding_table[reference.binding] = reference.table
            self._column_positions[reference.binding] = {
                attribute.name: index for index, attribute in enumerate(schema.attributes)}
            self._column_types[reference.binding] = {
                attribute.name: attribute.is_numeric for attribute in schema.attributes}
            for attribute in schema.attributes:
                bindings_by_column.setdefault(attribute.name, []).append(reference.binding)
        self._bindings_by_column = bindings_by_column

    # -- column resolution ----------------------------------------------------

    def resolve_binding(self, column: ColumnExpression) -> tuple[str, str]:
        """Return ``(table binding, column name)`` for a column reference."""
        if column.table is not None:
            if column.table not in self._column_positions:
                raise SqlTranslationError(f"unknown table binding {column.table!r}")
            if column.column not in self._column_positions[column.table]:
                raise SqlTranslationError(
                    f"unknown column {column.table}.{column.column}")
            return column.table, column.column
        bindings = self._bindings_by_column.get(column.column, [])
        if not bindings:
            raise SqlTranslationError(f"unknown column {column.column!r}")
        if len(bindings) > 1:
            raise SqlTranslationError(
                f"ambiguous column {column.column!r}; qualify it with a table alias")
        return bindings[0], column.column

    def column_value(self, row: _Row, binding: str, column: str) -> Value:
        return row.tuples[binding][self._column_positions[binding][column]]

    def columns_of(self, expression: Expression) -> set[str]:
        """Bindings referenced by an expression."""
        if isinstance(expression, ColumnExpression):
            return {self.resolve_binding(expression)[0]}
        if isinstance(expression, BinaryExpression):
            return self.columns_of(expression.left) | self.columns_of(expression.right)
        return set()

    def condition_bindings(self, condition: Condition) -> set[str]:
        return self.columns_of(condition.left) | self.columns_of(condition.right)

    # -- evaluation -------------------------------------------------------------

    def _expression_value(self, expression: Expression, row: _Row) -> Value:
        if isinstance(expression, ColumnExpression):
            binding, column = self.resolve_binding(expression)
            return self.column_value(row, binding, column)
        if isinstance(expression, NumberLiteral):
            return expression.value
        if isinstance(expression, StringLiteral):
            return expression.value
        if isinstance(expression, BinaryExpression):
            raise SqlTranslationError(
                "arithmetic expressions must be converted symbolically")
        raise SqlTranslationError(f"unsupported expression {expression!r}")

    def _expression_rational(self, expression: Expression, row: _Row) -> RationalTerm:
        if isinstance(expression, (ColumnExpression, NumberLiteral)):
            value = self._expression_value(expression, row)
            if is_num_null(value):
                return RationalTerm.of(Polynomial.variable(value.variable))
            if is_numeric_constant(value):
                return RationalTerm.of(Polynomial.constant(float(value)))
            raise SqlTranslationError(
                f"expected a numerical value in {expression!r}, got {value!r}")
        if isinstance(expression, BinaryExpression):
            left = self._expression_rational(expression.left, row)
            right = self._expression_rational(expression.right, row)
            if expression.operator == "+":
                return left + right
            if expression.operator == "-":
                return left - right
            if expression.operator == "*":
                return left * right
            return left.divide(right)
        raise SqlTranslationError(f"unsupported expression {expression!r}")

    def _is_base_expression(self, expression: Expression) -> bool:
        if isinstance(expression, StringLiteral):
            return True
        if isinstance(expression, ColumnExpression):
            binding, column = self.resolve_binding(expression)
            return not self._column_types[binding][column]
        return False

    def condition_formula(self, condition: Condition, row: _Row) -> ConstraintFormula:
        """Constraint formula of a condition under the values of ``row``.

        Base-type comparisons fold to ``True``/``False`` immediately (a base
        null equals only itself, per the bijective-valuation view); numerical
        comparisons produce polynomial constraints over the nulls' variables,
        which collapse to constants when no null is involved.
        """
        operator = _SQL_TO_COMPARISON.get(condition.operator)
        if operator is None:
            raise SqlTranslationError(f"unsupported operator {condition.operator!r}")
        left_is_base = self._is_base_expression(condition.left)
        right_is_base = self._is_base_expression(condition.right)
        if left_is_base or right_is_base:
            if operator not in (ComparisonOperator.EQ, ComparisonOperator.NE):
                raise SqlTranslationError(
                    f"order comparison on base-typed values in {condition!r}")
            left = self._expression_value(condition.left, row)
            right = self._expression_value(condition.right, row)
            equal = left == right
            if is_base_null(left) or is_base_null(right):
                equal = left is right or left == right
            truth = equal if operator is ComparisonOperator.EQ else not equal
            return TrueFormula() if truth else FalseFormula()
        left_term = self._expression_rational(condition.left, row)
        right_term = self._expression_rational(condition.right, row)
        return _comparison_formula(left_term, operator, right_term)


def _order_conditions(select: SelectQuery, compiler: _ConditionCompiler) -> list[list[Condition]]:
    """Assign each condition to the earliest join step at which it is checkable.

    Single-table conditions are *not* assigned to a step here: they are
    pushed below the join entirely (:func:`_prefilter_tables`), pruning each
    table before hash-join indexes are built or nested loops iterate it.
    Only genuinely multi-table conditions remain in the per-step lists.
    """
    bindings_order = [reference.binding for reference in select.tables]
    position = {binding: index for index, binding in enumerate(bindings_order)}
    steps: list[list[Condition]] = [[] for _ in bindings_order]
    for condition in select.conditions:
        involved = compiler.condition_bindings(condition)
        if len(involved) == 1:
            continue  # pushed down to the table scan
        last = max((position[binding] for binding in involved), default=0)
        steps[last].append(condition)
    return steps


#: A pre-filtered table row: the tuple plus the residual (symbolic) formulas
#: of its single-table conditions, evaluated once at scan time.
_FilteredRow = tuple[tuple[Value, ...], tuple[ConstraintFormula, ...]]


def _local_conditions(select: SelectQuery,
                      compiler: _ConditionCompiler) -> list[list[Condition]]:
    """The single-table conditions of each FROM table, by table position."""
    position = {reference.binding: index
                for index, reference in enumerate(select.tables)}
    local: list[list[Condition]] = [[] for _ in select.tables]
    for condition in select.conditions:
        involved = compiler.condition_bindings(condition)
        if len(involved) == 1:
            (binding,) = involved
            local[position[binding]].append(condition)
    return local


def _prefilter_rows(binding: str, rows: Sequence[tuple[Value, ...]],
                    conditions: Sequence[Condition],
                    compiler: _ConditionCompiler) -> list[_FilteredRow]:
    """Push one table's single-table conditions below the join.

    Rows with a certainly-false condition are dropped (they could never
    produce a witness); conditions whose truth depends on numerical nulls
    leave a residual formula attached to the row, conjoined into the lineage
    when the row joins.  Selective filters therefore prune both the
    hash-join build side and the nested-loop scans, and each single-table
    condition is evaluated once per row instead of once per partial join
    visiting the row.
    """
    if not conditions:
        return [(row, ()) for row in rows]
    scratch = _Row()
    filtered: list[_FilteredRow] = []
    for row in rows:
        scratch.tuples = {binding: row}
        residual: list[ConstraintFormula] = []
        rejected = False
        for condition in conditions:
            formula = compiler.condition_formula(condition, scratch).simplify()
            if isinstance(formula, FalseFormula):
                rejected = True
                break
            if not isinstance(formula, TrueFormula):
                residual.append(formula)
        if not rejected:
            filtered.append((row, tuple(residual)))
    return filtered


def _hash_join_key(condition: Condition, compiler: _ConditionCompiler,
                   new_binding: str, bound: set[str]) -> Optional[tuple[tuple[str, str], tuple[str, str]]]:
    """Detect ``bound_column = new_column`` equi-join predicates on base columns."""
    if condition.operator != "=":
        return None
    if not isinstance(condition.left, ColumnExpression) or \
            not isinstance(condition.right, ColumnExpression):
        return None
    left = compiler.resolve_binding(condition.left)
    right = compiler.resolve_binding(condition.right)
    for probe, build in ((left, right), (right, left)):
        if probe[0] in bound and build[0] == new_binding:
            if not compiler._column_types[build[0]][build[1]] and \
                    not compiler._column_types[probe[0]][probe[1]]:
                return probe, build
    return None


def workload_cardinalities(select: SelectQuery,
                           database: Database) -> tuple[int, ...]:
    """Row counts of every FROM-clause table occurrence, in clause order.

    The cost-based planner's pre-enumeration input: backend and shard
    choice must be made *before* candidates exist, and table cardinalities
    are the only size signal available at that point.  Self-joins count the
    table once per occurrence, matching the work the join actually does.
    """
    return tuple(len(database.relation(reference.table))
                 for reference in select.tables)


def enumerate_candidates(select: SelectQuery, database: Database,
                         limit: Optional[int] = None,
                         max_witnesses: int = 1_000_000,
                         group_witnesses: bool = True,
                         backend: Optional[str] = None,
                         shards: Optional[int] = None,
                         jobs: int = 1,
                         shard_stats: Optional[dict] = None,
                         frontier_cache=None) -> list[CandidateAnswer]:
    """Enumerate candidate answers of a SELECT query with their lineage.

    ``limit`` overrides the query's own LIMIT clause when given.  Candidates
    are returned in first-witness order, matching the paper's use of LIMIT to
    hand the analyst "an analyzable sample"; each candidate's lineage is the
    disjunction of the constraint formulae of all its witnesses.

    With ``group_witnesses=False`` the engine instead mirrors SQL's bag
    semantics (and the paper's experimental pipeline, which annotates the rows
    returned by the naive evaluation): every witness becomes its own output
    row with a single-witness lineage, and ``LIMIT`` counts rows.  The
    certainty attached to such a row is the measure of "this particular join
    combination witnesses the answer", a lower bound on the set-semantics
    measure of the output tuple.

    ``backend`` picks the execution strategy: ``"rows"`` is this module's
    row-at-a-time reference implementation, ``"columnar"`` the vectorized
    engine of :mod:`repro.engine.vectorized`.  The default ``None`` follows
    the database's own storage backend.  Both produce identical candidates,
    in the same order, with identical lineage formulas (the differential
    harness in ``tests/test_columnar_differential.py`` enforces this); a
    database stored under the other backend is converted first.

    ``shards`` splits the columnar engine's work into that many key-aligned
    partitions (``None`` follows the database's own ``shards`` declaration)
    and ``jobs`` spreads the shard frontiers over worker *processes* when
    above 1; results are bit-identical to ``shards=1``/``jobs=1`` -- see
    :func:`repro.engine.vectorized.enumerate_candidates_sharded`.  The row
    backend ignores both: it stays the verbatim single-core oracle.
    ``shard_stats``, if given, receives per-shard accounting for the
    service's stats report.

    ``frontier_cache``, if given, is a
    :class:`repro.engine.vectorized.FrontierCache`: the unsharded columnar
    path reuses a previously computed join frontier for the same query
    shape and delta-joins only rows appended since (MVCC append-only
    versions keep old row indices stable).  Results are bit-identical with
    or without it; the row backend and sharded execution ignore it.
    """
    chosen = backend if backend is not None else getattr(database, "backend", "rows")
    if chosen == "columnar":
        from repro.engine.vectorized import enumerate_candidates_columnar
        if getattr(database, "backend", "rows") != "columnar":
            database = database.with_backend("columnar")
        effective_shards = shards if shards is not None \
            else getattr(database, "shards", 1)
        return enumerate_candidates_columnar(
            select, database, limit=limit, max_witnesses=max_witnesses,
            group_witnesses=group_witnesses, shards=effective_shards,
            jobs=jobs, shard_stats=shard_stats,
            frontier_cache=frontier_cache)
    if chosen != "rows":
        raise ValueError(f"unknown engine backend {chosen!r}")
    if getattr(database, "backend", "rows") != "rows":
        database = database.with_backend("rows")
    compiler = _ConditionCompiler(database, select)
    # Selection pushdown happens before the per-step condition ordering is
    # computed: single-table filters prune each table at scan time (lazily,
    # on the join's first touch of the table, so LIMIT early-exits never pay
    # for tables they do not reach), and only the surviving rows feed the
    # hash-join builds and nested loops below.
    local_conditions = _local_conditions(select, compiler)
    steps = _order_conditions(select, compiler)
    effective_limit = limit if limit is not None else select.limit

    # Pre-compute the projection positions.
    if select.select_star:
        projection = [(reference.binding, attribute.name)
                      for reference in select.tables
                      for attribute in database.relation_schema(reference.table).attributes]
    else:
        projection = [compiler.resolve_binding(column) for column in select.select]
    columns = tuple(f"{binding}.{column}" for binding, column in projection)

    # Witness accumulation.  Under set semantics (group_witnesses=True) the
    # key is the output tuple; under bag semantics each witness gets its own
    # row, keyed by an opaque sequence number.
    order: list = []
    witness_formulae: dict = {}
    witness_counts: dict = {}
    row_values: dict = {}
    witnesses_seen = 0

    bindings = [reference.binding for reference in select.tables]
    schemas = [database.relation_schema(reference.table) for reference in select.tables]

    filtered_tables: list[Optional[list[_FilteredRow]]] = [None] * len(bindings)

    def filtered_for(step: int) -> list[_FilteredRow]:
        if filtered_tables[step] is None:
            reference = select.tables[step]
            filtered_tables[step] = _prefilter_rows(
                reference.binding, database.relation(reference.table).tuples(),
                local_conditions[step], compiler)
        return filtered_tables[step]

    # Build hash indexes lazily per (table index, column), over the rows
    # that survived selection pushdown.
    hash_indexes: dict[tuple[int, str], dict[Value, list[_FilteredRow]]] = {}

    def index_for(step: int, column: str) -> dict[Value, list[_FilteredRow]]:
        key = (step, column)
        if key not in hash_indexes:
            position = schemas[step].position(column)
            index: dict[Value, list[_FilteredRow]] = {}
            for entry in filtered_for(step):
                index.setdefault(entry[0][position], []).append(entry)
            hash_indexes[key] = index
        return hash_indexes[key]

    def recurse(step: int, row: _Row, pending: list[ConstraintFormula]) -> bool:
        """Depth-first join; returns False when the witness cap is hit."""
        nonlocal witnesses_seen
        if step == len(bindings):
            witnesses_seen += 1
            output = tuple(compiler.column_value(row, binding, column)
                           for binding, column in projection)
            if group_witnesses:
                key = output
                if key not in witness_formulae:
                    if effective_limit is not None and len(order) >= effective_limit:
                        return witnesses_seen < max_witnesses
                    order.append(key)
                    witness_formulae[key] = []
                    witness_counts[key] = 0
                    row_values[key] = output
            else:
                if effective_limit is not None and len(order) >= effective_limit:
                    return False
                key = len(order)
                order.append(key)
                witness_formulae[key] = []
                witness_counts[key] = 0
                row_values[key] = output
            witness_formulae[key].append(conjunction(list(pending)))
            witness_counts[key] += 1
            return witnesses_seen < max_witnesses

    # -- choose the tuples of table `step` --------------------------------------
        binding = bindings[step]
        bound = set(bindings[:step])
        step_conditions = steps[step]

        # Prefer a hash join on the first applicable base equi-join predicate.
        join_spec = None
        for condition in step_conditions:
            join_spec = _hash_join_key(condition, compiler, binding, bound)
            if join_spec is not None:
                break
        if join_spec is not None:
            probe, build = join_spec
            probe_value = compiler.column_value(row, probe[0], probe[1])
            candidate_rows = index_for(step, build[1]).get(probe_value, [])
        else:
            candidate_rows = filtered_for(step)

        for tuple_row, residual in candidate_rows:
            row.tuples[binding] = tuple_row
            new_pending = list(pending)
            new_pending.extend(residual)
            rejected = False
            for condition in step_conditions:
                formula = compiler.condition_formula(condition, row).simplify()
                if isinstance(formula, FalseFormula):
                    rejected = True
                    break
                if not isinstance(formula, TrueFormula):
                    new_pending.append(formula)
            if not rejected:
                if not recurse(step + 1, row, new_pending):
                    del row.tuples[binding]
                    return False
            del row.tuples[binding]
        return True

    recurse(0, _Row(), [])

    return _build_candidates(order, witness_formulae, witness_counts,
                             row_values, columns, database)


def _build_candidates(order: list, witness_formulae: dict, witness_counts: dict,
                      row_values: dict, columns: tuple[str, ...],
                      database: Database) -> list[CandidateAnswer]:
    """Assemble :class:`CandidateAnswer` objects from accumulated witnesses.

    Shared by the row-at-a-time path above and the vectorized columnar path
    (:mod:`repro.engine.vectorized`): each candidate's lineage is the
    simplified disjunction of its witnesses' constraint formulae, wrapped in
    a :class:`TranslationResult` over the database's ambient null order.
    """
    all_nulls = database.num_nulls_ordered()
    all_variables = tuple(null.variable for null in all_nulls)
    null_by_variable = {null.variable: null for null in all_nulls}

    candidates: list[CandidateAnswer] = []
    for key in order:
        formula = disjunction(witness_formulae[key]).simplify()
        occurring = formula.variables()
        relevant = tuple(name for name in all_variables if name in occurring)
        lineage = TranslationResult(
            formula=formula,
            all_variables=all_variables,
            relevant_variables=relevant,
            null_by_variable=null_by_variable,
        )
        candidates.append(CandidateAnswer(values=row_values[key], columns=columns,
                                          lineage=lineage,
                                          witnesses=witness_counts[key]))
    return candidates
