"""Execute parsed mutation statements against a database snapshot.

This is the bridge between the SQL surface (:mod:`repro.engine.sql`) and
the MVCC storage layer (:mod:`repro.relational.mutation`): it turns an
``InsertStatement``/``DeleteStatement``/``UpdateStatement`` into staged
row operations on a :class:`Mutation` and commits them atomically --
either the whole statement applies and a new snapshot version is sealed,
or a typed error is raised and the parent snapshot is untouched.

Two semantics decisions worth stating:

**Three-valued WHERE.**  Rows may carry marked nulls, so a predicate can
be certainly true, certainly false, or unknown.  A mutation's WHERE
matches a row only when *every* condition is **certainly true** (the
condition's constraint formula simplifies to ``TrueFormula``): deleting a
row whose membership in the predicate depends on a null's valuation
would silently pick one possible world, which is exactly what this
engine exists to avoid.  Unknown rows are left in place.

**Deterministic fresh nulls.**  ``NULL`` in a VALUES row or SET
assignment creates a *fresh* marked null named ``m<V>_<k>`` where ``V``
is the version the statement commits (parent ``data_version + 1``) and
``k`` counts NULL evaluations in execution order within the statement.
The ``m`` prefix keeps the namespace disjoint from generated data
(:class:`~repro.relational.values.NullFactory` uses ``n``), and the
naming is a pure function of (snapshot, statement), which is what lets
the versioned differential harness replay a mutation script against a
from-scratch rebuild and demand bit-identical lineage digests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.formula import TrueFormula
from repro.engine.candidates import _ConditionCompiler, _Row
from repro.engine.sql.ast import (
    BinaryExpression,
    ColumnExpression,
    DeleteStatement,
    Expression,
    InsertStatement,
    NullLiteral,
    NumberLiteral,
    SelectQuery,
    StringLiteral,
    TableReference,
    UpdateStatement,
)
from repro.engine.translate_sql import SqlTranslationError
from repro.relational.mutation import MutationValidationError
from repro.relational.values import (
    BaseNull,
    NumNull,
    Value,
    is_base_null,
    is_num_null,
    is_numeric_constant,
)

__all__ = ["MutationOutcome", "execute_mutation"]

#: Prefix of fresh nulls minted by SQL ``NULL`` -- disjoint from the
#: datagen :class:`NullFactory` prefix (``n``) so replays cannot collide
#: with generated data.
FRESH_NULL_PREFIX = "m"


@dataclass(frozen=True)
class MutationOutcome:
    """What one committed mutation statement did, for the wire response."""

    operation: str  # "insert" | "delete" | "update"
    table: str
    inserted: int
    deleted: int
    data_version: int

    def as_dict(self) -> dict:
        return {
            "operation": self.operation,
            "table": self.table,
            "inserted": self.inserted,
            "deleted": self.deleted,
            "data_version": self.data_version,
        }


class _FreshNulls:
    """Mints the statement's fresh nulls in deterministic execution order."""

    def __init__(self, version: int) -> None:
        self._version = version
        self._ordinal = 0

    def next(self, numeric: bool) -> Value:
        name = f"{FRESH_NULL_PREFIX}{self._version}_{self._ordinal}"
        self._ordinal += 1
        return NumNull(name) if numeric else BaseNull(name)


def _single_table_compiler(database, table: str) -> _ConditionCompiler:
    """A condition compiler whose only binding is ``table`` itself."""
    select = SelectQuery(select=(), select_star=True,
                         tables=(TableReference(table=table),))
    try:
        return _ConditionCompiler(database, select)
    except KeyError as error:
        raise MutationValidationError(f"unknown relation {table!r}") from error


_NUMERIC_COMPARE = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _fast_condition(condition, columns):
    """A per-tuple predicate for ``column op literal``, or ``None``.

    The fast path mirrors :meth:`_ConditionCompiler.condition_formula`'s
    certainly-true semantics exactly for the overwhelmingly common shape
    (one column against one literal, either order):

    * a numeric comparison is certainly true only when the stored value
      is a concrete number satisfying it -- a marked null leaves an open
      constraint atom, never ``TrueFormula``;
    * a base equality folds immediately: a base null equals only itself,
      so ``null = 'lit'`` is certainly false and ``null <> 'lit'`` is
      certainly **true**.

    Anything else (column-vs-column, arithmetic, type mismatches -- which
    must keep raising their translation errors) returns ``None`` and
    takes the generic formula path.
    """
    left, right = condition.left, condition.right
    if isinstance(right, ColumnExpression) and not isinstance(left, ColumnExpression):
        left, right = right, left
        operator = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(
            condition.operator, condition.operator)
    else:
        operator = condition.operator
    if not isinstance(left, ColumnExpression) or left.column not in columns:
        return None
    position, numeric = columns[left.column]
    if numeric and isinstance(right, NumberLiteral):
        compare = _NUMERIC_COMPARE.get(operator)
        if compare is None:
            return None
        bound = right.value

        def numeric_predicate(values) -> bool:
            value = values[position]
            return is_numeric_constant(value) and compare(float(value), bound)

        return numeric_predicate
    if not numeric and isinstance(right, StringLiteral) and \
            operator in ("=", "<>"):
        literal = right.value
        want_equal = operator == "="

        def base_predicate(values) -> bool:
            value = values[position]
            equal = (not is_base_null(value)) and value == literal
            return equal if want_equal else not equal

        return base_predicate
    return None


def _matching_rows(database, table: str, conditions) -> list[int]:
    """Indices of rows every condition is *certainly true* for.

    Evaluated against the parent snapshot: a DELETE/UPDATE sees the
    table as it was before the statement, never its own effects.
    Simple ``column op literal`` conditions run through a direct
    per-tuple predicate first (pruning the scan); only the residual
    conditions pay the full constraint-formula machinery.
    """
    if not conditions:
        return list(range(len(database.relation(table))))
    relation = database.relation(table)
    tuples = relation.tuples()
    schema = database.relation_schema(table)
    columns = {attribute.name: (position, attribute.is_numeric)
               for position, attribute in enumerate(schema.attributes)}
    candidates = range(len(tuples))
    residual = []
    for condition in conditions:
        predicate = _fast_condition(condition, columns)
        if predicate is None:
            residual.append(condition)
        else:
            candidates = [index for index in candidates
                          if predicate(tuples[index])]
    if not residual:
        return list(candidates)
    compiler = _single_table_compiler(database, table)
    matched: list[int] = []
    try:
        for index in candidates:
            row = _Row(tuples={table: tuples[index]})
            certain = True
            for condition in residual:
                formula = compiler.condition_formula(condition, row).simplify()
                if not isinstance(formula, TrueFormula):
                    certain = False
                    break
            if certain:
                matched.append(index)
    except SqlTranslationError as error:
        raise MutationValidationError(str(error)) from error
    return matched


def _literal_value(expression: Expression, numeric: bool,
                   nulls: _FreshNulls) -> Value:
    """The stored value of one VALUES literal for a column of given type."""
    if isinstance(expression, NullLiteral):
        return nulls.next(numeric)
    if isinstance(expression, NumberLiteral):
        return expression.value
    if isinstance(expression, StringLiteral):
        return expression.value
    raise MutationValidationError(
        f"unsupported literal {expression!r} in VALUES")


def _assignment_value(expression: Expression, numeric: bool,
                      compiler: _ConditionCompiler, row: _Row,
                      nulls: _FreshNulls) -> Value:
    """Evaluate one SET expression over the row being updated.

    Column references read the *old* row; arithmetic folds over numeric
    constants only -- an expression whose operand is a marked null has no
    storable value (it would be a symbolic term), so it is rejected.
    Copying a null verbatim (``SET a = b``) is allowed.
    """
    if isinstance(expression, NullLiteral):
        return nulls.next(numeric)
    if isinstance(expression, NumberLiteral):
        return expression.value
    if isinstance(expression, StringLiteral):
        return expression.value
    if isinstance(expression, ColumnExpression):
        try:
            binding, column = compiler.resolve_binding(expression)
        except SqlTranslationError as error:
            raise MutationValidationError(str(error)) from error
        return compiler.column_value(row, binding, column)
    if isinstance(expression, BinaryExpression):
        left = _assignment_value(expression.left, numeric, compiler, row, nulls)
        right = _assignment_value(expression.right, numeric, compiler, row, nulls)
        if is_base_null(left) or is_num_null(left) or \
                is_base_null(right) or is_num_null(right):
            raise MutationValidationError(
                f"arithmetic over a marked null in {expression!r} has no "
                "storable value")
        if not (is_numeric_constant(left) and is_numeric_constant(right)):
            raise MutationValidationError(
                f"arithmetic over non-numeric values in {expression!r}")
        left_number = float(left)
        right_number = float(right)
        if expression.operator == "+":
            return left_number + right_number
        if expression.operator == "-":
            return left_number - right_number
        if expression.operator == "*":
            return left_number * right_number
        if expression.operator == "/":
            if right_number == 0.0:
                raise MutationValidationError(
                    f"division by zero in {expression!r}")
            return left_number / right_number
        raise MutationValidationError(
            f"unsupported operator {expression.operator!r} in {expression!r}")
    raise MutationValidationError(f"unsupported expression {expression!r}")


def execute_mutation(statement, database):
    """Apply one parsed mutation statement to a snapshot, atomically.

    Returns ``(new_database, deltas, outcome)`` where ``deltas`` is the
    ``{table: TableDelta}`` of :meth:`Mutation.commit` and ``outcome``
    summarises the statement for the wire response.  Raises
    :class:`MutationValidationError` / :class:`MutationConflictError`
    without touching ``database`` on any failure -- staging is validated
    eagerly and commit happens only after every row operation succeeded.
    """
    nulls = _FreshNulls(database.data_version + 1)
    mutation = database.begin_mutation()
    if isinstance(statement, InsertStatement):
        schema = _table_schema(database, statement.table)
        for row in statement.rows:
            if len(row) != len(schema.attributes):
                raise MutationValidationError(
                    f"INSERT row has {len(row)} values, "
                    f"{statement.table!r} has {len(schema.attributes)} columns")
            values = tuple(
                _literal_value(expression, attribute.is_numeric, nulls)
                for expression, attribute in zip(row, schema.attributes))
            mutation.insert(statement.table, values)
        operation = "insert"
    elif isinstance(statement, DeleteStatement):
        _table_schema(database, statement.table)
        for index in _matching_rows(database, statement.table,
                                    statement.conditions):
            mutation.delete(statement.table, index)
        operation = "delete"
    elif isinstance(statement, UpdateStatement):
        schema = _table_schema(database, statement.table)
        positions = {attribute.name: position
                     for position, attribute in enumerate(schema.attributes)}
        for assignment in statement.assignments:
            if assignment.column not in positions:
                raise MutationValidationError(
                    f"unknown column {assignment.column!r} in "
                    f"{statement.table!r}")
        matched = _matching_rows(database, statement.table,
                                 statement.conditions)
        compiler = _single_table_compiler(database, statement.table)
        tuples = database.relation(statement.table).tuples()
        for index in matched:
            old_values = tuples[index]
            row = _Row(tuples={statement.table: old_values})
            new_values = list(old_values)
            for assignment in statement.assignments:
                position = positions[assignment.column]
                numeric = schema.attributes[position].is_numeric
                new_values[position] = _assignment_value(
                    assignment.value, numeric, compiler, row, nulls)
            mutation.update(statement.table, index, new_values)
        operation = "update"
    else:
        raise MutationValidationError(
            f"not a mutation statement: {type(statement).__name__}")

    counts = mutation.staged_counts().get(statement.table, (0, 0))
    new_database, deltas = mutation.commit()
    outcome = MutationOutcome(
        operation=operation,
        table=statement.table,
        inserted=counts[0],
        deleted=counts[1],
        data_version=new_database.data_version,
    )
    return new_database, deltas, outcome


def _table_schema(database, table: str):
    if table not in database.relation_names():
        raise MutationValidationError(f"unknown relation {table!r}")
    return database.relation_schema(table)
