"""Abstract syntax tree of the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class TableReference:
    """One entry of the FROM clause: a table and its (optional) alias."""

    table: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        """The name conditions refer to this table occurrence by."""
        return self.alias if self.alias is not None else self.table


class Expression:
    """Base class of scalar expressions in SELECT and WHERE clauses."""


@dataclass(frozen=True)
class ColumnExpression(Expression):
    """A column reference ``alias.column`` or bare ``column``."""

    column: str
    table: Optional[str] = None

    def __repr__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class NumberLiteral(Expression):
    """A numeric literal."""

    value: float

    def __repr__(self) -> str:
        return f"{self.value:g}"


@dataclass(frozen=True)
class StringLiteral(Expression):
    """A string literal (a base-type constant)."""

    value: str

    def __repr__(self) -> str:
        return f"'{self.value}'"


@dataclass(frozen=True)
class BinaryExpression(Expression):
    """An arithmetic combination of two expressions (``+``, ``-``, ``*``, ``/``)."""

    operator: str
    left: Expression
    right: Expression

    def __repr__(self) -> str:
        return f"({self.left!r} {self.operator} {self.right!r})"


@dataclass(frozen=True)
class Condition:
    """One WHERE predicate: ``left op right`` with a comparison operator."""

    left: Expression
    operator: str
    right: Expression

    def __repr__(self) -> str:
        return f"{self.left!r} {self.operator} {self.right!r}"


@dataclass(frozen=True)
class SelectQuery:
    """A parsed ``SELECT ... FROM ... [WHERE ...] [LIMIT n]`` statement."""

    select: tuple[ColumnExpression, ...]
    tables: tuple[TableReference, ...]
    conditions: tuple[Condition, ...] = field(default_factory=tuple)
    limit: Optional[int] = None
    distinct: bool = False
    select_star: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "select", tuple(self.select))
        object.__setattr__(self, "tables", tuple(self.tables))
        object.__setattr__(self, "conditions", tuple(self.conditions))
        if not self.tables:
            raise ValueError("a SELECT query needs at least one table")
        if not self.select and not self.select_star:
            raise ValueError("a SELECT query needs a non-empty projection or *")
