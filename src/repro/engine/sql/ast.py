"""Abstract syntax tree of the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class TableReference:
    """One entry of the FROM clause: a table and its (optional) alias."""

    table: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        """The name conditions refer to this table occurrence by."""
        return self.alias if self.alias is not None else self.table


class Expression:
    """Base class of scalar expressions in SELECT and WHERE clauses."""


@dataclass(frozen=True)
class ColumnExpression(Expression):
    """A column reference ``alias.column`` or bare ``column``."""

    column: str
    table: Optional[str] = None

    def __repr__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class NumberLiteral(Expression):
    """A numeric literal."""

    value: float

    def __repr__(self) -> str:
        return f"{self.value:g}"


@dataclass(frozen=True)
class StringLiteral(Expression):
    """A string literal (a base-type constant)."""

    value: str

    def __repr__(self) -> str:
        return f"'{self.value}'"


@dataclass(frozen=True)
class NullLiteral(Expression):
    """The ``NULL`` keyword in an INSERT row or UPDATE assignment.

    Execution turns each occurrence into a *fresh* marked null (base or
    numeric, depending on the target column's type) with a deterministic
    name derived from the committing version -- see
    :mod:`repro.engine.mutate`.
    """

    def __repr__(self) -> str:
        return "NULL"


@dataclass(frozen=True)
class BinaryExpression(Expression):
    """An arithmetic combination of two expressions (``+``, ``-``, ``*``, ``/``)."""

    operator: str
    left: Expression
    right: Expression

    def __repr__(self) -> str:
        return f"({self.left!r} {self.operator} {self.right!r})"


@dataclass(frozen=True)
class Condition:
    """One WHERE predicate: ``left op right`` with a comparison operator."""

    left: Expression
    operator: str
    right: Expression

    def __repr__(self) -> str:
        return f"{self.left!r} {self.operator} {self.right!r}"


@dataclass(frozen=True)
class SelectQuery:
    """A parsed ``SELECT ... FROM ... [WHERE ...] [LIMIT n]`` statement."""

    select: tuple[ColumnExpression, ...]
    tables: tuple[TableReference, ...]
    conditions: tuple[Condition, ...] = field(default_factory=tuple)
    limit: Optional[int] = None
    distinct: bool = False
    select_star: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "select", tuple(self.select))
        object.__setattr__(self, "tables", tuple(self.tables))
        object.__setattr__(self, "conditions", tuple(self.conditions))
        if not self.tables:
            raise ValueError("a SELECT query needs at least one table")
        if not self.select and not self.select_star:
            raise ValueError("a SELECT query needs a non-empty projection or *")


@dataclass(frozen=True)
class InsertStatement:
    """A parsed ``INSERT INTO t VALUES (...), (...)`` statement.

    Each row is a tuple of literal expressions (:class:`NumberLiteral`,
    :class:`StringLiteral` or :class:`NullLiteral`) -- column references
    have no meaning in an INSERT and are rejected by the parser.
    """

    table: str
    rows: tuple[tuple[Expression, ...], ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "rows",
                           tuple(tuple(row) for row in self.rows))
        if not self.rows:
            raise ValueError("an INSERT statement needs at least one row")


@dataclass(frozen=True)
class DeleteStatement:
    """A parsed ``DELETE FROM t [WHERE ...]`` statement."""

    table: str
    conditions: tuple[Condition, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "conditions", tuple(self.conditions))


@dataclass(frozen=True)
class Assignment:
    """One ``column = expression`` of an UPDATE's SET clause."""

    column: str
    value: Expression

    def __repr__(self) -> str:
        return f"{self.column} = {self.value!r}"


@dataclass(frozen=True)
class UpdateStatement:
    """A parsed ``UPDATE t SET c = e [, ...] [WHERE ...]`` statement."""

    table: str
    assignments: tuple[Assignment, ...]
    conditions: tuple[Condition, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "assignments", tuple(self.assignments))
        object.__setattr__(self, "conditions", tuple(self.conditions))
        if not self.assignments:
            raise ValueError("an UPDATE statement needs at least one assignment")
        seen = set()
        for assignment in self.assignments:
            if assignment.column in seen:
                raise ValueError(
                    f"column {assignment.column!r} assigned twice in one UPDATE")
            seen.add(assignment.column)


#: Everything :func:`repro.engine.sql.parser.parse_statement` can return.
Statement = (SelectQuery, InsertStatement, DeleteStatement, UpdateStatement)
