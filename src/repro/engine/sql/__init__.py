"""A small SQL subset: lexer, AST and recursive-descent parser.

The read grammar covers exactly what the paper's experimental queries
need::

    SELECT <column list | *>
    FROM   <table [alias]> [, <table [alias]>]*
    [WHERE <predicate> [AND <predicate>]*]
    [LIMIT <n>]

where a predicate compares two arithmetic expressions over column
references and literals with one of ``=  <>  !=  <  <=  >  >=``.

The live data plane adds the mutation statements::

    INSERT INTO <table> VALUES (<literal>, ...) [, (...)]*
    DELETE FROM <table> [WHERE ...]
    UPDATE <table> SET <col> = <expr> [, ...] [WHERE ...]

``NULL`` in a VALUES row or SET assignment denotes a fresh marked null;
execution (:mod:`repro.engine.mutate`) names it deterministically from
the committing version.  :func:`parse_statement` dispatches on the
leading keyword; :func:`parse_sql` remains SELECT-only.
"""

from repro.engine.sql.ast import (
    Assignment,
    BinaryExpression,
    ColumnExpression,
    Condition,
    DeleteStatement,
    Expression,
    InsertStatement,
    NullLiteral,
    NumberLiteral,
    SelectQuery,
    StringLiteral,
    TableReference,
    UpdateStatement,
)
from repro.engine.sql.lexer import SqlSyntaxError, tokenize
from repro.engine.sql.parser import parse_sql, parse_statement

__all__ = [
    "Assignment",
    "BinaryExpression",
    "ColumnExpression",
    "Condition",
    "DeleteStatement",
    "Expression",
    "InsertStatement",
    "NullLiteral",
    "NumberLiteral",
    "SelectQuery",
    "SqlSyntaxError",
    "StringLiteral",
    "TableReference",
    "UpdateStatement",
    "parse_sql",
    "parse_statement",
    "tokenize",
]
