"""A small SQL subset: lexer, AST and recursive-descent parser.

The grammar covers exactly what the paper's experimental queries need::

    SELECT <column list | *>
    FROM   <table [alias]> [, <table [alias]>]*
    [WHERE <predicate> [AND <predicate>]*]
    [LIMIT <n>]

where a predicate compares two arithmetic expressions over column references
and literals with one of ``=  <>  !=  <  <=  >  >=``.
"""

from repro.engine.sql.ast import (
    BinaryExpression,
    ColumnExpression,
    Condition,
    Expression,
    NumberLiteral,
    SelectQuery,
    StringLiteral,
    TableReference,
)
from repro.engine.sql.lexer import SqlSyntaxError, tokenize
from repro.engine.sql.parser import parse_sql

__all__ = [
    "BinaryExpression",
    "ColumnExpression",
    "Condition",
    "Expression",
    "NumberLiteral",
    "SelectQuery",
    "SqlSyntaxError",
    "StringLiteral",
    "TableReference",
    "parse_sql",
    "tokenize",
]
