"""Recursive-descent parser for the SQL subset."""

from __future__ import annotations

from typing import Optional

from repro.engine.sql.ast import (
    Assignment,
    BinaryExpression,
    ColumnExpression,
    Condition,
    DeleteStatement,
    Expression,
    InsertStatement,
    NullLiteral,
    NumberLiteral,
    SelectQuery,
    StringLiteral,
    TableReference,
    UpdateStatement,
)
from repro.engine.sql.lexer import SqlSyntaxError, Token, TokenType, tokenize

_COMPARISON_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">")
_ADDITIVE_OPERATORS = ("+", "-")
_MULTIPLICATIVE_OPERATORS = ("*", "/")

#: Maximum nesting depth of parenthesised / unary-minus expressions.  Deeply
#: nested input (pathological or adversarial, e.g. ``((((...``) must fail
#: with a clean :class:`SqlSyntaxError` rather than exhausting the Python
#: recursion limit -- the SQL fuzz harness holds the parser to that.
_MAX_EXPRESSION_DEPTH = 200


class _Parser:
    """Stateful cursor over the token stream."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0
        self._depth = 0

    # -- token plumbing ------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect_keyword(self, keyword: str) -> Token:
        token = self._peek()
        if not token.matches(TokenType.KEYWORD, keyword):
            raise SqlSyntaxError(
                f"expected keyword {keyword!r} at position {token.position}, "
                f"got {token.text!r}")
        return self._advance()

    def _accept_keyword(self, keyword: str) -> bool:
        if self._peek().matches(TokenType.KEYWORD, keyword):
            self._advance()
            return True
        return False

    def _accept_punctuation(self, text: str) -> bool:
        if self._peek().matches(TokenType.PUNCTUATION, text):
            self._advance()
            return True
        return False

    def _expect_identifier(self) -> str:
        token = self._peek()
        if token.type is not TokenType.IDENTIFIER:
            raise SqlSyntaxError(
                f"expected an identifier at position {token.position}, got {token.text!r}")
        return self._advance().text

    # -- grammar --------------------------------------------------------------

    def parse_statement(self):
        """Dispatch on the leading keyword: SELECT or a mutation statement."""
        token = self._peek()
        if token.matches(TokenType.KEYWORD, "INSERT"):
            return self._parse_insert()
        if token.matches(TokenType.KEYWORD, "DELETE"):
            return self._parse_delete()
        if token.matches(TokenType.KEYWORD, "UPDATE"):
            return self._parse_update()
        return self.parse()

    def parse(self) -> SelectQuery:
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT")
        select_star = False
        select: list[ColumnExpression] = []
        if self._peek().matches(TokenType.OPERATOR, "*"):
            self._advance()
            select_star = True
        else:
            select.append(self._parse_column_reference())
            while self._accept_punctuation(","):
                select.append(self._parse_column_reference())

        self._expect_keyword("FROM")
        tables = [self._parse_table_reference()]
        while self._accept_punctuation(","):
            tables.append(self._parse_table_reference())

        conditions: list[Condition] = []
        if self._accept_keyword("WHERE"):
            conditions.append(self._parse_condition())
            while self._accept_keyword("AND"):
                conditions.append(self._parse_condition())

        limit: Optional[int] = None
        if self._accept_keyword("LIMIT"):
            token = self._peek()
            if token.type is not TokenType.NUMBER:
                raise SqlSyntaxError(
                    f"expected a number after LIMIT at position {token.position}")
            text = self._advance().text
            try:
                limit = int(float(text))
            except (OverflowError, ValueError) as error:
                raise SqlSyntaxError(
                    f"LIMIT value {text!r} at position {token.position} "
                    "is out of range") from error

        self._finish_statement()
        return SelectQuery(select=tuple(select), tables=tuple(tables),
                           conditions=tuple(conditions), limit=limit,
                           distinct=distinct, select_star=select_star)

    def _finish_statement(self) -> None:
        self._accept_punctuation(";")
        end = self._peek()
        if end.type is not TokenType.END:
            raise SqlSyntaxError(
                f"unexpected trailing input at position {end.position}: {end.text!r}")

    def _parse_where_clause(self) -> tuple[Condition, ...]:
        conditions: list[Condition] = []
        if self._accept_keyword("WHERE"):
            conditions.append(self._parse_condition())
            while self._accept_keyword("AND"):
                conditions.append(self._parse_condition())
        return tuple(conditions)

    def _parse_insert(self) -> InsertStatement:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_identifier()
        self._expect_keyword("VALUES")
        rows = [self._parse_value_row()]
        while self._accept_punctuation(","):
            rows.append(self._parse_value_row())
        self._finish_statement()
        return InsertStatement(table=table, rows=tuple(rows))

    def _parse_value_row(self) -> tuple[Expression, ...]:
        if not self._accept_punctuation("("):
            token = self._peek()
            raise SqlSyntaxError(
                f"expected '(' to open a VALUES row at position {token.position}, "
                f"got {token.text!r}")
        values = [self._parse_literal_value()]
        while self._accept_punctuation(","):
            values.append(self._parse_literal_value())
        if not self._accept_punctuation(")"):
            raise SqlSyntaxError(f"missing ')' at position {self._peek().position}")
        return tuple(values)

    def _parse_literal_value(self) -> Expression:
        """One VALUES entry: a number, string, NULL, or negated number.

        Column references and arithmetic are meaningless without a source
        row, so an INSERT rejects them at parse time.
        """
        token = self._peek()
        if token.matches(TokenType.KEYWORD, "NULL"):
            self._advance()
            return NullLiteral()
        if token.type is TokenType.NUMBER:
            self._advance()
            return NumberLiteral(value=float(token.text))
        if token.type is TokenType.STRING:
            self._advance()
            return StringLiteral(value=token.text[1:-1].replace("''", "'"))
        if token.type is TokenType.OPERATOR and token.text == "-":
            self._advance()
            inner = self._peek()
            if inner.type is not TokenType.NUMBER:
                raise SqlSyntaxError(
                    f"expected a number after '-' at position {inner.position}, "
                    f"got {inner.text!r}")
            self._advance()
            return NumberLiteral(value=-float(inner.text))
        raise SqlSyntaxError(
            f"expected a literal value at position {token.position}, "
            f"got {token.text!r}")

    def _parse_delete(self) -> DeleteStatement:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_identifier()
        conditions = self._parse_where_clause()
        self._finish_statement()
        return DeleteStatement(table=table, conditions=conditions)

    def _parse_update(self) -> UpdateStatement:
        self._expect_keyword("UPDATE")
        table = self._expect_identifier()
        self._expect_keyword("SET")
        assignments = [self._parse_assignment()]
        while self._accept_punctuation(","):
            assignments.append(self._parse_assignment())
        conditions = self._parse_where_clause()
        self._finish_statement()
        try:
            return UpdateStatement(table=table, assignments=tuple(assignments),
                                   conditions=conditions)
        except ValueError as error:  # duplicate assignment target
            raise SqlSyntaxError(str(error)) from error

    def _parse_assignment(self) -> Assignment:
        column = self._expect_identifier()
        token = self._peek()
        if not token.matches(TokenType.OPERATOR, "="):
            raise SqlSyntaxError(
                f"expected '=' in SET assignment at position {token.position}, "
                f"got {token.text!r}")
        self._advance()
        if self._peek().matches(TokenType.KEYWORD, "NULL"):
            self._advance()
            return Assignment(column=column, value=NullLiteral())
        return Assignment(column=column, value=self._parse_expression())

    def _parse_table_reference(self) -> TableReference:
        table = self._expect_identifier()
        alias: Optional[str] = None
        self._accept_keyword("AS")
        if self._peek().type is TokenType.IDENTIFIER:
            alias = self._advance().text
        return TableReference(table=table, alias=alias)

    def _parse_column_reference(self) -> ColumnExpression:
        first = self._expect_identifier()
        if self._accept_punctuation("."):
            second = self._expect_identifier()
            return ColumnExpression(column=second, table=first)
        return ColumnExpression(column=first, table=None)

    def _parse_condition(self) -> Condition:
        left = self._parse_expression()
        token = self._peek()
        if token.type is not TokenType.OPERATOR or token.text not in _COMPARISON_OPERATORS:
            raise SqlSyntaxError(
                f"expected a comparison operator at position {token.position}, "
                f"got {token.text!r}")
        operator = self._advance().text
        right = self._parse_expression()
        return Condition(left=left, operator=operator, right=right)

    def _parse_expression(self) -> Expression:
        expression = self._parse_term()
        while (self._peek().type is TokenType.OPERATOR
               and self._peek().text in _ADDITIVE_OPERATORS):
            operator = self._advance().text
            right = self._parse_term()
            expression = BinaryExpression(operator=operator, left=expression, right=right)
        return expression

    def _parse_term(self) -> Expression:
        expression = self._parse_factor()
        while (self._peek().type is TokenType.OPERATOR
               and self._peek().text in _MULTIPLICATIVE_OPERATORS):
            operator = self._advance().text
            right = self._parse_factor()
            expression = BinaryExpression(operator=operator, left=expression, right=right)
        return expression

    def _parse_factor(self) -> Expression:
        token = self._peek()
        if self._depth >= _MAX_EXPRESSION_DEPTH:
            raise SqlSyntaxError(
                f"expression nesting too deep at position {token.position}")
        if token.matches(TokenType.PUNCTUATION, "("):
            self._advance()
            self._depth += 1
            try:
                inner = self._parse_expression()
            finally:
                self._depth -= 1
            if not self._accept_punctuation(")"):
                raise SqlSyntaxError(f"missing ')' at position {self._peek().position}")
            return inner
        if token.type is TokenType.NUMBER:
            self._advance()
            return NumberLiteral(value=float(token.text))
        if token.type is TokenType.STRING:
            self._advance()
            return StringLiteral(value=token.text[1:-1].replace("''", "'"))
        if token.type is TokenType.OPERATOR and token.text == "-":
            self._advance()
            self._depth += 1
            try:
                inner = self._parse_factor()
            finally:
                self._depth -= 1
            return BinaryExpression(operator="-", left=NumberLiteral(0.0), right=inner)
        if token.type is TokenType.IDENTIFIER:
            return self._parse_column_reference()
        raise SqlSyntaxError(
            f"unexpected token {token.text!r} at position {token.position}")


def parse_sql(sql: str) -> SelectQuery:
    """Parse a SELECT statement of the supported subset into its AST."""
    return _Parser(tokenize(sql)).parse()


def parse_statement(sql: str):
    """Parse any supported statement: SELECT, INSERT, DELETE or UPDATE.

    Returns the matching AST node (:class:`SelectQuery`,
    :class:`InsertStatement`, :class:`DeleteStatement` or
    :class:`UpdateStatement`); raises :class:`SqlSyntaxError` otherwise.
    """
    return _Parser(tokenize(sql)).parse_statement()
