"""Recursive-descent parser for the SQL subset."""

from __future__ import annotations

from typing import Optional

from repro.engine.sql.ast import (
    BinaryExpression,
    ColumnExpression,
    Condition,
    Expression,
    NumberLiteral,
    SelectQuery,
    StringLiteral,
    TableReference,
)
from repro.engine.sql.lexer import SqlSyntaxError, Token, TokenType, tokenize

_COMPARISON_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">")
_ADDITIVE_OPERATORS = ("+", "-")
_MULTIPLICATIVE_OPERATORS = ("*", "/")

#: Maximum nesting depth of parenthesised / unary-minus expressions.  Deeply
#: nested input (pathological or adversarial, e.g. ``((((...``) must fail
#: with a clean :class:`SqlSyntaxError` rather than exhausting the Python
#: recursion limit -- the SQL fuzz harness holds the parser to that.
_MAX_EXPRESSION_DEPTH = 200


class _Parser:
    """Stateful cursor over the token stream."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0
        self._depth = 0

    # -- token plumbing ------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect_keyword(self, keyword: str) -> Token:
        token = self._peek()
        if not token.matches(TokenType.KEYWORD, keyword):
            raise SqlSyntaxError(
                f"expected keyword {keyword!r} at position {token.position}, "
                f"got {token.text!r}")
        return self._advance()

    def _accept_keyword(self, keyword: str) -> bool:
        if self._peek().matches(TokenType.KEYWORD, keyword):
            self._advance()
            return True
        return False

    def _accept_punctuation(self, text: str) -> bool:
        if self._peek().matches(TokenType.PUNCTUATION, text):
            self._advance()
            return True
        return False

    def _expect_identifier(self) -> str:
        token = self._peek()
        if token.type is not TokenType.IDENTIFIER:
            raise SqlSyntaxError(
                f"expected an identifier at position {token.position}, got {token.text!r}")
        return self._advance().text

    # -- grammar --------------------------------------------------------------

    def parse(self) -> SelectQuery:
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT")
        select_star = False
        select: list[ColumnExpression] = []
        if self._peek().matches(TokenType.OPERATOR, "*"):
            self._advance()
            select_star = True
        else:
            select.append(self._parse_column_reference())
            while self._accept_punctuation(","):
                select.append(self._parse_column_reference())

        self._expect_keyword("FROM")
        tables = [self._parse_table_reference()]
        while self._accept_punctuation(","):
            tables.append(self._parse_table_reference())

        conditions: list[Condition] = []
        if self._accept_keyword("WHERE"):
            conditions.append(self._parse_condition())
            while self._accept_keyword("AND"):
                conditions.append(self._parse_condition())

        limit: Optional[int] = None
        if self._accept_keyword("LIMIT"):
            token = self._peek()
            if token.type is not TokenType.NUMBER:
                raise SqlSyntaxError(
                    f"expected a number after LIMIT at position {token.position}")
            text = self._advance().text
            try:
                limit = int(float(text))
            except (OverflowError, ValueError) as error:
                raise SqlSyntaxError(
                    f"LIMIT value {text!r} at position {token.position} "
                    "is out of range") from error

        self._accept_punctuation(";")
        end = self._peek()
        if end.type is not TokenType.END:
            raise SqlSyntaxError(
                f"unexpected trailing input at position {end.position}: {end.text!r}")
        return SelectQuery(select=tuple(select), tables=tuple(tables),
                           conditions=tuple(conditions), limit=limit,
                           distinct=distinct, select_star=select_star)

    def _parse_table_reference(self) -> TableReference:
        table = self._expect_identifier()
        alias: Optional[str] = None
        self._accept_keyword("AS")
        if self._peek().type is TokenType.IDENTIFIER:
            alias = self._advance().text
        return TableReference(table=table, alias=alias)

    def _parse_column_reference(self) -> ColumnExpression:
        first = self._expect_identifier()
        if self._accept_punctuation("."):
            second = self._expect_identifier()
            return ColumnExpression(column=second, table=first)
        return ColumnExpression(column=first, table=None)

    def _parse_condition(self) -> Condition:
        left = self._parse_expression()
        token = self._peek()
        if token.type is not TokenType.OPERATOR or token.text not in _COMPARISON_OPERATORS:
            raise SqlSyntaxError(
                f"expected a comparison operator at position {token.position}, "
                f"got {token.text!r}")
        operator = self._advance().text
        right = self._parse_expression()
        return Condition(left=left, operator=operator, right=right)

    def _parse_expression(self) -> Expression:
        expression = self._parse_term()
        while (self._peek().type is TokenType.OPERATOR
               and self._peek().text in _ADDITIVE_OPERATORS):
            operator = self._advance().text
            right = self._parse_term()
            expression = BinaryExpression(operator=operator, left=expression, right=right)
        return expression

    def _parse_term(self) -> Expression:
        expression = self._parse_factor()
        while (self._peek().type is TokenType.OPERATOR
               and self._peek().text in _MULTIPLICATIVE_OPERATORS):
            operator = self._advance().text
            right = self._parse_factor()
            expression = BinaryExpression(operator=operator, left=expression, right=right)
        return expression

    def _parse_factor(self) -> Expression:
        token = self._peek()
        if self._depth >= _MAX_EXPRESSION_DEPTH:
            raise SqlSyntaxError(
                f"expression nesting too deep at position {token.position}")
        if token.matches(TokenType.PUNCTUATION, "("):
            self._advance()
            self._depth += 1
            try:
                inner = self._parse_expression()
            finally:
                self._depth -= 1
            if not self._accept_punctuation(")"):
                raise SqlSyntaxError(f"missing ')' at position {self._peek().position}")
            return inner
        if token.type is TokenType.NUMBER:
            self._advance()
            return NumberLiteral(value=float(token.text))
        if token.type is TokenType.STRING:
            self._advance()
            return StringLiteral(value=token.text[1:-1].replace("''", "'"))
        if token.type is TokenType.OPERATOR and token.text == "-":
            self._advance()
            self._depth += 1
            try:
                inner = self._parse_factor()
            finally:
                self._depth -= 1
            return BinaryExpression(operator="-", left=NumberLiteral(0.0), right=inner)
        if token.type is TokenType.IDENTIFIER:
            return self._parse_column_reference()
        raise SqlSyntaxError(
            f"unexpected token {token.text!r} at position {token.position}")


def parse_sql(sql: str) -> SelectQuery:
    """Parse a SELECT statement of the supported subset into its AST."""
    return _Parser(tokenize(sql)).parse()
