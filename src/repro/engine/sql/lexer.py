"""Tokenizer for the SQL subset."""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Iterator


class SqlSyntaxError(ValueError):
    """Raised for malformed SQL text."""


class TokenType(enum.Enum):
    """Lexical categories of the SQL subset."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    END = "end"


KEYWORDS = frozenset({
    "SELECT", "FROM", "WHERE", "AND", "LIMIT", "AS", "DISTINCT",
    # Mutation statements (the live data plane).
    "INSERT", "INTO", "VALUES", "DELETE", "UPDATE", "SET", "NULL",
})

_TOKEN_PATTERN = re.compile(
    r"""
    (?P<space>\s+)
  | (?P<number>\d+(\.\d+)?([eE][+-]?\d+)?)
  | (?P<identifier>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<string>'(?:[^']|'')*')
  | (?P<operator><=|>=|<>|!=|=|<|>|\+|-|\*|/)
  | (?P<punctuation>[(),.;])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """One lexical token with its position (for error messages)."""

    type: TokenType
    text: str
    position: int

    def matches(self, token_type: TokenType, text: str | None = None) -> bool:
        if self.type is not token_type:
            return False
        if text is None:
            return True
        if token_type is TokenType.KEYWORD:
            return self.text.upper() == text.upper()
        return self.text == text


def tokenize(sql: str) -> list[Token]:
    """Tokenize SQL text; raises :class:`SqlSyntaxError` on unexpected characters."""
    tokens: list[Token] = []
    position = 0
    length = len(sql)
    while position < length:
        match = _TOKEN_PATTERN.match(sql, position)
        if match is None:
            raise SqlSyntaxError(
                f"unexpected character {sql[position]!r} at position {position}")
        position = match.end()
        if match.lastgroup == "space":
            continue
        text = match.group()
        if match.lastgroup == "number":
            tokens.append(Token(TokenType.NUMBER, text, match.start()))
        elif match.lastgroup == "identifier":
            token_type = TokenType.KEYWORD if text.upper() in KEYWORDS else TokenType.IDENTIFIER
            tokens.append(Token(token_type, text, match.start()))
        elif match.lastgroup == "string":
            tokens.append(Token(TokenType.STRING, text, match.start()))
        elif match.lastgroup == "operator":
            tokens.append(Token(TokenType.OPERATOR, text, match.start()))
        else:
            tokens.append(Token(TokenType.PUNCTUATION, text, match.start()))
    tokens.append(Token(TokenType.END, "", length))
    return tokens


def iter_tokens(sql: str) -> Iterator[Token]:
    """Iterator variant of :func:`tokenize`."""
    return iter(tokenize(sql))
