"""Vectorized candidate enumeration over columnar databases.

This is the ``backend="columnar"`` hot path of
:func:`repro.engine.candidates.enumerate_candidates`.  It computes *exactly*
the same candidates, in the same order, with the same lineage formulas as
the row-at-a-time reference path (the differential harness in
``tests/test_columnar_differential.py`` holds it to that), but does the
data-heavy work on whole columns:

* **selection pushdown** classifies every row of a table against its
  single-table conditions in one NumPy pass.  Rows whose conditions are
  certainly false disappear before any join work; rows whose conditions are
  decided true carry nothing; only rows whose truth depends on numerical
  nulls fall back to the symbolic per-row compiler, producing the identical
  residual formulas the reference path would attach;
* **hash joins** on base equi-join predicates are a sort + ``searchsorted``
  group lookup over interned code arrays: the build side is sorted once
  (stably, so bucket order matches the reference path's insertion-ordered
  buckets), probe keys locate their group boundaries in ``O(log n)`` and
  matching pairs are materialised with ``repeat``/``arange`` arithmetic --
  no per-pair Python;
* **predicate pruning** over the joined pairs reuses the same tri-state
  classification, so certainly-false pairs never materialise anything and
  symbolic atoms are only built for the pairs that survive.

Exactness of the decided/true/false split is the delicate part: the
reference path decides a concrete numerical comparison by *symbolically*
normalising ``left op right`` into polynomial constraints
(:func:`repro.constraints.translate._comparison_formula`) and constant-
folding.  Because clearing denominators multiplies values around, the
result can differ from a naive float comparison (``a/b <= c`` is not always
``a <= c*b`` in floating point).  The vectorized evaluator therefore
mirrors the symbolic pipeline operation for operation -- the rational-term
recurrences, the ``COEFFICIENT_EPS`` coefficient drop after every ring
operation, the sign case-split on the denominator, and the
``EVALUATION_EPS`` tolerance of the final constant fold -- so its decisions
are bit-for-bit those of the reference path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.constraints.atoms import EVALUATION_EPS
from repro.constraints.formula import (
    And,
    ConstraintFormula,
    FalseFormula,
    TrueFormula,
)
from repro.constraints.polynomials import COEFFICIENT_EPS
from repro.engine.sql.ast import (
    BinaryExpression,
    ColumnExpression,
    Condition,
    Expression,
    NumberLiteral,
    SelectQuery,
    StringLiteral,
)
from repro.engine.translate_sql import SqlTranslationError
from repro.relational.columnar import BaseColumnData, ColumnarRelation, NumericColumnData
from repro.relational.database import Database

_EMPTY_RESIDUAL: tuple = ()
_TRUE = TrueFormula()

#: Largest per-step pair count the engine will materialise eagerly.  The
#: reference recursion streams pairs one at a time and can therefore
#: early-exit on LIMIT/max_witnesses, while this engine builds whole index
#: arrays; an unselective step (a cross join, or an equi-join whose match
#: count dwarfs the witness cap) would allocate them far past any useful
#: size.  Beyond this bound the engine hands the query to the row oracle,
#: trading the vectorized speedup for the oracle's early-exit behaviour --
#: results are identical either way.
_MAX_FRONTIER_PAIRS = 4_000_000


class _FrontierOverflow(Exception):
    """A join step would materialise more pairs than the eager bound."""


def _clamp(values):
    """Mirror ``Polynomial.__post_init__``: drop near-zero coefficients to 0.

    Every ring operation on constant polynomials re-normalises its
    coefficient through this filter; applying it after every array
    operation keeps the vectorized arithmetic bit-identical to the symbolic
    constant folding.
    """
    return np.where(np.abs(values) > COEFFICIENT_EPS, values, 0.0)


class _Frame:
    """The current join frontier: per-binding original row indices."""

    def __init__(self) -> None:
        self.rows: dict[str, np.ndarray] = {}

    def gather(self, binding: str) -> np.ndarray:
        return self.rows[binding]


class _RationalArrays:
    """A batch of rational terms ``numerator / denominator`` plus null tracking."""

    __slots__ = ("numerator", "denominator", "null_mask")

    def __init__(self, numerator, denominator, null_mask) -> None:
        self.numerator = numerator
        self.denominator = denominator
        self.null_mask = null_mask


class _Unvectorizable(Exception):
    """Condition shape the vectorized evaluator does not cover.

    Falling back to the per-row symbolic compiler is always sound: it *is*
    the reference implementation.  This includes malformed conditions -- the
    fallback raises the identical user-facing error the row path would.
    """


class _VectorizedEvaluator:
    """Tri-state vectorized condition evaluation over a columnar frontier."""

    def __init__(self, database: Database, compiler) -> None:
        self._database = database
        self._compiler = compiler
        self._relations: dict[str, ColumnarRelation] = {}
        for reference in compiler._select.tables:
            relation = database.relation(reference.table)
            assert isinstance(relation, ColumnarRelation)
            self._relations[reference.binding] = relation

    def relation_of(self, binding: str) -> ColumnarRelation:
        return self._relations[binding]

    # -- classification ----------------------------------------------------

    def classify(self, condition: Condition, frame: _Frame,
                 count: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(decided, truth)`` boolean arrays of length ``count``.

        ``decided[i]`` means the condition's truth under row ``i`` is a
        constant (no numerical null involved, or the symbolic form would
        constant-fold anyway); undecided rows must go through the per-row
        symbolic fallback.  For decided rows, ``truth[i]`` is exactly the
        ``TrueFormula``/``FalseFormula`` the reference path would produce.
        """
        try:
            return self._classify(condition, frame, count)
        except _Unvectorizable:
            return (np.zeros(count, dtype=bool), np.zeros(count, dtype=bool))

    def _classify(self, condition: Condition, frame: _Frame,
                  count: int) -> tuple[np.ndarray, np.ndarray]:
        compiler = self._compiler
        operator = condition.operator
        left_is_base = compiler._is_base_expression(condition.left)
        right_is_base = compiler._is_base_expression(condition.right)
        if left_is_base or right_is_base:
            return self._classify_base(condition, frame, count)
        if operator not in ("=", "<>", "!=", "<", "<=", ">", ">="):
            raise _Unvectorizable  # the fallback raises the reference error
        with np.errstate(all="ignore"):
            left = self._rational(condition.left, frame, count)
            right = self._rational(condition.right, frame, count)
            # difference = left - right, mirroring RationalTerm.__sub__.
            p = _clamp(_clamp(left.numerator * right.denominator)
                       - _clamp(right.numerator * left.denominator))
            q = _clamp(left.denominator * right.denominator)
            decided = ~(left.null_mask | right.null_mask)
            # Sign case split on the (constant) denominator: q == 0 is false,
            # q < 0 flips the operator, which equals comparing -p instead.
            adjusted = np.where(q > 0, p, -p)
            truth = _holds(operator, adjusted, EVALUATION_EPS) & (q != 0.0)
        return decided, truth & decided

    def _classify_base(self, condition: Condition, frame: _Frame,
                       count: int) -> tuple[np.ndarray, np.ndarray]:
        if condition.operator not in ("=", "<>", "!="):
            # Mirrors the reference path's error for base-typed order
            # comparisons; the caller only classifies when rows survive, the
            # same circumstance under which the row path raises.
            raise SqlTranslationError(
                f"order comparison on base-typed values in {condition!r}")
        equal = self._base_equality(condition.left, condition.right, frame, count)
        truth = equal if condition.operator == "=" else ~equal
        return np.ones(count, dtype=bool), truth

    def _base_equality(self, left: Expression, right: Expression,
                       frame: _Frame, count: int) -> np.ndarray:
        left_kind, left_payload = self._base_side(left, frame)
        right_kind, right_payload = self._base_side(right, frame)
        if left_kind == "codes" and right_kind == "codes":
            left_codes, left_data = left_payload
            right_codes, right_data = right_payload
            # Remap the right dictionary into left codes; values absent from
            # the left dictionary can never be equal (sentinel -1 < any code).
            remap = np.empty(len(right_data.values), dtype=np.int64)
            for index, value in enumerate(right_data.values):
                remap[index] = left_data.code_of.get(value, -1)
            return left_codes == remap[right_codes]
        if left_kind == "codes":
            codes, data = left_payload
            constant = right_payload
        elif right_kind == "codes":
            codes, data = right_payload
            constant = left_payload
        else:
            return np.full(count, left_payload == right_payload, dtype=bool)
        try:
            code = data.code_of.get(constant, -1)
        except TypeError:
            code = -1
        return codes == code

    def _base_side(self, expression: Expression, frame: _Frame):
        """A base-comparison operand: interned codes or a Python constant."""
        if isinstance(expression, ColumnExpression):
            binding, column = self._compiler.resolve_binding(expression)
            data = self._relations[binding].column_data(column)
            if isinstance(data, BaseColumnData):
                codes = data.codes[frame.gather(binding)]
                return "codes", (codes, data)
            raise _Unvectorizable  # numeric column on the base path: fallback
        if isinstance(expression, NumberLiteral):
            return "constant", expression.value
        if isinstance(expression, StringLiteral):
            return "constant", expression.value
        # BinaryExpression on a base comparison: the reference path raises
        # "arithmetic expressions must be converted symbolically".
        raise _Unvectorizable

    def _rational(self, expression: Expression, frame: _Frame,
                  count: int) -> _RationalArrays:
        """Mirror ``_ConditionCompiler._expression_rational`` on arrays."""
        if isinstance(expression, ColumnExpression):
            binding, column = self._compiler.resolve_binding(expression)
            data = self._relations[binding].column_data(column)
            if not isinstance(data, NumericColumnData):
                raise _Unvectorizable  # base value in numeric context: fallback
            rows = frame.gather(binding)
            return _RationalArrays(
                numerator=_clamp(data.values[rows]),
                denominator=1.0,
                null_mask=data.null_codes[rows] >= 0,
            )
        if isinstance(expression, NumberLiteral):
            value = expression.value
            value = value if abs(value) > COEFFICIENT_EPS else 0.0
            return _RationalArrays(numerator=value, denominator=1.0,
                                   null_mask=np.zeros(count, dtype=bool))
        if isinstance(expression, BinaryExpression):
            left = self._rational(expression.left, frame, count)
            right = self._rational(expression.right, frame, count)
            nulls = left.null_mask | right.null_mask
            if expression.operator == "+":
                return _RationalArrays(
                    numerator=_clamp(_clamp(left.numerator * right.denominator)
                                     + _clamp(right.numerator * left.denominator)),
                    denominator=_clamp(left.denominator * right.denominator),
                    null_mask=nulls)
            if expression.operator == "-":
                return _RationalArrays(
                    numerator=_clamp(_clamp(left.numerator * right.denominator)
                                     - _clamp(right.numerator * left.denominator)),
                    denominator=_clamp(left.denominator * right.denominator),
                    null_mask=nulls)
            if expression.operator == "*":
                return _RationalArrays(
                    numerator=_clamp(left.numerator * right.numerator),
                    denominator=_clamp(left.denominator * right.denominator),
                    null_mask=nulls)
            if expression.operator == "/":
                return _RationalArrays(
                    numerator=_clamp(left.numerator * right.denominator),
                    denominator=_clamp(left.denominator * right.numerator),
                    null_mask=nulls)
            raise _Unvectorizable
        raise _Unvectorizable  # StringLiteral etc.: reference error via fallback


def _holds(operator: str, values: np.ndarray, tolerance: float) -> np.ndarray:
    """Vectorized ``Comparison.holds`` for a batch of constant-fold values."""
    if operator == "<":
        return values < -tolerance
    if operator == "<=":
        return values <= tolerance
    if operator == "=":
        return np.abs(values) <= tolerance
    if operator in ("<>", "!="):
        return np.abs(values) > tolerance
    if operator == ">=":
        return values >= -tolerance
    return values > tolerance


def _apply_conditions(conditions: Sequence[Condition], evaluator, compiler,
                      frame_rows: dict[str, np.ndarray],
                      residual_slots: Optional[list],
                      condition_bindings) -> np.ndarray:
    """Classify+fallback one condition list over a frontier; returns keep mask.

    ``frame_rows`` maps bindings to original-row index arrays, all of one
    length.  ``residual_slots`` (when given) is a Python list of per-row
    residual tuples that unknown-but-alive rows append their symbolic
    formulas to, preserving the reference path's per-condition order.
    Conditions are evaluated in order over the still-alive subset only, so
    structural errors surface under exactly the circumstances the row-at-a-
    time loop would raise them.
    """
    from repro.engine.candidates import _Row

    lengths = {len(rows) for rows in frame_rows.values()}
    count = lengths.pop() if lengths else 0
    alive = np.ones(count, dtype=bool)
    scratch = _Row()
    for condition in conditions:
        if not alive.any():
            break
        frame = _Frame()
        frame.rows = frame_rows
        decided, truth = evaluator.classify(condition, frame, count)
        alive &= ~(decided & ~truth)
        pending = np.flatnonzero(alive & ~decided)
        if len(pending) == 0:
            continue
        involved = tuple(condition_bindings(condition))
        relations = {binding: evaluator.relation_of(binding)
                     for binding in involved}
        for position in pending.tolist():
            scratch.tuples = {
                binding: relations[binding].row(int(frame_rows[binding][position]))
                for binding in involved}
            formula = compiler.condition_formula(condition, scratch).simplify()
            if isinstance(formula, FalseFormula):
                alive[position] = False
            elif not isinstance(formula, TrueFormula):
                if residual_slots is not None:
                    residuals = residual_slots[position]
                    residual_slots[position] = residuals + (formula,)
    return alive


def enumerate_candidates_columnar(select: SelectQuery, database: Database,
                                  limit: Optional[int],
                                  max_witnesses: int,
                                  group_witnesses: bool,
                                  shards: int = 1,
                                  jobs: int = 1,
                                  shard_stats: Optional[dict] = None,
                                  frontier_cache: Optional["FrontierCache"] = None) -> list:
    """Columnar twin of the row-at-a-time ``enumerate_candidates`` body.

    With ``shards > 1`` the engine first tries key-aligned sharded
    execution (:func:`enumerate_candidates_sharded`); queries without a
    shardable plan, and ``shards=1``, run the single-frontier eager path.
    Falls back to the row oracle when a join step would materialise more
    than :data:`_MAX_FRONTIER_PAIRS` pairs at once (see there); every path
    returns identical candidates, so fallbacks only change the cost
    profile, never the answer.
    """
    from repro.engine.candidates import enumerate_candidates

    try:
        if shards > 1:
            sharded = enumerate_candidates_sharded(
                select, database, limit=limit, max_witnesses=max_witnesses,
                group_witnesses=group_witnesses, shards=shards, jobs=jobs,
                shard_stats=shard_stats)
            if sharded is not None:
                return sharded
        return _enumerate_eager(select, database, limit, max_witnesses,
                                group_witnesses,
                                frontier_cache=frontier_cache)
    except _FrontierOverflow:
        return enumerate_candidates(select, database, limit=limit,
                                    max_witnesses=max_witnesses,
                                    group_witnesses=group_witnesses,
                                    backend="rows")


def _projection_of(select: SelectQuery, database: Database, compiler) -> list:
    if select.select_star:
        return [(reference.binding, attribute.name)
                for reference in select.tables
                for attribute in database.relation_schema(reference.table).attributes]
    return [compiler.resolve_binding(column) for column in select.select]


def _enumerate_eager(select: SelectQuery, database: Database,
                     limit: Optional[int],
                     max_witnesses: int,
                     group_witnesses: bool,
                     frontier_cache: Optional["FrontierCache"] = None) -> list:
    frontier = pending = None
    if frontier_cache is not None:
        entry = frontier_cache.lookup(select, database)
        if entry is not None:
            frontier, pending = _maintain_frontier(select, database, entry)
    if frontier is None:
        frontier, pending = _compute_frontier(select, database)
    if frontier_cache is not None:
        frontier_cache.store(select, database, frontier, pending)
    return _assemble_candidates(select, database, frontier, pending,
                                limit, max_witnesses, group_witnesses)


def _compute_frontier(select: SelectQuery,
                      database: Database,
                      row_ranges: Optional[dict] = None
                      ) -> tuple[dict, Optional[list]]:
    """Run pushdown + the join loop; returns the full-query frontier.

    The frontier maps each binding to an array of row indices into its
    relation (one entry per surviving witness, reference DFS order) plus a
    parallel ``pending`` list of residual-formula tuples (``None`` when no
    witness carries residuals).  Everything after this point -- projection,
    witness grouping, lineage assembly -- is data-independent of how the
    frontier was computed, which is what lets sharded execution reuse it.

    ``row_ranges`` optionally restricts a binding's rows to a half-open
    ``(lo, hi)`` index range before pushdown.  Restriction commutes with
    every per-row operation (classification, residual attachment, joins),
    so the restricted frontier equals the full frontier filtered to rows
    in range -- the property the delta-join maintenance is built on.
    """
    from repro.engine.candidates import (
        _ConditionCompiler,
        _hash_join_key,
        _local_conditions,
        _order_conditions,
    )

    compiler = _ConditionCompiler(database, select)
    evaluator = _VectorizedEvaluator(database, compiler)
    local_conditions = _local_conditions(select, compiler)
    steps = _order_conditions(select, compiler)

    bindings = [reference.binding for reference in select.tables]

    # -- per-table selection pushdown (lazy, in join order) ------------------
    filtered_rows: list[Optional[np.ndarray]] = [None] * len(bindings)
    filtered_residuals: list[Optional[list]] = [None] * len(bindings)

    def prefilter(step: int) -> np.ndarray:
        if filtered_rows[step] is None:
            binding = bindings[step]
            relation = evaluator.relation_of(binding)
            if row_ranges is not None and binding in row_ranges:
                low, high = row_ranges[binding]
            else:
                low, high = 0, len(relation)
            rows = np.arange(low, high, dtype=np.int64)
            residual_slots = [_EMPTY_RESIDUAL] * len(rows)
            alive = _apply_conditions(
                local_conditions[step], evaluator, compiler, {binding: rows},
                residual_slots, compiler.condition_bindings)
            positions = np.flatnonzero(alive)
            filtered_rows[step] = rows[positions]
            if any(residual_slots[index] for index in positions.tolist()):
                filtered_residuals[step] = [residual_slots[index]
                                            for index in positions.tolist()]
            else:
                filtered_residuals[step] = None
        return filtered_rows[step]

    # -- join loop -----------------------------------------------------------
    # The frontier after step k: one original-row index array per bound
    # binding, plus a parallel list of pending residual-formula tuples.
    frontier: dict[str, np.ndarray] = {}
    pending: Optional[list] = None

    def attach_residuals(step: int, positions: np.ndarray) -> None:
        nonlocal pending
        residuals = filtered_residuals[step]
        if residuals is None:
            return
        if pending is None:
            pending = [_EMPTY_RESIDUAL] * len(positions)
        for index, position in enumerate(positions.tolist()):
            extra = residuals[position]
            if extra:
                pending[index] = pending[index] + extra

    for step, binding in enumerate(bindings):
        keep = prefilter(step)
        if step == 0:
            positions = np.arange(len(keep), dtype=np.int64)
            frontier = {binding: keep}
            pending = None
            attach_residuals(0, positions)
        else:
            frontier_size = len(next(iter(frontier.values())))
            join_spec = None
            join_condition = None
            bound = set(bindings[:step])
            for condition in steps[step]:
                join_spec = _hash_join_key(condition, compiler, binding, bound)
                if join_spec is not None:
                    join_condition = condition
                    break
            if join_spec is not None:
                probe, build = join_spec
                probe_data = evaluator.relation_of(probe[0]).column_data(probe[1])
                build_data = evaluator.relation_of(binding).column_data(build[1])
                probe_codes = probe_data.codes[frontier[probe[0]]]
                remap = np.empty(len(probe_data.values), dtype=np.int64)
                for index, value in enumerate(probe_data.values):
                    remap[index] = build_data.code_of.get(value, -1)
                probe_keys = remap[probe_codes]
                build_codes = build_data.codes[keep]
                order = np.argsort(build_codes, kind="stable")
                sorted_codes = build_codes[order]
                starts = np.searchsorted(sorted_codes, probe_keys, side="left")
                ends = np.searchsorted(sorted_codes, probe_keys, side="right")
                counts = ends - starts
                total = int(counts.sum())
                if total > _MAX_FRONTIER_PAIRS:
                    raise _FrontierOverflow
                probe_idx = np.repeat(np.arange(frontier_size, dtype=np.int64), counts)
                offsets = np.concatenate(
                    ([0], np.cumsum(counts)[:-1])).astype(np.int64)
                within = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
                build_positions = order[np.repeat(starts, counts) + within]
            else:
                build_count = len(keep)
                if frontier_size * build_count > _MAX_FRONTIER_PAIRS:
                    raise _FrontierOverflow
                probe_idx = np.repeat(np.arange(frontier_size, dtype=np.int64),
                                      build_count)
                build_positions = np.tile(np.arange(build_count, dtype=np.int64),
                                          frontier_size)
            frontier = {bound_binding: rows[probe_idx]
                        for bound_binding, rows in frontier.items()}
            frontier[binding] = keep[build_positions]
            if pending is not None:
                pending = [pending[index] for index in probe_idx.tolist()]
            attach_residuals(step, build_positions)
        # Remaining step conditions (the chosen equi-join predicate is true
        # by construction for every produced pair, exactly as the reference
        # path re-derives when it re-checks it).
        if step == 0:
            remaining = list(steps[step])
        else:
            remaining = [condition for condition in steps[step]
                         if condition is not join_condition]
        if remaining:
            count = len(next(iter(frontier.values())))
            residual_slots = pending if pending is not None \
                else [_EMPTY_RESIDUAL] * count
            alive = _apply_conditions(remaining, evaluator, compiler, frontier,
                                      residual_slots, compiler.condition_bindings)
            if not alive.all():
                keep_mask = np.flatnonzero(alive)
                frontier = {bound_binding: rows[keep_mask]
                            for bound_binding, rows in frontier.items()}
                residual_slots = [residual_slots[index]
                                  for index in keep_mask.tolist()]
            pending = residual_slots if any(residual_slots) else None
        if len(next(iter(frontier.values()))) == 0:
            frontier = {b: np.empty(0, dtype=np.int64) for b in bindings}
            pending = None
            break

    return frontier, pending


# -- incremental frontier maintenance ----------------------------------------
#
# The MVCC commit path (:mod:`repro.relational.mutation`) keeps row indices
# of surviving rows stable across *append-only* versions: untouched tables
# share their relation objects outright, appended tables keep every old row
# at its old index and add a tail segment.  A join frontier computed at
# version ``V`` is therefore still a correct *subset* of the frontier at a
# later append-only version ``V'`` -- what is missing are exactly the
# witnesses that use at least one appended row.  Writing the new frontier as
# a telescoping difference over the bindings ``b_0 .. b_{k-1}``::
#
#     F(m) - F(n) = sum_t  [b_0..b_{t-1} full] x [b_t new] x [b_{t+1}.. old]
#
# each term is an ordinary frontier computation with per-binding row ranges
# (binding ``t`` restricted to its appended rows ``[n_t, m_t)``, later
# bindings to their old prefix ``[0, n_i)``), the terms are pairwise
# disjoint and disjoint from the old frontier, and the DFS witness order is
# lexicographic over per-binding row indices -- so one ``np.lexsort`` merge
# restores exactly the order a from-scratch enumeration would produce.


@dataclass(frozen=True)
class _FrontierEntry:
    """One cached frontier: the snapshot coordinates it was computed at."""

    version_token: object
    data_version: int
    #: Per-binding relation length at compute time (the ``n_t`` above).
    lengths: dict
    frontier: dict
    pending: Optional[list]


class FrontierCache:
    """A small per-service cache of join frontiers, maintained under appends.

    Keyed by the select AST (frozen dataclasses, hashable): the same query
    shape re-run after an append-only mutation reuses its old frontier and
    delta-joins only the appended rows.  An entry is *eligible* for a
    database snapshot when

    * the snapshot belongs to the same version chain (``version_token``
      identity -- a rebuilt or converted database never matches),
    * no queried table saw a non-append mutation since the entry's version
      (``table_epoch`` at or below it), and
    * no queried table shrank (lengths monotone).

    Deletes bump the table's epoch, so eligibility degrades exactly to the
    cases where old row indices are still valid.  Used by the unsharded
    eager path only; sharded execution has its own partition-cache
    carryover.
    """

    def __init__(self, capacity: int = 8) -> None:
        import threading

        from repro.caching import LruCache

        self._cache = LruCache(capacity, name="frontier")
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def stats(self):
        # An entry present but ineligible (epoch advanced, chain diverged)
        # is a miss to the caller, so report eligibility-aware counters
        # rather than the raw LruCache presence counters.
        from dataclasses import replace

        with self._lock:
            hits, misses = self._hits, self._misses
        return replace(self._cache.stats(), hits=hits, misses=misses)

    def clear(self) -> None:
        self._cache.clear()

    def lookup(self, select: SelectQuery,
               database: Database) -> Optional[_FrontierEntry]:
        """The entry for ``select`` if it is eligible for ``database``."""
        entry = self._cache.peek(select)
        eligible = (entry is not None
                    and entry.version_token is database.version_token)
        if eligible:
            for reference in select.tables:
                if database.table_epoch(reference.table) > entry.data_version:
                    eligible = False
                    break
                relation = database.relation(reference.table)
                if len(relation) < entry.lengths[reference.binding]:
                    eligible = False
                    break
        with self._lock:
            if eligible:
                self._hits += 1
            else:
                self._misses += 1
        if not eligible:
            return None
        self._cache.get(select)  # refresh recency; stats() overrides counters
        return entry

    def store(self, select: SelectQuery, database: Database,
              frontier: dict, pending: Optional[list]) -> None:
        lengths = {reference.binding: len(database.relation(reference.table))
                   for reference in select.tables}
        self._cache.put(select, _FrontierEntry(
            version_token=database.version_token,
            data_version=database.data_version,
            lengths=lengths,
            frontier=frontier,
            pending=pending,
        ))


def _maintain_frontier(select: SelectQuery, database: Database,
                       entry: _FrontierEntry) -> tuple[dict, Optional[list]]:
    """The current snapshot's frontier, derived from a cached one.

    Computes the telescoped delta terms for every binding whose table grew
    and merges them with the cached frontier back into DFS order.  May
    raise :class:`_FrontierOverflow`: a delta term's pairs are a subset of
    the full join's, so an overflowing delta implies the full computation
    would overflow too -- the query falls to the row oracle either way.
    """
    bindings = [reference.binding for reference in select.tables]
    binding_table = {reference.binding: reference.table
                     for reference in select.tables}
    new_lengths = {binding: len(database.relation(binding_table[binding]))
                   for binding in bindings}
    if new_lengths == entry.lengths:
        return entry.frontier, entry.pending

    segments: list[tuple[dict, Optional[list]]] = [
        (entry.frontier, entry.pending)]
    for position, binding in enumerate(bindings):
        old_length = entry.lengths[binding]
        new_length = new_lengths[binding]
        if new_length <= old_length:
            continue
        # Bindings before ``position`` run at full (new) length -- the
        # default range -- so only this binding and the later ones need
        # explicit restrictions.
        ranges = {binding: (old_length, new_length)}
        for later in bindings[position + 1:]:
            ranges[later] = (0, entry.lengths[later])
        term_frontier, term_pending = _compute_frontier(
            select, database, row_ranges=ranges)
        if len(term_frontier[bindings[0]]) == 0:
            continue
        segments.append((term_frontier, term_pending))

    if len(segments) == 1:
        return entry.frontier, entry.pending

    merged = {binding: np.concatenate([segment[0][binding]
                                       for segment in segments])
              for binding in bindings}
    # The DFS witness order is lexicographic over per-binding row indices
    # in binding order; ``np.lexsort`` treats its *last* key as primary.
    order = np.lexsort(tuple(merged[binding]
                             for binding in reversed(bindings)))
    merged = {binding: rows[order] for binding, rows in merged.items()}
    if any(segment[1] is not None for segment in segments):
        flat: list = []
        for segment_frontier, segment_pending in segments:
            count = len(segment_frontier[bindings[0]])
            if segment_pending is None:
                flat.extend([_EMPTY_RESIDUAL] * count)
            else:
                flat.extend(segment_pending)
        merged_pending: Optional[list] = [flat[index]
                                          for index in order.tolist()]
    else:
        merged_pending = None
    return merged, merged_pending


def _assemble_candidates(select: SelectQuery, database: Database,
                         frontier: dict, pending: Optional[list],
                         limit: Optional[int], max_witnesses: int,
                         group_witnesses: bool) -> list:
    """Project, group and build candidates from a computed frontier.

    Shared terminal stage of the eager and sharded paths; it mirrors the
    reference recursion's terminal block exactly, including LIMIT and
    ``max_witnesses`` truncation (both paths materialise the frontier
    first, so truncation is a pure prefix of the merged witness order).
    """
    from repro.engine.candidates import _ConditionCompiler, _build_candidates

    compiler = _ConditionCompiler(database, select)
    evaluator = _VectorizedEvaluator(database, compiler)
    projection = _projection_of(select, database, compiler)
    columns = tuple(f"{binding}.{column}" for binding, column in projection)
    bindings = [reference.binding for reference in select.tables]
    effective_limit = limit if limit is not None else select.limit

    witness_count = len(frontier[bindings[0]]) if frontier else 0

    # -- batch output assembly ----------------------------------------------
    if witness_count:
        projected = [
            evaluator.relation_of(binding).column_objects(column)[frontier[binding]]
            for binding, column in projection]
        outputs = list(zip(*projected)) if projected else [()] * witness_count
    else:
        outputs = []

    # -- witness grouping, mirroring the recursion's terminal block ----------
    order_keys: list = []
    witness_formulae: dict = {}
    witness_counts: dict = {}
    row_values: dict = {}
    witnesses_seen = 0
    for position in range(witness_count):
        if witnesses_seen >= max_witnesses:
            break
        witnesses_seen += 1
        output = outputs[position]
        residuals = pending[position] if pending is not None else _EMPTY_RESIDUAL
        if group_witnesses:
            key = output
            if key not in witness_formulae:
                if effective_limit is not None and len(order_keys) >= effective_limit:
                    continue
                order_keys.append(key)
                witness_formulae[key] = []
                witness_counts[key] = 0
                row_values[key] = output
        else:
            if effective_limit is not None and len(order_keys) >= effective_limit:
                break
            key = len(order_keys)
            order_keys.append(key)
            witness_formulae[key] = []
            witness_counts[key] = 0
            row_values[key] = output
        # Exactly ``conjunction(residuals)``, with the empty case interned.
        if not residuals:
            witness_formulae[key].append(_TRUE)
        elif len(residuals) == 1:
            witness_formulae[key].append(residuals[0])
        else:
            witness_formulae[key].append(And(residuals))
        witness_counts[key] += 1

    return _build_candidates(order_keys, witness_formulae, witness_counts,
                             row_values, columns, database)


# -- sharded execution -------------------------------------------------------
#
# Process-parallel candidate enumeration: the database is hash-partitioned
# into K key-aligned shards (:mod:`repro.relational.sharding`), each shard's
# frontier is computed independently -- in-process for ``jobs<=1``, across a
# ``ProcessPoolExecutor`` otherwise, with column arrays shipped through
# shared memory -- and the per-shard frontiers are merged back into the
# exact reference DFS witness order before the shared assembly stage runs.
# The unsharded paths above stay verbatim as the oracle the differential
# harness compares against.


def _shard_plan(select: SelectQuery, compiler) -> Optional[dict[str, Optional[str]]]:
    """The key column each binding is partitioned on, or ``None``.

    A query is shardable when every join step has a base equi-join predicate
    (the same one the eager path would hash-join on) *and* the whole join
    stays inside one key equivalence class: the probe column of every chosen
    join must be the very column its binding is already partitioned on.
    Chains that hop columns (``T0.a = T1.a AND T1.b = T2.b``) would let a
    witness span shards, so they fall back to unsharded execution, as does
    any step without an equi-join (cross joins, pure theta joins).
    Single-table scans shard round-robin (key ``None``).
    """
    from repro.engine.candidates import _hash_join_key, _order_conditions

    bindings = [reference.binding for reference in select.tables]
    if len(bindings) == 1:
        return {bindings[0]: None}
    steps = _order_conditions(select, compiler)
    keys: dict[str, Optional[str]] = {}
    for step, binding in enumerate(bindings):
        if step == 0:
            continue
        bound = set(bindings[:step])
        join_spec = None
        for condition in steps[step]:
            join_spec = _hash_join_key(condition, compiler, binding, bound)
            if join_spec is not None:
                break
        if join_spec is None:
            return None
        probe, build = join_spec
        assigned = keys.get(probe[0])
        if assigned is None:
            keys[probe[0]] = probe[1]
        elif assigned != probe[1]:
            return None
        keys[binding] = build[1]
    return keys


def _shard_database(schema, relations: dict[str, ColumnarRelation]) -> Database:
    """A columnar database holding one shard of each queried table."""
    database = Database(schema, backend="columnar")
    for name, relation in relations.items():
        database.install_relation(relation)
    return database


def _shard_frontier_task(payload) -> tuple[dict, Optional[list]]:
    """Worker-side shard frontier: attach shared columns, join, detach.

    Runs in a pool process (or inline, for the ``jobs<=1`` path through
    :func:`repro.service.executor.process_map`).  The returned index arrays
    are fresh allocations -- every frontier array comes out of
    ``flatnonzero``/``repeat``/fancy indexing -- so closing the shared
    blocks before returning is safe.
    """
    from repro.relational.sharding import attach_shard

    select, schema, table_payloads = payload
    handles: list = []
    relations: dict[str, ColumnarRelation] = {}
    try:
        for table, shard_payload in table_payloads.items():
            relation, keepalive = attach_shard(shard_payload)
            relations[table] = relation
            handles.extend(keepalive)
        database = _shard_database(schema, relations)
        return _compute_frontier(select, database)
    finally:
        for handle in handles:
            try:
                handle.close()
            except OSError:  # pragma: no cover - platform specific
                pass


def enumerate_candidates_sharded(select: SelectQuery, database: Database,
                                 limit: Optional[int],
                                 max_witnesses: int,
                                 group_witnesses: bool,
                                 shards: int,
                                 jobs: int = 1,
                                 shard_stats: Optional[dict] = None) -> Optional[list]:
    """Sharded twin of the eager columnar path; ``None`` if not shardable.

    Partition (cached per database snapshot) -> per-shard frontier
    (embarrassingly parallel; equi-joins never cross key-aligned shards) ->
    stable merge on the outer table's global row index -> the shared
    assembly stage against the *full* database.  Bit-identical to the
    unsharded engines: same candidates, same order, same witness counts,
    same lineage formulas.

    ``shard_stats``, when given, is filled with per-shard accounting
    (``tasks``/``rows``/``witnesses`` per shard index, partition cache
    hits/misses) that the service surfaces in its ``\\stats`` report.
    """
    from repro.engine.candidates import _ConditionCompiler
    from repro.relational.sharding import export_shard, merge_order, release_payload
    from repro.service.executor import process_map

    compiler = _ConditionCompiler(database, select)
    plan = _shard_plan(select, compiler)
    if plan is None:
        return None
    bindings = [reference.binding for reference in select.tables]
    binding_table = {reference.binding: reference.table
                     for reference in select.tables}

    # One partition per table: a table queried under two bindings must agree
    # on its key column, otherwise its rows would need two different
    # placements at once -- not shardable.
    keys_by_table: dict[str, Optional[str]] = {}
    for binding, key in plan.items():
        table = binding_table[binding]
        if table in keys_by_table and keys_by_table[table] != key:
            return None
        keys_by_table[table] = key

    shard_sets = {}
    partition_hits = partition_misses = 0
    for table, key in keys_by_table.items():
        shard_list, hit = database.table_shards(table, key, shards)
        shard_sets[table] = shard_list
        if hit:
            partition_hits += 1
        else:
            partition_misses += 1

    tables = sorted(keys_by_table)
    if jobs > 1 and shards > 1:
        payloads = []
        exported_blocks: list = []
        try:
            for shard in range(shards):
                table_payloads = {}
                for table in tables:
                    shard_payload, blocks = export_shard(
                        shard_sets[table][shard].relation)
                    exported_blocks.extend(blocks)
                    table_payloads[table] = shard_payload
                payloads.append((select, database.schema, table_payloads))
            results = process_map(_shard_frontier_task, payloads, jobs=jobs)
        finally:
            release_payload(exported_blocks)
    else:
        results = []
        for shard in range(shards):
            relations = {table: shard_sets[table][shard].relation
                         for table in tables}
            results.append(_compute_frontier(
                select, _shard_database(database.schema, relations)))

    # -- merge: map shard-local rows to global rows, restore DFS order ------
    outer = bindings[0]
    outer_table = binding_table[outer]
    per_shard_outer = [
        shard_sets[outer_table][shard].offsets[results[shard][0][outer]]
        for shard in range(shards)]
    order = merge_order(per_shard_outer)
    merged_frontier = {}
    for binding in bindings:
        offsets_of = shard_sets[binding_table[binding]]
        merged_frontier[binding] = np.concatenate(
            [offsets_of[shard].offsets[results[shard][0][binding]]
             for shard in range(shards)])[order]

    if any(results[shard][1] is not None for shard in range(shards)):
        flat: list = []
        for shard in range(shards):
            pending = results[shard][1]
            if pending is None:
                flat.extend([_EMPTY_RESIDUAL] * len(per_shard_outer[shard]))
            else:
                flat.extend(pending)
        merged_pending: Optional[list] = [flat[index] for index in order.tolist()]
    else:
        merged_pending = None

    if shard_stats is not None:
        shard_stats["sharded"] = True
        shard_stats["shards"] = shards
        shard_stats["partition_hits"] = partition_hits
        shard_stats["partition_misses"] = partition_misses
        shard_stats["per_shard"] = [
            {"shard": shard,
             "tasks": 1,
             "rows": int(sum(len(shard_sets[table][shard])
                             for table in tables)),
             "witnesses": int(len(per_shard_outer[shard]))}
            for shard in range(shards)]

    return _assemble_candidates(select, database, merged_frontier,
                                merged_pending, limit, max_witnesses,
                                group_witnesses)
