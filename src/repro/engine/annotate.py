"""The end-to-end pipeline: SQL text in, confidence-annotated answers out.

This is the library-level equivalent of the paper's experimental setup
(Section 9): evaluate a decision-support query over an incomplete database,
and attach to every returned tuple the measure of certainty that it is really
an answer, computed with the requested backend (by default the AFPRAS of
Section 8, the algorithm the paper benchmarks).

Since the service layer landed, these functions are thin wrappers over
:class:`repro.service.AnnotationService`: each call spins up an ephemeral
service around the database and runs one request through the full lifecycle
(parse/plan caches, canonical-lineage batch scheduling, ``SeedSequence``-
spawned per-task streams, optional adaptive refinement).  Long-lived callers
that want caching *across* calls should hold an ``AnnotationService`` of
their own; the wrappers keep the original one-shot API stable for tests,
benchmarks and examples.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.engine.candidates import CandidateAnswer, enumerate_candidates
from repro.engine.sql.ast import SelectQuery
from repro.engine.sql.parser import parse_sql
from repro.geometry.ball import RngLike
from repro.geometry.montecarlo import DEFAULT_DELTA
from repro.relational.database import Database
from repro.service import AnnotatedAnswer, AnnotationService

__all__ = ["AnnotatedAnswer", "annotate", "annotate_query"]


def _root_seed(rng: RngLike):
    """Fold the legacy ``rng`` argument into a service root seed.

    Seeds and ``None`` pass through; an existing generator contributes one
    draw, so repeated calls with the same generator state stay reproducible
    without the service sharing the caller's stream.
    """
    if isinstance(rng, np.random.Generator):
        return int(rng.integers(0, 2**63))
    return rng


def annotate_query(select: SelectQuery, database: Database,
                   epsilon: float = 0.05,
                   delta: float = DEFAULT_DELTA,
                   method: str = "afpras",
                   limit: Optional[int] = None,
                   rng: RngLike = None,
                   candidates: Optional[Sequence[CandidateAnswer]] = None,
                   reuse_lineage_results: bool = True,
                   jobs: int = 1,
                   adaptive: bool = False) -> list[AnnotatedAnswer]:
    """Annotate the candidate answers of a parsed SELECT query with confidences.

    ``candidates`` may be supplied to reuse a previous enumeration (the
    benchmarks do this to time the Monte-Carlo phase separately from the
    join, which is how the paper reports its numbers).

    Distinct output rows frequently share a lineage formula -- ungrouped
    (bag-semantics) runs emit one row per witness, and different tuples often
    hit the same constraint pattern even after renaming their nulls.  With
    ``reuse_lineage_results`` (default on) the service's batch scheduler
    computes each distinct *canonical* lineage once and reuses the result,
    which on top of the compiled-kernel cache makes repeated lineages nearly
    free.  Disable it to force an independent Monte-Carlo run per row.

    ``jobs`` spreads the per-lineage estimates over that many worker
    threads; results are bit-identical to the serial run at a fixed seed.
    ``adaptive`` serves each estimate through the coarse-to-fine refinement
    schedule (the final precision still meets ``epsilon``).
    """
    service = AnnotationService(database, epsilon=epsilon, delta=delta,
                                method=method, jobs=jobs, adaptive=adaptive,
                                reuse_results=reuse_lineage_results)
    if candidates is None:
        candidates = enumerate_candidates(select, database, limit=limit)
    response = service.submit(select, candidates=candidates,
                              seed=_root_seed(rng))
    return list(response.answers)


def annotate(sql: Union[str, SelectQuery], database: Database,
             epsilon: float = 0.05,
             delta: float = DEFAULT_DELTA,
             method: str = "afpras",
             limit: Optional[int] = None,
             rng: RngLike = None,
             group_witnesses: bool = True,
             jobs: int = 1,
             adaptive: bool = False) -> list[AnnotatedAnswer]:
    """Parse (if necessary) and annotate a SQL query over an incomplete database.

    Example
    -------
    >>> answers = annotate(
    ...     "SELECT P.seg FROM Products P, Market M "
    ...     "WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp * M.dis LIMIT 25",
    ...     database, epsilon=0.05, rng=0)
    >>> [(a.as_dict(), round(a.certainty.value, 2)) for a in answers][:2]

    ``group_witnesses=False`` switches to SQL bag semantics: every join
    combination becomes its own output row with its own confidence (the mode
    the paper's experimental pipeline uses); by default rows with the same
    projected values are merged and their lineage is the disjunction over all
    witnesses.
    """
    select = parse_sql(sql) if isinstance(sql, str) else sql
    service = AnnotationService(database, epsilon=epsilon, delta=delta,
                                method=method, jobs=jobs, adaptive=adaptive)
    response = service.submit(select, limit=limit, seed=_root_seed(rng),
                              group_witnesses=group_witnesses)
    return list(response.answers)
