"""The end-to-end pipeline: SQL text in, confidence-annotated answers out.

This is the library-level equivalent of the paper's experimental setup
(Section 9): evaluate a decision-support query over an incomplete database,
and attach to every returned tuple the measure of certainty that it is really
an answer, computed with the requested backend (by default the AFPRAS of
Section 8, the algorithm the paper benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.certainty.measure import certainty_from_translation
from repro.certainty.result import CertaintyResult
from repro.engine.candidates import CandidateAnswer, enumerate_candidates
from repro.engine.sql.ast import SelectQuery
from repro.engine.sql.parser import parse_sql
from repro.geometry.ball import RngLike, as_generator
from repro.geometry.montecarlo import DEFAULT_DELTA
from repro.relational.database import Database
from repro.relational.values import Value


@dataclass(frozen=True)
class AnnotatedAnswer:
    """A candidate answer together with its measure of certainty."""

    values: tuple[Value, ...]
    columns: tuple[str, ...]
    certainty: CertaintyResult
    witnesses: int

    def as_dict(self) -> dict[str, Value]:
        return dict(zip(self.columns, self.values))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rendered = ", ".join(f"{column}={value!r}"
                             for column, value in zip(self.columns, self.values))
        return f"AnnotatedAnswer({rendered}, mu≈{self.certainty.value:.3f})"


def annotate_query(select: SelectQuery, database: Database,
                   epsilon: float = 0.05,
                   delta: float = DEFAULT_DELTA,
                   method: str = "afpras",
                   limit: Optional[int] = None,
                   rng: RngLike = None,
                   candidates: Optional[Sequence[CandidateAnswer]] = None,
                   reuse_lineage_results: bool = True) -> list[AnnotatedAnswer]:
    """Annotate the candidate answers of a parsed SELECT query with confidences.

    ``candidates`` may be supplied to reuse a previous enumeration (the
    benchmarks do this to time the Monte-Carlo phase separately from the
    join, which is how the paper reports its numbers).

    Distinct output rows frequently share a lineage formula -- ungrouped
    (bag-semantics) runs emit one row per witness, and different tuples often
    hit the same constraint pattern.  Since the measure only depends on the
    formula and its variables, ``reuse_lineage_results`` (default on) computes
    each distinct ``(formula, relevant variables)`` pair once and reuses the
    result, which on top of the compiled-kernel cache makes repeated lineages
    nearly free.  Disable it to force an independent Monte-Carlo run per row.
    """
    generator = as_generator(rng)
    if candidates is None:
        candidates = enumerate_candidates(select, database, limit=limit)
    annotated: list[AnnotatedAnswer] = []
    cache: dict[tuple, CertaintyResult] = {}
    for candidate in candidates:
        key = (candidate.lineage.formula, candidate.lineage.relevant_variables)
        result = cache.get(key) if reuse_lineage_results else None
        if result is None:
            result = certainty_from_translation(candidate.lineage, epsilon=epsilon,
                                                delta=delta, method=method,
                                                rng=generator)
            if reuse_lineage_results:
                cache[key] = result
        annotated.append(AnnotatedAnswer(values=candidate.values,
                                         columns=candidate.columns,
                                         certainty=result,
                                         witnesses=candidate.witnesses))
    return annotated


def annotate(sql: Union[str, SelectQuery], database: Database,
             epsilon: float = 0.05,
             delta: float = DEFAULT_DELTA,
             method: str = "afpras",
             limit: Optional[int] = None,
             rng: RngLike = None,
             group_witnesses: bool = True) -> list[AnnotatedAnswer]:
    """Parse (if necessary) and annotate a SQL query over an incomplete database.

    Example
    -------
    >>> answers = annotate(
    ...     "SELECT P.seg FROM Products P, Market M "
    ...     "WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp * M.dis LIMIT 25",
    ...     database, epsilon=0.05, rng=0)
    >>> [(a.as_dict(), round(a.certainty.value, 2)) for a in answers][:2]

    ``group_witnesses=False`` switches to SQL bag semantics: every join
    combination becomes its own output row with its own confidence (the mode
    the paper's experimental pipeline uses); by default rows with the same
    projected values are merged and their lineage is the disjunction over all
    witnesses.
    """
    select = parse_sql(sql) if isinstance(sql, str) else sql
    candidates = None
    if not group_witnesses:
        candidates = enumerate_candidates(select, database, limit=limit,
                                          group_witnesses=False)
    return annotate_query(select, database, epsilon=epsilon, delta=delta,
                          method=method, limit=limit, rng=rng,
                          candidates=candidates)
