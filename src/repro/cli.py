"""Command-line interface: generate workloads, annotate SQL answers, serve.

Three subcommands cover the end-to-end workflow of the paper's experiments
without writing any Python:

``python -m repro.cli generate --out data/ --products 2000 --orders 2000``
    Generate the Section 9 sales database and write it as CSV files
    (marked nulls are encoded as ``⊤:name`` / ``⊥:name``).

``python -m repro.cli annotate --data data/ --sql "SELECT ..." --epsilon 0.05``
    Load the CSV database, run the query through the annotation service and
    print every candidate answer with its measure of certainty.
    ``--query-name`` can be used instead of ``--sql`` to run one of the
    paper's three decision-support queries by name; ``--jobs N`` spreads the
    Monte-Carlo estimates over worker threads (bit-identical to serial at a
    fixed ``--seed``), and ``--adaptive`` streams coarse estimates first.

``python -m repro.cli serve --data data/``
    Start a long-lived annotation service and read queries from stdin (a
    REPL on a terminal, plain line protocol when piped).  Repeated and
    structurally similar queries are answered from the service's caches;
    ``INSERT``/``DELETE``/``UPDATE`` statements commit a new MVCC snapshot
    version (reported on the result line and in ``\\stats``);
    ``\\stats`` prints the cache/amortisation report, ``\\quit`` exits.
    EOF and Ctrl-C both end the session cleanly (exit 0) and print the
    ``\\stats`` summary on the way out.

``python -m repro.cli server --data data/ --port 7464``
    The same service behind the network front end: a TCP listener speaking
    newline-delimited JSON plus an HTTP adapter (``POST /query``,
    ``GET /healthz``, ``GET /stats``), with bounded admission control,
    cross-connection single-flight coalescing, streamed ``--adaptive``
    refinements, and graceful drain on SIGTERM.  ``--port 0`` binds an
    ephemeral port (printed on startup), ``--no-http`` disables the HTTP
    adapter.

``python -m repro.cli client --sql "SELECT ..." --port 7464``
    Query a running server over TCP and print the same table ``annotate``
    prints.  ``--sql "INSERT INTO ..."`` (or DELETE/UPDATE) routes to the
    server's mutation op and prints the committed data version; typed
    rejections (validation, conflict) exit 2 like any other bad input.
    ``--probe stats`` / ``--probe health`` fetch the server's
    reports instead (aligned tables by default, ``--json`` for the raw
    payload), ``--probe metrics`` dumps the Prometheus exposition.

``python -m repro.cli top --http-port 7465``
    Live operator console: polls a running server's ``/metrics``,
    ``/stats`` and ``/history`` and renders refreshing tables of
    throughput (with qps sparklines from the server-side history ring),
    windowed p50/p99 latency, SLO burn-rate alerts, cache hit rates,
    coalescing, planner decisions and fusion counters.  Pointed at a
    cluster coordinator it additionally renders per-worker rows, trends
    and routing/failover counters.  ``--json`` emits one machine-readable
    snapshot and exits.

``python -m repro.cli profile --port 7464 --seconds 5``
    Sample a running server's stacks (every worker plus the coordinator
    when pointed at a cluster front door) and print collapsed stacks --
    pipe into ``flamegraph.pl`` or load in speedscope.

``python -m repro.cli cluster trace out.json``
    Export one distributed trace -- coordinator and worker spans stitched
    under a single trace id -- as a Chrome/Perfetto trace-event file.
    Trace ids are printed on query results and recorded in the slow-query
    log.

``python -m repro.cli cluster start --data data/ --workers 3``
    The distributed serving tier: spawn N ``repro server`` worker
    subprocesses (plus any ``--worker-addr host:port`` remotes) behind a
    coordinator that consistent-hash-routes query families onto warm
    worker caches, coalesces duplicate requests fleet-wide, broadcasts
    mutations to every worker behind a monotone version barrier, fails
    requests over to a live replica, and supervises/respawns dead local
    workers.  ``repro cluster status|drain|scale`` talk to a running
    coordinator: ``status`` prints per-worker states, ``drain`` performs
    a rolling SIGTERM restart of the local fleet (always serving), and
    ``scale --workers N`` grows/shrinks the local worker pool.

``annotate`` is also available as ``query``; ``repro query --trace
out.json`` additionally writes the request's span tree as a Chrome
trace-event file (load it in ``chrome://tracing`` or Perfetto).

Errors in user input (SQL syntax, unknown tables/columns, missing data
directories) terminate with exit code 2 and a one-line message on stderr --
never a traceback.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro import package_version
from repro.datagen.experiments import (
    EXPERIMENT_QUERIES,
    ExperimentScale,
    generate_sales_database,
    sales_schema,
)
from repro.engine.sql.lexer import SqlSyntaxError
from repro.obs.logsetup import LOG_FORMATS, LOG_LEVELS, configure_logging
from repro.engine.translate_sql import SqlTranslationError
from repro.relational.csv_io import load_database, save_database
from repro.relational.schema import SchemaError
from repro.service import (
    EXECUTORS,
    PLANNER_MODES,
    SERVICE_METHODS,
    AnnotationService,
    ServiceOptions,
)

#: Exit code when the data directory holds no tuples (kept at 1 for
#: backwards compatibility with pre-service scripts).
EXIT_NO_DATA = 1

#: Exit code for malformed user input (bad SQL, unknown columns, bad data).
EXIT_USAGE = 2

#: Exit code of ``repro client --probe alerts`` when any SLO alert fires
#: (distinct from usage errors so scripts can branch on it).
EXIT_ALERT_FIRING = 3

#: Exceptions that indicate a problem with the user's input, not a bug.
#: MutationError (validation/conflict) subclasses ValueError, so rejected
#: mutation statements exit 2 through the same path as bad SQL.
_USER_ERRORS = (SqlSyntaxError, SqlTranslationError, SchemaError, ValueError)

#: Leading keywords that route a statement to the mutation path.
_MUTATION_KEYWORDS = ("INSERT", "DELETE", "UPDATE")


def _is_mutation(sql: str) -> bool:
    head = sql.lstrip().split(None, 1)
    return bool(head) and head[0].upper() in _MUTATION_KEYWORDS


class _EmptyDataError(RuntimeError):
    """Raised when the requested data directory contains no tuples."""


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Measures of certainty for queries with arithmetic on "
                    "incomplete databases (PODS 2020 reproduction).")
    parser.add_argument("--version", action="version",
                        version=f"repro {package_version()}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="generate the sales workload and write it as CSV files")
    generate.add_argument("--out", required=True, help="output directory")
    generate.add_argument("--products", type=int, default=2000)
    generate.add_argument("--orders", type=int, default=2000)
    generate.add_argument("--markets", type=int, default=100)
    generate.add_argument("--null-rate", type=float, default=0.08)
    generate.add_argument("--seed", type=int, default=0)

    def add_serving_arguments(subparser: argparse.ArgumentParser, *,
                              data_required: bool = True) -> None:
        subparser.add_argument("--data", required=data_required,
                               help="directory of CSV files")
        subparser.add_argument("--epsilon", type=float, default=0.05,
                               help="additive error of the estimates (default 0.05)")
        subparser.add_argument("--method", default="afpras",
                               choices=SERVICE_METHODS)
        subparser.add_argument("--limit", type=int, default=None)
        subparser.add_argument("--seed", type=int, default=0,
                               help="root seed; fixed seeds make runs "
                                    "(including --jobs N) reproducible")
        subparser.add_argument("--jobs", type=int, default=1,
                               help="workers for the Monte-Carlo phase and "
                                    "for sharded enumeration (0 = one per "
                                    "CPU; results are identical to --jobs 1 "
                                    "at a fixed seed)")
        subparser.add_argument("--executor", default="thread",
                               choices=EXECUTORS,
                               help="what --jobs spans for the Monte-Carlo "
                                    "phase: 'thread' shares the process, "
                                    "'process' spans cores; answers are "
                                    "bit-identical either way")
        subparser.add_argument("--shards", type=int, default=1,
                               help="hash-partition the columnar database "
                                    "into this many key-aligned shards; "
                                    "with --jobs N shard joins run across "
                                    "worker processes (requires --backend "
                                    "columnar to take effect; answers are "
                                    "identical to --shards 1)")
        subparser.add_argument("--adaptive", action="store_true",
                               help="serve coarse estimates first and refine "
                                    "toward --epsilon; refinement stages "
                                    "stream on stderr, the final table gains "
                                    "an interval column")
        subparser.add_argument("--backend", default="rows",
                               choices=("rows", "columnar"),
                               help="storage/execution backend for candidate "
                                    "enumeration: 'columnar' joins whole "
                                    "NumPy columns at once (fastest on large "
                                    "tables), 'rows' is the row-at-a-time "
                                    "reference engine (default); answers are "
                                    "identical either way")
        subparser.add_argument("--planner", default="manual",
                               choices=PLANNER_MODES,
                               help="'auto' lets the calibrated cost model "
                                    "pick backend, shards, jobs, executor "
                                    "and fusion batch per query (explicit "
                                    "flags still win); 'manual' (default) "
                                    "runs exactly the flags given; answers "
                                    "are identical either way")
        subparser.add_argument("--fusion", type=int, default=0,
                               help="decide group estimates this many "
                                    "lineages at a time through one fused "
                                    "kernel (0 = per-group kernels; answers "
                                    "are bit-identical at any batch size)")

    annotate_parser = subparsers.add_parser(
        "annotate", aliases=["query"],
        help="run a SQL query over a CSV database and print confidences")
    source = annotate_parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--sql", help="SQL text of the query")
    source.add_argument("--query-name", choices=sorted(EXPERIMENT_QUERIES),
                        help="one of the paper's decision-support queries")
    add_serving_arguments(annotate_parser)
    annotate_parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write the request's span tree (parse/plan/enumerate/schedule/"
             "estimate/serialize) as a Chrome trace-event JSON file")

    serve_parser = subparsers.add_parser(
        "serve", help="start an annotation service reading queries from stdin")
    add_serving_arguments(serve_parser)

    server_parser = subparsers.add_parser(
        "server", help="serve the annotation service over TCP (NDJSON) and HTTP")
    add_serving_arguments(server_parser)
    server_parser.add_argument("--host", default="127.0.0.1",
                               help="interface to bind (default 127.0.0.1)")
    server_parser.add_argument("--port", type=int, default=None,
                               help="TCP wire-protocol port (default 7464; "
                                    "0 picks an ephemeral port, printed on "
                                    "startup)")
    server_parser.add_argument("--http-port", type=int, default=None,
                               help="HTTP adapter port (default: TCP port + 1; "
                                    "0 picks an ephemeral port)")
    server_parser.add_argument("--no-http", action="store_true",
                               help="disable the HTTP adapter")
    server_parser.add_argument("--max-pending", type=int, default=64,
                               help="admission limit: computations queued or "
                                    "running before new queries are rejected "
                                    "with the typed 'overloaded' error "
                                    "(default 64)")
    server_parser.add_argument("--workers", type=int, default=4,
                               help="compute threads serving requests "
                                    "(default 4); each request may fan out "
                                    "further via --jobs")
    server_parser.add_argument("--drain-timeout", type=float, default=30.0,
                               help="seconds SIGTERM waits for in-flight "
                                    "requests before giving up (default 30)")
    server_parser.add_argument("--log-level", default="info",
                               choices=LOG_LEVELS,
                               help="verbosity of the structured server log "
                                    "on stderr (default info)")
    server_parser.add_argument("--log-format", default="text",
                               choices=LOG_FORMATS,
                               help="'text' for classic operator lines, "
                                    "'json' for one JSON object per line")

    client_parser = subparsers.add_parser(
        "client", help="query a running repro server over the TCP protocol")
    client_parser.add_argument("--host", default="127.0.0.1")
    client_parser.add_argument("--port", type=int, default=7464)
    client_source = client_parser.add_mutually_exclusive_group(required=True)
    client_source.add_argument("--sql", help="SQL text of the query")
    client_source.add_argument("--query-name",
                               choices=sorted(EXPERIMENT_QUERIES),
                               help="one of the paper's decision-support queries")
    client_source.add_argument("--probe",
                               choices=("stats", "health", "ping", "metrics",
                                        "alerts"),
                               help="fetch a server report instead of "
                                    "querying; 'alerts' exits 3 when any "
                                    "SLO burn-rate alert is firing")
    client_parser.add_argument("--json", action="store_true",
                               help="print probe reports as raw JSON instead "
                                    "of aligned tables")
    client_parser.add_argument("--epsilon", type=float, default=None)
    client_parser.add_argument("--delta", type=float, default=None)
    client_parser.add_argument("--method", default=None,
                               choices=SERVICE_METHODS)
    client_parser.add_argument("--limit", type=int, default=None)
    client_parser.add_argument("--seed", type=int, default=None)
    client_parser.add_argument("--adaptive", action="store_true",
                               help="stream refinement stages (on stderr) "
                                    "while the final table builds")
    client_parser.add_argument("--planner", default=None,
                               choices=PLANNER_MODES,
                               help="override the server's planner mode for "
                                    "this query ('auto' = cost-based "
                                    "execution planning)")

    cluster_parser = subparsers.add_parser(
        "cluster",
        help="distributed serving tier: coordinator + N repro server workers")
    cluster_sub = cluster_parser.add_subparsers(dest="cluster_command",
                                                required=True)

    cluster_start = cluster_sub.add_parser(
        "start", help="spawn local workers (and/or front remote ones) "
                      "behind a coordinator")
    add_serving_arguments(cluster_start, data_required=False)
    cluster_start.add_argument("--workers", type=int, default=2,
                               help="local worker subprocesses to spawn "
                                    "(default 2; 0 with --worker-addr fronts "
                                    "only remote workers)")
    cluster_start.add_argument("--worker-addr", action="append", default=[],
                               metavar="HOST:PORT",
                               help="front an already-running repro server "
                                    "(repeatable); remote workers are health-"
                                    "checked and routed but not respawned")
    cluster_start.add_argument("--host", default="127.0.0.1",
                               help="interface to bind (default 127.0.0.1)")
    cluster_start.add_argument("--port", type=int, default=None,
                               help="coordinator TCP port (default 7464; "
                                    "0 picks an ephemeral port)")
    cluster_start.add_argument("--http-port", type=int, default=None,
                               help="coordinator HTTP port (default: TCP "
                                    "port + 1; 0 picks an ephemeral port)")
    cluster_start.add_argument("--no-http", action="store_true",
                               help="disable the HTTP adapter")
    cluster_start.add_argument("--max-pending", type=int, default=256,
                               help="coordinator admission limit on "
                                    "concurrently forwarded flights "
                                    "(default 256)")
    cluster_start.add_argument("--health-interval", type=float, default=1.0,
                               help="seconds between worker health checks "
                                    "(default 1)")
    cluster_start.add_argument("--no-supervise", action="store_true",
                               help="do not respawn dead local workers")
    cluster_start.add_argument("--drain-timeout", type=float, default=60.0,
                               help="seconds SIGTERM waits for in-flight "
                                    "requests before giving up (default 60)")
    cluster_start.add_argument("--log-level", default="info",
                               choices=LOG_LEVELS)
    cluster_start.add_argument("--log-format", default="text",
                               choices=LOG_FORMATS)

    for verb, description in (
            ("status", "per-worker states and coordinator counters"),
            ("drain", "rolling restart of the local workers (fleet keeps "
                      "serving via failover)"),
            ("scale", "grow/shrink the local worker pool")):
        verb_parser = cluster_sub.add_parser(verb, help=description)
        verb_parser.add_argument("--host", default="127.0.0.1")
        verb_parser.add_argument("--port", type=int, default=7464,
                                 help="the coordinator's TCP port")
        verb_parser.add_argument("--json", action="store_true",
                                 help="print the raw JSON payload")
        if verb == "scale":
            verb_parser.add_argument("--workers", type=int, required=True,
                                     help="target worker count")

    cluster_trace = cluster_sub.add_parser(
        "trace", help="export one distributed trace (coordinator + worker "
                      "spans stitched under a single trace id) as a Chrome/"
                      "Perfetto trace-event file")
    cluster_trace.add_argument("out", metavar="OUT",
                               help="path of the trace-event JSON file to "
                                    "write")
    cluster_trace.add_argument("--host", default="127.0.0.1")
    cluster_trace.add_argument("--port", type=int, default=7464,
                               help="the coordinator's (or server's) TCP "
                                    "port")
    cluster_trace.add_argument("--trace-id", default=None,
                               help="the 32-hex-char trace id (default: the "
                                    "most recent stored trace)")

    top_parser = subparsers.add_parser(
        "top", help="live operator console over a running server's HTTP port")
    top_parser.add_argument("--host", default="127.0.0.1")
    top_parser.add_argument("--http-port", type=int, default=7465,
                            help="the server's HTTP adapter port "
                                 "(default 7465)")
    top_parser.add_argument("--interval", type=float, default=2.0,
                            help="seconds between polls (default 2)")
    top_parser.add_argument("--count", type=int, default=None,
                            help="render this many frames then exit "
                                 "(default: run until Ctrl-C)")
    top_parser.add_argument("--json", action="store_true",
                            help="print one machine-readable snapshot "
                                 "(fleet rows, alerts, windowed latency) "
                                 "and exit")

    profile_parser = subparsers.add_parser(
        "profile", help="sample a running server's stacks (fleet-wide "
                        "through a coordinator) and print collapsed stacks "
                        "ready for flamegraph.pl or speedscope")
    profile_parser.add_argument("--host", default="127.0.0.1")
    profile_parser.add_argument("--port", type=int, default=7464,
                                help="the server's (or coordinator's) TCP "
                                     "port")
    profile_parser.add_argument("--seconds", type=float, default=1.0,
                                help="sampling window (default 1, capped "
                                     "server-side at 60)")
    profile_parser.add_argument("--out", default=None,
                                help="write the collapsed stacks here "
                                     "instead of stdout")

    return parser


def _run_generate(args: argparse.Namespace) -> int:
    scale = ExperimentScale(products=args.products, orders=args.orders,
                            markets=args.markets, null_rate=args.null_rate)
    database = generate_sales_database(scale, rng=args.seed)
    save_database(database, Path(args.out))
    print(f"wrote {database.total_tuples()} tuples "
          f"({len(database.num_nulls())} numerical nulls, "
          f"{len(database.base_nulls())} base nulls) to {args.out}")
    return 0


def _load_service(args: argparse.Namespace) -> AnnotationService:
    database = load_database(sales_schema(), Path(args.data))
    if database.total_tuples() == 0:
        raise _EmptyDataError(f"no data found in {args.data}")
    if args.shards < 1:
        raise ValueError(f"--shards must be at least 1, got {args.shards}")
    if args.fusion < 0:
        raise ValueError(f"--fusion must be non-negative, got {args.fusion}")
    options = ServiceOptions(epsilon=args.epsilon, method=args.method,
                             jobs=args.jobs, executor=args.executor,
                             adaptive=args.adaptive,
                             seed=args.seed, backend=args.backend,
                             shards=args.shards,
                             planner=args.planner, fusion=args.fusion)
    return AnnotationService(database, options)


def _print_answers(answers: Sequence, adaptive: bool) -> None:
    if not answers:
        print("no candidate answers")
        return
    header = " | ".join(answers[0].columns)
    print(f"{header} | confidence | witnesses")
    for answer in answers:
        values = " | ".join(str(value) for value in answer.values)
        line = f"{values} | {answer.certainty.value:.3f} | {answer.witnesses}"
        if adaptive:
            low, high = answer.certainty.details.get(
                "interval", answer.certainty.interval())
            line += f" | [{low:.3f}, {high:.3f}]"
        print(line)


def _show_update(lineage: str, update) -> None:
    """One streamed refinement line on stderr (stdout stays a clean table)."""
    if update.samples == 0:
        return  # exact lineages answer at stage 0 with nothing to refine
    low, high = update.interval
    marker = "  <- final" if update.final else ""
    print(f".. lineage {lineage} "
          f"stage {update.stage + 1}/{update.stages}: "
          f"mu={update.value:.3f} in [{low:.3f}, {high:.3f}] "
          f"(eps={update.epsilon:.3f}, {update.samples} samples){marker}",
          file=sys.stderr, flush=True)


def _adaptive_printer():
    """Adapter for the service's ``on_update`` callback shape.

    With ``--jobs N`` the stages of different lineage groups interleave;
    each line is self-identifying via the canonical-lineage digest prefix.
    """
    def show(group, update) -> None:
        _show_update(group.canonical.short, update)
    return show


def _run_annotate(args: argparse.Namespace) -> int:
    service = _load_service(args)
    sql = args.sql if args.sql is not None else EXPERIMENT_QUERIES[args.query_name]
    trace_path = getattr(args, "trace", None)
    response = service.submit(
        sql, limit=args.limit, trace=bool(trace_path),
        on_update=_adaptive_printer() if args.adaptive else None)
    _print_answers(response.answers, args.adaptive)
    if trace_path:
        path = response.trace.write_chrome(trace_path)
        print(f"-- wrote {len(response.trace.spans)} spans to {path}",
              file=sys.stderr)
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    """Line-oriented serving loop: one SQL query per line, ``\\``-commands.

    On a terminal this is a small REPL; piped input makes it a batch
    protocol, so scripted clients (and the worked example under
    ``examples/``) drive it the same way.  The session always ends cleanly:
    EOF and Ctrl-C (even mid-request) exit 0 and print the ``\\stats``
    summary, so an interrupted session still reports what it amortised.
    """
    from repro.obs import Recorder

    service = _load_service(args)
    # A recorder makes the interactive ``\stats`` report include latency
    # quantiles-to-be and the slow-query ring at zero extra flags.
    service.use_recorder(Recorder())
    interactive = sys.stdin.isatty()
    if interactive:
        print(f"repro serve: {service.database.total_tuples()} tuples, "
              f"method={args.method}, epsilon={args.epsilon}, jobs={args.jobs}; "
              "\\stats for the cache report, \\quit to exit")
    try:
        while True:
            if interactive:
                print("repro> ", end="", flush=True)
            line = sys.stdin.readline()
            if not line:
                break
            line = line.strip()
            if not line or line.startswith("--") or line.startswith("#"):
                continue
            if line in ("\\quit", "\\q", "exit", "quit"):
                break
            if line in ("\\stats", "\\s"):
                print(service.stats().report())
                continue
            if _is_mutation(line):
                try:
                    outcome = service.mutate(line)
                except _USER_ERRORS as error:
                    print(f"error: {error}", file=sys.stderr)
                    continue
                print(f"-- {outcome.operation} on {outcome.table}: "
                      f"+{outcome.inserted}/-{outcome.deleted} rows, "
                      f"data version {outcome.data_version}")
                continue
            try:
                response = service.submit(
                    line, limit=args.limit,
                    on_update=_adaptive_printer() if args.adaptive else None)
            except _USER_ERRORS as error:
                print(f"error: {error}", file=sys.stderr)
                continue
            _print_answers(response.answers, args.adaptive)
            stats = response.stats
            print(f"-- {stats.candidates} answers in {stats.elapsed_seconds*1e3:.1f} ms "
                  f"({stats.groups} lineage groups: {stats.groups_computed} computed, "
                  f"{stats.groups_from_cache} cached; {stats.tuples_batched} tuples batched)")
    except KeyboardInterrupt:
        # Ctrl-C mid-request is a normal way to leave the REPL, not a crash.
        pass
    if interactive:
        print()
    print("-- session stats --")
    print(service.stats().report())
    return 0


def _run_server(args: argparse.Namespace) -> int:
    """The network front end: TCP NDJSON + HTTP around one service."""
    from repro.server import DEFAULT_PORT, serve

    configure_logging(level=args.log_level, format=args.log_format)
    if args.max_pending < 1:
        raise ValueError(f"--max-pending must be at least 1, got {args.max_pending}")
    if args.workers < 1:
        raise ValueError(f"--workers must be at least 1, got {args.workers}")
    service = _load_service(args)
    port = DEFAULT_PORT if args.port is None else args.port
    if args.no_http:
        http_port = None
    elif args.http_port is not None:
        http_port = args.http_port
    else:
        # Ephemeral TCP ports take an ephemeral HTTP port alongside.
        http_port = port + 1 if port else 0
    return serve(service, host=args.host, port=port, http_port=http_port,
                 max_pending=args.max_pending, workers=args.workers,
                 drain_timeout=args.drain_timeout)


def _worker_serving_flags(args: argparse.Namespace) -> list[str]:
    """The serving flags ``repro cluster start`` forwards to each worker."""
    flags = ["--epsilon", str(args.epsilon), "--method", args.method,
             "--seed", str(args.seed), "--jobs", str(args.jobs),
             "--executor", args.executor, "--shards", str(args.shards),
             "--backend", args.backend, "--planner", args.planner,
             "--fusion", str(args.fusion)]
    if args.limit is not None:
        flags += ["--limit", str(args.limit)]
    if args.adaptive:
        flags.append("--adaptive")
    return flags


def _run_cluster_start(args: argparse.Namespace) -> int:
    """The coordinator front door over local and/or remote workers."""
    from repro.cluster import (
        CoordinatorApp,
        LocalWorker,
        WorkerEndpoint,
        WorkerSpawnError,
        parse_worker_addr,
        worker_argv,
    )
    from repro.server import DEFAULT_PORT, serve

    configure_logging(level=args.log_level, format=args.log_format)
    if args.workers < 0:
        raise ValueError(f"--workers must be non-negative, got {args.workers}")
    if args.workers == 0 and not args.worker_addr:
        raise ValueError("nothing to front: pass --workers N and/or "
                         "--worker-addr host:port")
    if args.workers > 0 and not args.data:
        raise ValueError("--data is required to spawn local workers")
    endpoints = []
    for index, value in enumerate(args.worker_addr):
        host, port = parse_worker_addr(value)
        endpoints.append(WorkerEndpoint(f"r{index}", host, port))
    template = None
    locals_: list[LocalWorker] = []
    if args.workers > 0:
        template = worker_argv(args.data, _worker_serving_flags(args))
        try:
            for index in range(args.workers):
                worker = LocalWorker(f"w{index}", list(template))
                worker.spawn()
                locals_.append(worker)
        except WorkerSpawnError as error:
            for worker in locals_:
                worker.kill()
            print(f"error: {error}", file=sys.stderr)
            return 1
    defaults = {"epsilon": args.epsilon, "delta": None,
                "method": args.method, "limit": args.limit,
                "seed": args.seed, "adaptive": args.adaptive,
                "planner": args.planner}
    app = CoordinatorApp(endpoints, locals_=locals_, defaults=defaults,
                         max_pending=args.max_pending,
                         health_interval=args.health_interval,
                         supervise=not args.no_supervise,
                         worker_template=template)
    port = DEFAULT_PORT if args.port is None else args.port
    if args.no_http:
        http_port = None
    elif args.http_port is not None:
        http_port = args.http_port
    else:
        http_port = port + 1 if port else 0
    try:
        return serve(app=app, host=args.host, port=port, http_port=http_port,
                     drain_timeout=args.drain_timeout)
    except WorkerSpawnError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _print_cluster_status(payload: dict) -> None:
    from repro.obs.console import render_table

    rows = [(worker["id"], worker["addr"], worker["state"],
             str(worker.get("pid") or "-"), str(worker["data_version"]))
            for worker in payload.get("workers", [])]
    print("\n".join(render_table(
        ("worker", "addr", "state", "pid", "version"), rows)))
    coordinator = payload.get("coordinator", {})
    keys = ("requests", "launched", "coalesced", "failovers", "respawns",
            "mutations", "barrier_version", "workers_healthy")
    print("\n".join(render_table(
        ("coordinator", "value"),
        [(key, str(coordinator.get(key, 0))) for key in keys])))


def _run_cluster_trace(args: argparse.Namespace) -> int:
    """Fetch one stitched distributed trace and write the Chrome file."""
    import json

    from repro.client import ClientError, ReproClient, ServerError

    try:
        with ReproClient(args.host, args.port) as client:
            payload = client.trace_export(args.trace_id)
    except ServerError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE if error.code == "bad_request" else 1
    except ClientError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    path = Path(args.out)
    path.write_text(json.dumps(payload["chrome"], indent=1) + "\n")
    print(f"wrote trace {payload.get('trace_id', '?')} "
          f"({payload.get('span_count', 0)} spans over "
          f"{len(payload.get('processes', []))} processes) to {path}")
    return 0


def _run_cluster(args: argparse.Namespace) -> int:
    if args.cluster_command == "start":
        return _run_cluster_start(args)
    if args.cluster_command == "trace":
        return _run_cluster_trace(args)
    import json

    from repro.client import ClientError, ReproClient, ServerError

    # Rolling restarts drain worker-by-worker; give them real time.
    timeout = 600.0 if args.cluster_command == "drain" else 60.0
    try:
        with ReproClient(args.host, args.port, timeout=timeout) as client:
            if args.cluster_command == "status":
                payload = client.cluster()
            elif args.cluster_command == "drain":
                payload = client.cluster_drain()
            else:
                payload = client.cluster_scale(args.workers)
    except ServerError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE if error.code == "bad_request" else 1
    except ClientError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(payload, indent=2))
    elif args.cluster_command == "status":
        _print_cluster_status(payload)
    elif args.cluster_command == "drain":
        print(f"rolling restart done: restarted "
              f"{', '.join(payload.get('restarted', [])) or 'none'} "
              f"(barrier version {payload.get('barrier_version', 0)})")
    else:
        print(f"scaled to {payload.get('workers')} workers "
              f"(+{len(payload.get('added', []))}/"
              f"-{len(payload.get('removed', []))})")
    return 0


def _run_client(args: argparse.Namespace) -> int:
    """One scripted interaction with a running server, annotate-style output."""
    import json

    from repro.client import ClientError, ReproClient, ServerError

    try:
        with ReproClient(args.host, args.port) as client:
            if args.probe == "ping":
                print("pong" if client.ping() else "no pong")
                return 0
            if args.probe == "metrics":
                print(client.metrics(), end="")
                return 0
            if args.probe == "alerts":
                payload = client.alerts()
                if args.json:
                    print(json.dumps(payload, indent=2))
                else:
                    from repro.obs.console import render_table
                    rows = [(f"{alert.get('slo', '?')}/"
                             f"{alert.get('severity', '?')}",
                             f"{alert.get('burn_short', 0.0):.2f}",
                             f"{alert.get('burn_long', 0.0):.2f}",
                             f"{alert.get('burn_threshold', 0.0):.1f}",
                             "FIRING" if alert.get("firing") else "ok")
                            for alert in payload.get("alerts", [])]
                    print("\n".join(render_table(
                        ("slo alert", "burn short", "burn long",
                         "threshold", "state"), rows)))
                # Scripts branch on the exit code: 0 = healthy, 3 = paging.
                return EXIT_ALERT_FIRING if payload.get("firing") else 0
            if args.probe in ("stats", "health"):
                payload = client.stats() if args.probe == "stats" else client.health()
                if args.json:
                    print(json.dumps(payload, indent=2))
                elif args.probe == "stats":
                    from repro.obs.console import render_stats_tables
                    print(render_stats_tables(payload))
                else:
                    from repro.obs.console import render_table
                    print("\n".join(render_table(
                        ("health", "value"),
                        [(key, str(value)) for key, value in payload.items()])))
                return 0
            sql = args.sql if args.sql is not None \
                else EXPERIMENT_QUERIES[args.query_name]
            if _is_mutation(sql):
                outcome = client.mutate(sql)
                print(f"{outcome.operation} on {outcome.table}: "
                      f"+{outcome.inserted}/-{outcome.deleted} rows, "
                      f"data version {outcome.data_version}")
                return 0
            on_update = (lambda event: _show_update(event.lineage[:8], event)) \
                if args.adaptive else None
            result = client.query(
                sql, epsilon=args.epsilon, delta=args.delta,
                method=args.method, limit=args.limit, seed=args.seed,
                adaptive=args.adaptive or None, planner=args.planner,
                on_update=on_update)
    except ServerError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE if error.code in (
            "bad_request", "invalid_query", "validation", "conflict") else 1
    except ClientError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    _print_answers(result.answers, args.adaptive)
    stats = result.stats
    print(f"-- {stats.get('candidates', len(result.answers))} answers in "
          f"{stats.get('elapsed_seconds', 0.0)*1e3:.1f} ms "
          f"({stats.get('groups', 0)} lineage groups: "
          f"{stats.get('groups_computed', 0)} computed, "
          f"{stats.get('groups_from_cache', 0)} cached)")
    return 0


def _run_top(args: argparse.Namespace) -> int:
    """Live operator console over a running server's HTTP adapter."""
    import json

    from urllib.error import URLError

    from repro.obs.console import fetch_sample, run_top, snapshot_payload

    base_url = f"http://{args.host}:{args.http_port}"
    try:
        if args.json:
            # One machine-readable snapshot, no dashboard: what check
            # runners and cron scripts consume.
            print(json.dumps(snapshot_payload(fetch_sample(base_url)),
                             indent=2))
            return 0
        frames = run_top(base_url, interval=args.interval, count=args.count)
    except (URLError, OSError) as error:
        print(f"error: cannot reach {base_url}: {error}", file=sys.stderr)
        return 1
    return 0 if frames else 1


def _run_profile(args: argparse.Namespace) -> int:
    """One profiling run against a running server (or whole fleet)."""
    from repro.client import ClientError, ReproClient, ServerError

    try:
        with ReproClient(args.host, args.port,
                         timeout=args.seconds + 60.0) as client:
            payload = client.profile(seconds=args.seconds)
    except ServerError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE if error.code == "bad_request" else 1
    except ClientError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    collapsed = payload.get("collapsed", "")
    if args.out:
        Path(args.out).write_text(collapsed)
        processes = payload.get("processes", 1)
        print(f"wrote {payload.get('stacks', 0)} stacks "
              f"({payload.get('samples', 0)} samples over {processes} "
              f"process{'es' if processes != 1 else ''}) to {args.out}")
    else:
        print(collapsed, end="")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point (used both by ``python -m repro.cli`` and the tests)."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "generate":
            return _run_generate(args)
        if args.command == "serve":
            return _run_serve(args)
        if args.command == "server":
            return _run_server(args)
        if args.command == "cluster":
            return _run_cluster(args)
        if args.command == "client":
            return _run_client(args)
        if args.command == "top":
            return _run_top(args)
        if args.command == "profile":
            return _run_profile(args)
        return _run_annotate(args)
    except _EmptyDataError as error:
        print(str(error), file=sys.stderr)
        return EXIT_NO_DATA
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    except _USER_ERRORS as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    sys.exit(main())
