"""Command-line interface: generate workloads and annotate SQL answers.

Two subcommands cover the end-to-end workflow of the paper's experiments
without writing any Python:

``python -m repro.cli generate --out data/ --products 2000 --orders 2000``
    Generate the Section 9 sales database and write it as CSV files
    (marked nulls are encoded as ``⊤:name`` / ``⊥:name``).

``python -m repro.cli annotate --data data/ --sql "SELECT ..." --epsilon 0.05``
    Load the CSV database, run the query through the engine and print every
    candidate answer with its measure of certainty.  ``--query-name`` can be
    used instead of ``--sql`` to run one of the paper's three decision-support
    queries by name.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.datagen.experiments import (
    EXPERIMENT_QUERIES,
    ExperimentScale,
    generate_sales_database,
    sales_schema,
)
from repro.engine.annotate import annotate
from repro.relational.csv_io import load_database, save_database


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Measures of certainty for queries with arithmetic on "
                    "incomplete databases (PODS 2020 reproduction).")
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="generate the sales workload and write it as CSV files")
    generate.add_argument("--out", required=True, help="output directory")
    generate.add_argument("--products", type=int, default=2000)
    generate.add_argument("--orders", type=int, default=2000)
    generate.add_argument("--markets", type=int, default=100)
    generate.add_argument("--null-rate", type=float, default=0.08)
    generate.add_argument("--seed", type=int, default=0)

    annotate_parser = subparsers.add_parser(
        "annotate", help="run a SQL query over a CSV database and print confidences")
    annotate_parser.add_argument("--data", required=True, help="directory of CSV files")
    source = annotate_parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--sql", help="SQL text of the query")
    source.add_argument("--query-name", choices=sorted(EXPERIMENT_QUERIES),
                        help="one of the paper's decision-support queries")
    annotate_parser.add_argument("--epsilon", type=float, default=0.05,
                                 help="additive error of the AFPRAS (default 0.05)")
    annotate_parser.add_argument("--method", default="afpras",
                                 choices=("afpras", "fpras", "exact", "auto"))
    annotate_parser.add_argument("--limit", type=int, default=None)
    annotate_parser.add_argument("--seed", type=int, default=0)

    return parser


def _run_generate(args: argparse.Namespace) -> int:
    scale = ExperimentScale(products=args.products, orders=args.orders,
                            markets=args.markets, null_rate=args.null_rate)
    database = generate_sales_database(scale, rng=args.seed)
    save_database(database, Path(args.out))
    print(f"wrote {database.total_tuples()} tuples "
          f"({len(database.num_nulls())} numerical nulls, "
          f"{len(database.base_nulls())} base nulls) to {args.out}")
    return 0


def _run_annotate(args: argparse.Namespace) -> int:
    database = load_database(sales_schema(), Path(args.data))
    if database.total_tuples() == 0:
        print(f"no data found in {args.data}", file=sys.stderr)
        return 1
    sql = args.sql if args.sql is not None else EXPERIMENT_QUERIES[args.query_name]
    answers = annotate(sql, database, epsilon=args.epsilon, method=args.method,
                       limit=args.limit, rng=args.seed)
    if not answers:
        print("no candidate answers")
        return 0
    header = " | ".join(answers[0].columns)
    print(f"{header} | confidence | witnesses")
    for answer in answers:
        values = " | ".join(str(value) for value in answer.values)
        print(f"{values} | {answer.certainty.value:.3f} | {answer.witnesses}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point (used both by ``python -m repro.cli`` and the tests)."""
    args = _build_parser().parse_args(argv)
    if args.command == "generate":
        return _run_generate(args)
    return _run_annotate(args)


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    sys.exit(main())
