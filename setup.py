"""Setuptools shim for environments without the `wheel` package.

The project metadata lives in pyproject.toml; this file only exists so that
editable installs work on offline machines whose setuptools cannot build
wheels (``pip install -e . --no-build-isolation``).
"""
from setuptools import setup

setup()
