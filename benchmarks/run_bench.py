#!/usr/bin/env python
"""Perf harness for the Monte-Carlo schemes: scalar seed paths vs batched kernels.

Measures wall-clock time of the AFPRAS (Theorem 8.1) and the CQ(+,<) FPRAS
(Theorem 7.1) under both execution engines at fixed seeds and error levels,
and writes the results to a JSON baseline so future PRs have a perf
trajectory to beat.  The headline configuration is
``bench_afpras_scaling.py``'s largest one -- the 32-null chain -- at
``eps = 0.02``.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py            # full run
    PYTHONPATH=src python benchmarks/run_bench.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/run_bench.py --output BENCH_PR1.json

See DESIGN.md ("Perf-measurement protocol") for how the numbers are taken.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.certainty import (
    AfprasOptions,
    FprasOptions,
    afpras_measure,
    fpras_measure,
)
from repro.constraints.atoms import Comparison, Constraint
from repro.constraints.formula import And, Atom, disjunction
from repro.constraints.polynomials import Polynomial
from repro.constraints.translate import TranslationResult
from repro.geometry.montecarlo import hoeffding_sample_size
from repro.relational.values import NumNull

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_PR1.json"

#: The headline configuration of the acceptance criterion: the largest
#: dimension of bench_afpras_scaling.py at eps = 0.02.
AFPRAS_HEADLINE = {"dimension": 32, "epsilon": 0.02, "seed": 0}


def chain_translation(dimension: int) -> TranslationResult:
    """The chain ``z_0 < z_1 < ... < z_{d-1}`` (bench_afpras_scaling's input)."""
    names = tuple(f"z_c{i}" for i in range(dimension))
    atoms = tuple(
        Atom(Constraint(Polynomial.variable(names[i]) - Polynomial.variable(names[i + 1]),
                        Comparison.LT))
        for i in range(dimension - 1))
    return TranslationResult(
        formula=And(atoms),
        all_variables=names,
        relevant_variables=names,
        null_by_variable={name: NumNull(name.removeprefix("z_")) for name in names},
    )


def random_linear_translation(dimension: int, disjuncts: int,
                              atoms_per_disjunct: int, seed: int) -> TranslationResult:
    """A random DNF of linear constraints (bench_fpras_cq's input)."""
    generator = np.random.default_rng(seed)
    names = tuple(f"z_n{i}" for i in range(dimension))
    parts = []
    for _ in range(disjuncts):
        atoms = []
        for _ in range(atoms_per_disjunct):
            coefficients = generator.uniform(-1.0, 1.0, size=dimension)
            polynomial = Polynomial.constant(float(generator.uniform(-1.0, 1.0)))
            for name, coefficient in zip(names, coefficients):
                polynomial = polynomial + float(coefficient) * Polynomial.variable(name)
            atoms.append(Atom(Constraint(polynomial, Comparison.LE)))
        parts.append(And(tuple(atoms)))
    return TranslationResult(
        formula=disjunction(parts),
        all_variables=names,
        relevant_variables=names,
        null_by_variable={name: NumNull(name.removeprefix("z_")) for name in names},
    )


def _best_of(callable_, repeats: int) -> tuple[float, object]:
    """Minimum wall-clock of ``repeats`` runs (after one warm-up), plus a result."""
    callable_()  # warm caches: formula compilation, BLAS, scipy
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_afpras(quick: bool) -> dict:
    repeats = 1 if quick else 3
    configs = [dict(AFPRAS_HEADLINE, headline=True)]
    if not quick:
        configs += [
            {"dimension": 8, "epsilon": 0.02, "seed": 0},
            {"dimension": 4, "epsilon": 0.01, "seed": 0},
        ]
    rows = []
    for config in configs:
        translation = chain_translation(config["dimension"])
        row = {
            **config,
            "samples": hoeffding_sample_size(config["epsilon"]),
        }
        for engine in ("scalar", "batched"):
            options = AfprasOptions(epsilon=config["epsilon"], engine=engine)
            seconds, result = _best_of(
                lambda options=options, translation=translation, config=config:
                afpras_measure(translation, options, rng=config["seed"]),
                repeats)
            row[f"{engine}_seconds"] = seconds
            row[f"{engine}_value"] = result.value
        row["speedup"] = row["scalar_seconds"] / max(row["batched_seconds"], 1e-12)
        rows.append(row)
        print(f"afpras dim={config['dimension']:3d} eps={config['epsilon']:.3f}  "
              f"scalar {row['scalar_seconds']*1e3:8.2f} ms   "
              f"batched {row['batched_seconds']*1e3:8.2f} ms   "
              f"speedup {row['speedup']:6.2f}x")
    return {"scheme": "afpras", "configs": rows}


def bench_fpras(quick: bool) -> dict:
    repeats = 1 if quick else 3
    configs = [{"dimension": 5, "disjuncts": 3, "atoms": 2,
                "epsilon": 0.05, "seed": 5}]
    if not quick:
        configs.append({"dimension": 3, "disjuncts": 3, "atoms": 2,
                        "epsilon": 0.03, "seed": 3})
    rows = []
    for config in configs:
        translation = random_linear_translation(
            config["dimension"], config["disjuncts"], config["atoms"], config["seed"])
        row = dict(config)
        for engine in ("scalar", "batched"):
            options = FprasOptions(epsilon=config["epsilon"], engine=engine)
            seconds, result = _best_of(
                lambda options=options, translation=translation, config=config:
                fpras_measure(translation, options, rng=config["seed"]),
                repeats)
            row[f"{engine}_seconds"] = seconds
            row[f"{engine}_value"] = result.value
        row["speedup"] = row["scalar_seconds"] / max(row["batched_seconds"], 1e-12)
        rows.append(row)
        print(f"fpras  dim={config['dimension']:3d} eps={config['epsilon']:.3f}  "
              f"scalar {row['scalar_seconds']*1e3:8.2f} ms   "
              f"batched {row['batched_seconds']*1e3:8.2f} ms   "
              f"speedup {row['speedup']:6.2f}x")
    return {"scheme": "fpras", "configs": rows}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="single repeat per config, headline configs only "
                             "(CI smoke mode)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"JSON baseline path (default: {DEFAULT_OUTPUT})")
    args = parser.parse_args()

    schemes = [bench_afpras(args.quick), bench_fpras(args.quick)]
    headline = next(row for row in schemes[0]["configs"] if row.get("headline"))
    baseline = {
        "benchmark": "vectorized sampling engine (scalar seed paths vs batched kernels)",
        "protocol": "best-of-N wall clock after one warm-up run, fixed seeds",
        "quick": args.quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "headline": {
            "config": AFPRAS_HEADLINE,
            "scalar_seconds": headline["scalar_seconds"],
            "batched_seconds": headline["batched_seconds"],
            "speedup": headline["speedup"],
        },
        "schemes": schemes,
    }
    args.output.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"\nheadline speedup: {headline['speedup']:.2f}x "
          f"(afpras dim=32, eps=0.02); baseline written to {args.output}")
    if headline["speedup"] < 5.0 and not args.quick:
        print("WARNING: headline speedup below the 5x acceptance threshold")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
