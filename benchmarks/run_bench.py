#!/usr/bin/env python
"""Perf harness: batched kernels, the annotation service, and the join engine.

Measures wall-clock time of the AFPRAS (Theorem 8.1) and the CQ(+,<) FPRAS
(Theorem 7.1) under both execution engines at fixed seeds and error levels
(the PR 1 scenario), the PR 2 service scenario (a repeated decision-support
query served cold versus warm), the PR 3 storage scenario (candidate
enumeration with lineage over a DataFiller-scale two-table equi-join,
10^5 rows per table, row engine versus columnar), the PR 4 sharded
scenario, the PR 5 serving scenario (the seeded loadgen workload
through the network server at N concurrent connections versus the serial
one-connection baseline, p50/p99 latency, QPS), and the PR 6 fusion
scenario: a many-lineage annotation request decided through per-group
kernel launches versus one block-diagonal fused pass per Monte-Carlo
round, plus the cost-based planner against the best manual
configuration, and the PR 8 mutation scenario: an append-heavy mixed
INSERT/DELETE/UPDATE version history replayed through the incremental
MVCC path (delta-maintained join frontiers, carried shard partitions)
versus rebuilding the database from scratch at every version, and the
PR 9 cluster scenario: the loadgen workload through the coordinator
fronting 1 versus N real worker subprocesses (the scaling curve of the
distributed serving tier), and the PR 10 cluster-observability
scenario: the identical seeded mix through a fully-lit 2-worker cluster
(trace propagation, tsdb history, fleet metrics) versus a dark one,
gated at 5% overhead alongside the in-process instrumentation gate.
Results go to a JSON baseline so future PRs have a perf trajectory to
beat.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py            # full run
    PYTHONPATH=src python benchmarks/run_bench.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/run_bench.py --output BENCH_PR3.json

The CI smoke run fails when the warm (cached) service path is not faster
than cold or when the columnar join is not faster than the row join; the
full run additionally enforces the 5x acceptance thresholds on all three
headlines.  See DESIGN.md ("Perf-measurement protocol").
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.certainty import (
    AfprasOptions,
    FprasOptions,
    afpras_measure,
    fpras_measure,
)
from repro.compile import configure_compile_cache
from repro.constraints.atoms import Comparison, Constraint
from repro.constraints.formula import And, Atom, disjunction
from repro.constraints.polynomials import Polynomial
from repro.constraints.translate import TranslationResult
from repro.datagen.experiments import EXPERIMENT_QUERIES, ExperimentScale, generate_sales_database
from repro.datagen.generic import ColumnSpec, TableSpec, generate_database
from repro.engine.candidates import enumerate_candidates
from repro.engine.mutate import execute_mutation
from repro.engine.sql.parser import parse_sql, parse_statement
from repro.engine.vectorized import FrontierCache
from repro.geometry.montecarlo import hoeffding_sample_size
from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.values import NumNull
from repro.service import AnnotationService

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_PR10.json"

#: The headline configuration of the acceptance criterion: the largest
#: dimension of bench_afpras_scaling.py at eps = 0.02.
AFPRAS_HEADLINE = {"dimension": 32, "epsilon": 0.02, "seed": 0}


def chain_translation(dimension: int) -> TranslationResult:
    """The chain ``z_0 < z_1 < ... < z_{d-1}`` (bench_afpras_scaling's input)."""
    names = tuple(f"z_c{i}" for i in range(dimension))
    atoms = tuple(
        Atom(Constraint(Polynomial.variable(names[i]) - Polynomial.variable(names[i + 1]),
                        Comparison.LT))
        for i in range(dimension - 1))
    return TranslationResult(
        formula=And(atoms),
        all_variables=names,
        relevant_variables=names,
        null_by_variable={name: NumNull(name.removeprefix("z_")) for name in names},
    )


def random_linear_translation(dimension: int, disjuncts: int,
                              atoms_per_disjunct: int, seed: int) -> TranslationResult:
    """A random DNF of linear constraints (bench_fpras_cq's input)."""
    generator = np.random.default_rng(seed)
    names = tuple(f"z_n{i}" for i in range(dimension))
    parts = []
    for _ in range(disjuncts):
        atoms = []
        for _ in range(atoms_per_disjunct):
            coefficients = generator.uniform(-1.0, 1.0, size=dimension)
            polynomial = Polynomial.constant(float(generator.uniform(-1.0, 1.0)))
            for name, coefficient in zip(names, coefficients):
                polynomial = polynomial + float(coefficient) * Polynomial.variable(name)
            atoms.append(Atom(Constraint(polynomial, Comparison.LE)))
        parts.append(And(tuple(atoms)))
    return TranslationResult(
        formula=disjunction(parts),
        all_variables=names,
        relevant_variables=names,
        null_by_variable={name: NumNull(name.removeprefix("z_")) for name in names},
    )


def _best_of(callable_, repeats: int) -> tuple[float, object]:
    """Minimum wall-clock of ``repeats`` runs (after one warm-up), plus a result."""
    callable_()  # warm caches: formula compilation, BLAS, scipy
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_afpras(quick: bool) -> dict:
    # Two repeats even in quick mode: the headline is a *ratio* the CI
    # regression gate compares against the committed trajectory, and
    # best-of-1 on a millisecond-scale denominator is too noisy to gate on.
    repeats = 2 if quick else 3
    configs = [dict(AFPRAS_HEADLINE, headline=True)]
    if not quick:
        configs += [
            {"dimension": 8, "epsilon": 0.02, "seed": 0},
            {"dimension": 4, "epsilon": 0.01, "seed": 0},
        ]
    rows = []
    for config in configs:
        translation = chain_translation(config["dimension"])
        row = {
            **config,
            "samples": hoeffding_sample_size(config["epsilon"]),
        }
        for engine in ("scalar", "batched"):
            options = AfprasOptions(epsilon=config["epsilon"], engine=engine)
            seconds, result = _best_of(
                lambda options=options, translation=translation, config=config:
                afpras_measure(translation, options, rng=config["seed"]),
                repeats)
            row[f"{engine}_seconds"] = seconds
            row[f"{engine}_value"] = result.value
        row["speedup"] = row["scalar_seconds"] / max(row["batched_seconds"], 1e-12)
        rows.append(row)
        print(f"afpras dim={config['dimension']:3d} eps={config['epsilon']:.3f}  "
              f"scalar {row['scalar_seconds']*1e3:8.2f} ms   "
              f"batched {row['batched_seconds']*1e3:8.2f} ms   "
              f"speedup {row['speedup']:6.2f}x")
    return {"scheme": "afpras", "configs": rows}


def bench_fpras(quick: bool) -> dict:
    repeats = 2 if quick else 3
    configs = [{"dimension": 5, "disjuncts": 3, "atoms": 2,
                "epsilon": 0.05, "seed": 5}]
    if not quick:
        configs.append({"dimension": 3, "disjuncts": 3, "atoms": 2,
                        "epsilon": 0.03, "seed": 3})
    rows = []
    for config in configs:
        translation = random_linear_translation(
            config["dimension"], config["disjuncts"], config["atoms"], config["seed"])
        row = dict(config)
        for engine in ("scalar", "batched"):
            options = FprasOptions(epsilon=config["epsilon"], engine=engine)
            seconds, result = _best_of(
                lambda options=options, translation=translation, config=config:
                fpras_measure(translation, options, rng=config["seed"]),
                repeats)
            row[f"{engine}_seconds"] = seconds
            row[f"{engine}_value"] = result.value
        row["speedup"] = row["scalar_seconds"] / max(row["batched_seconds"], 1e-12)
        rows.append(row)
        print(f"fpras  dim={config['dimension']:3d} eps={config['epsilon']:.3f}  "
              f"scalar {row['scalar_seconds']*1e3:8.2f} ms   "
              f"batched {row['batched_seconds']*1e3:8.2f} ms   "
              f"speedup {row['speedup']:6.2f}x")
    return {"scheme": "fpras", "configs": rows}


#: The PR 2 service headline: a repeated decision-support query, warm vs cold.
SERVICE_HEADLINE = {"query": "competitive_advantage", "epsilon": 0.05,
                    "seed": 0, "limit": 25}


def bench_service(quick: bool) -> dict:
    """Warm-vs-cold repeated-query serving through the annotation service.

    *Cold* is the first request on a fresh service with a flushed
    compile-formula memo (parse + plan + canonicalise + compile + sample);
    *warm* is the best repeat of the identical request, which the service
    answers from its parse/plan/certainty caches.  The ratio is the
    amortisation the service layer buys on repeated traffic.
    """
    scale = ExperimentScale(products=120, orders=120, markets=12, null_rate=0.15)
    database = generate_sales_database(scale, rng=7)
    repeats = 3 if quick else 5
    configs = [dict(SERVICE_HEADLINE, headline=True)]
    if not quick:
        configs.append({"query": "unfair_discount", "epsilon": 0.05,
                        "seed": 0, "limit": 25})
    rows = []
    for config in configs:
        sql = EXPERIMENT_QUERIES[config["query"]]

        def cold_once() -> tuple[float, object]:
            configure_compile_cache(clear=True)
            service = AnnotationService(database, epsilon=config["epsilon"])
            start = time.perf_counter()
            response = service.submit(sql, limit=config["limit"],
                                      seed=config["seed"])
            return time.perf_counter() - start, (service, response)

        cold_seconds, (service, cold_response) = cold_once()
        for _ in range(repeats - 1):
            seconds, (candidate_service, response) = cold_once()
            if seconds < cold_seconds:
                cold_seconds, service, cold_response = \
                    seconds, candidate_service, response

        warm_seconds = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            warm_response = service.submit(sql, limit=config["limit"],
                                           seed=config["seed"])
            warm_seconds = min(warm_seconds, time.perf_counter() - start)

        assert [a.certainty.value for a in cold_response.answers] == \
            [a.certainty.value for a in warm_response.answers], \
            "warm answers must equal cold answers"
        row = {
            **config,
            "answers": len(cold_response.answers),
            "lineage_groups": cold_response.stats.groups,
            "tuples_batched": cold_response.stats.tuples_batched,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "speedup": cold_seconds / max(warm_seconds, 1e-12),
        }
        rows.append(row)
        print(f"service {config['query']:<28} "
              f"cold {cold_seconds*1e3:8.2f} ms   warm {warm_seconds*1e3:8.2f} ms   "
              f"speedup {row['speedup']:8.2f}x")
    configure_compile_cache(clear=True)
    return {"scheme": "service", "configs": rows}


#: The PR 3 storage headline: a 10^5-row-per-table equi-join with an
#: arithmetic filter and lineage extraction, columnar engine vs row engine.
JOIN_HEADLINE = {"rows_per_table": 100_000, "null_rate": 0.02, "seed": 13,
                 "limit": 25}

JOIN_SQL = ("SELECT F.key FROM Fact F, Dim D "
            "WHERE F.key = D.key AND F.val * D.ref <= 25 LIMIT 25")


def _join_database(rows_per_table: int, null_rate: float, seed: int):
    """A two-table star: every Fact row matches exactly one Dim row."""
    schema = DatabaseSchema.of(
        RelationSchema.of("Fact", key="base", val="num"),
        RelationSchema.of("Dim", key="base", ref="num"),
    )
    keys = tuple(f"k{i}" for i in range(rows_per_table))
    specs = {
        "Fact": TableSpec(rows=rows_per_table, columns={
            "key": ColumnSpec(choices=keys),
            "val": ColumnSpec(uniform=(0.0, 10.0), null_rate=null_rate),
        }),
        "Dim": TableSpec(rows=rows_per_table, columns={
            "key": ColumnSpec(serial="k"),
            "ref": ColumnSpec(uniform=(0.0, 10.0), null_rate=null_rate),
        }),
    }
    return generate_database(schema, specs, rng=seed, backend="columnar")


def bench_join(quick: bool) -> dict:
    """Candidate enumeration over large tables: columnar vs row backend.

    The generated instance lands straight in columnar storage (vectorized
    column draws, no per-row validation) and is converted once to the row
    backend, so both engines see the identical snapshot.  The measured
    quantity is :func:`enumerate_candidates` wall clock -- selection
    pushdown, hash join, predicate pruning and lineage assembly -- which is
    exactly the phase the columnar layout exists to accelerate.
    """
    # Quick mode keeps the *headline config itself* (the regression gate
    # compares speedup ratios scenario-for-scenario, so quick CI runs and
    # committed full baselines must measure the same instance) and drops
    # only the secondary config and the extra repeats.
    configs = [dict(JOIN_HEADLINE, headline=True)]
    if not quick:
        configs.append({"rows_per_table": 100_000, "null_rate": 0.0,
                        "seed": 13, "limit": 25})
    rows = []
    for config in configs:
        columnar_database = _join_database(
            config["rows_per_table"], config["null_rate"], config["seed"])
        row_database = columnar_database.with_backend("rows")
        select = parse_sql(JOIN_SQL)
        # Two repeats in every mode: the headline ratio feeds the CI
        # regression gate, and its denominator is a ~300 ms measurement.
        repeats = 2

        def run(database):
            return enumerate_candidates(select, database,
                                        limit=config["limit"])

        columnar_seconds, columnar_result = _best_of(
            lambda: run(columnar_database), repeats)
        row_seconds, row_result = _best_of(lambda: run(row_database), repeats)
        assert [c.values for c in columnar_result] == \
            [c.values for c in row_result], "backends must agree on answers"
        assert [c.witnesses for c in columnar_result] == \
            [c.witnesses for c in row_result], "backends must agree on witnesses"
        row = {
            **config,
            "candidates": len(columnar_result),
            "total_witnesses": sum(c.witnesses for c in columnar_result),
            "rows_seconds": row_seconds,
            "columnar_seconds": columnar_seconds,
            "speedup": row_seconds / max(columnar_seconds, 1e-12),
        }
        rows.append(row)
        print(f"join   n={config['rows_per_table']:>7d} "
              f"null_rate={config['null_rate']:.2f}  "
              f"rows {row_seconds*1e3:8.2f} ms   "
              f"columnar {columnar_seconds*1e3:8.2f} ms   "
              f"speedup {row['speedup']:6.2f}x")
    return {"scheme": "join", "configs": rows}


#: The PR 4 execution headline: the PR 3 join scenario fanned across 4
#: key-aligned shards on 4 worker processes, against the single-core
#: columnar engine.  The acceptance threshold (>= 2.5x at 4 cores) is only
#: *enforced* on hosts with at least 4 CPUs; elsewhere the scenario is
#: still measured and recorded so the trajectory stays comparable.
SHARDED_HEADLINE = {"rows_per_table": 100_000, "null_rate": 0.02, "seed": 13,
                    "limit": 25, "shards": 4, "jobs": 4}


def bench_sharded(quick: bool) -> dict:
    """Sharded process-parallel enumeration vs the single-core columnar run.

    Both sides see the identical columnar snapshot and the identical query;
    the single-core side is exactly the PR 3 join headline's columnar
    measurement.  Partitions and the worker pool are warmed by the
    ``_best_of`` warm-up call, matching the service's steady state (the
    partition cache persists across requests, the pool across the process).
    """
    from repro.service.executor import shutdown_pools

    cpu_count = os.cpu_count() or 1
    configs = [dict(SHARDED_HEADLINE, headline=True)]
    if not quick:
        configs.append(dict(SHARDED_HEADLINE, shards=2, jobs=2))
    rows = []
    for config in configs:
        database = _join_database(
            config["rows_per_table"], config["null_rate"], config["seed"])
        select = parse_sql(JOIN_SQL)
        repeats = 2 if quick else 3

        def run(shards, jobs, config=config, database=database, select=select):
            return enumerate_candidates(select, database,
                                        limit=config["limit"],
                                        shards=shards, jobs=jobs)

        single_seconds, single_result = _best_of(
            lambda run=run: run(1, 1), repeats)
        sharded_seconds, sharded_result = _best_of(
            lambda run=run, config=config: run(config["shards"], config["jobs"]),
            repeats)
        assert [c.values for c in sharded_result] == \
            [c.values for c in single_result], \
            "sharded run must agree with the single-core run"
        assert [c.witnesses for c in sharded_result] == \
            [c.witnesses for c in single_result], \
            "sharded run must agree on witnesses"
        row = {
            **config,
            "cpu_count": cpu_count,
            "enforced": cpu_count >= 4,
            "candidates": len(sharded_result),
            "single_core_seconds": single_seconds,
            "sharded_seconds": sharded_seconds,
            "speedup": single_seconds / max(sharded_seconds, 1e-12),
        }
        rows.append(row)
        print(f"shard  n={config['rows_per_table']:>7d} "
              f"K={config['shards']} jobs={config['jobs']} "
              f"(cpus={cpu_count})  "
              f"1-core {single_seconds*1e3:8.2f} ms   "
              f"sharded {sharded_seconds*1e3:8.2f} ms   "
              f"speedup {row['speedup']:6.2f}x")
    shutdown_pools()
    return {"scheme": "sharded", "configs": rows}


#: The PR 5 serving headline: the seeded loadgen workload through the
#: network server, N concurrent connections against the one-connection
#: serial baseline.  Concurrency can only pay on a multi-core host (the
#: Monte-Carlo phase holds the GIL between NumPy kernels), so the
#: acceptance threshold is enforced at >= 2 cores; single-core containers
#: still measure and record the scenario.
SERVER_HEADLINE = {"requests": 120, "connections": 8, "seed": 42,
                   "adaptive_share": 0.1}


def bench_server(quick: bool) -> dict:
    """Server throughput/latency: concurrent connections vs serial baseline.

    Both sides drive the *identical* seeded workload at a fresh embedded
    server (own service, same database snapshot) after one warm-up pass,
    so the measurement is the steady serving state: caches hot, worker
    pool started, coalescing active.  Reported latency percentiles and QPS
    come from the concurrent run; the headline ratio is serial wall clock
    over concurrent wall clock.
    """
    from loadgen import build_workload, run_load

    from repro.server import EmbeddedServer
    from repro.service import AnnotationService, ServiceOptions

    cpu_count = os.cpu_count() or 1
    scale = ExperimentScale(products=120, orders=120, markets=12, null_rate=0.15)
    database = generate_sales_database(scale, rng=7)
    config = dict(SERVER_HEADLINE, headline=True)
    if quick:
        config["requests"] = 60
    workload = build_workload(config["seed"], config["requests"],
                              config["adaptive_share"])

    def measure(connections: int) -> tuple:
        service = AnnotationService(database, ServiceOptions(seed=0))
        with EmbeddedServer(service, workers=max(4, connections),
                            http=False) as server:
            run_load(server.host, server.port, workload, connections)  # warm-up
            report = run_load(server.host, server.port, workload, connections)
            coalesced = server.app.stats()["server"]["coalesced"]
        return report, coalesced

    serial_report, _ = measure(1)
    concurrent_report, coalesced = measure(config["connections"])
    row = {
        **config,
        "cpu_count": cpu_count,
        "enforced": cpu_count >= 2,
        "serial_seconds": serial_report.wall_seconds,
        "concurrent_seconds": concurrent_report.wall_seconds,
        "speedup": serial_report.wall_seconds
        / max(concurrent_report.wall_seconds, 1e-12),
        "qps": concurrent_report.qps,
        "p50_ms": concurrent_report.percentile(50) * 1e3,
        "p99_ms": concurrent_report.percentile(99) * 1e3,
        "coalesced": coalesced,
        "protocol_errors": (serial_report.protocol_errors
                            + concurrent_report.protocol_errors),
        "rejected": serial_report.rejected + concurrent_report.rejected,
    }
    print(f"server n={config['requests']:>4d} "
          f"conns={config['connections']} (cpus={cpu_count})  "
          f"serial {row['serial_seconds']*1e3:8.2f} ms   "
          f"concurrent {row['concurrent_seconds']*1e3:8.2f} ms   "
          f"speedup {row['speedup']:6.2f}x   "
          f"p50 {row['p50_ms']:6.2f} ms  p99 {row['p99_ms']:7.2f} ms  "
          f"{row['qps']:7.1f} qps")
    return {"scheme": "server", "configs": [row]}


#: The PR 6 fusion headline: one skeleton group per row (every tuple owns a
#: private null scaled by its own concrete factor, so the batch scheduler
#: cannot merge them), per-group kernel launches vs fused block-diagonal
#: passes, down the adaptive epsilon ladder at the service's default
#: epsilon.  The ladder is fusion's home turf *by design*: its coarse rungs
#: draw a handful of samples per group, so per-group execution pays one
#: kernel launch per group per rung while the fused path pays one per rung.
FUSION_HEADLINE = {"groups": 400, "epsilon": 0.05, "adaptive": True,
                   "seed": 0, "fusion": 64}


def _fusion_workload(groups: int):
    """A catalog whose every row produces its own lineage skeleton group."""
    schema = DatabaseSchema.of(
        RelationSchema.of("Catalog", id="base", price="num", factor="num"))
    database = Database(schema)
    for index in range(groups):
        # Distinct concrete factors make the canonical lineages distinct:
        # price_i * factor_i <= 8 never shares a skeleton across rows.
        database.add("Catalog", (f"c{index}", NumNull(f"price{index}"),
                                 0.5 + index * 0.01))
    select = parse_sql("SELECT C.id FROM Catalog C "
                       "WHERE C.price * C.factor <= 8")
    candidates = enumerate_candidates(select, database)
    return database, select, candidates


def bench_fusion(quick: bool) -> dict:
    """Fused vs per-group Monte-Carlo execution on a many-lineage request.

    The headline runs the adaptive epsilon ladder (fused per rung); a
    secondary unenforced row records the single-pass estimate at the same
    epsilon, where per-group sampling -- which fusion deliberately keeps
    bit-identical and therefore cannot amortise -- bounds the win lower.
    Candidates are pre-enumerated and passed into ``submit`` so both sides
    time exactly the Monte-Carlo phase the fusion targets; every timed run
    uses a fresh service (the result cache would otherwise serve repeat
    runs).  The same workload also gates the cost-based planner: ``auto``
    must land within 10% of the best manually-picked configuration.
    """
    config = dict(FUSION_HEADLINE, headline=True)
    if quick:
        config["groups"] = 120
    # More repeats than the other scenarios: the planner-vs-best-manual
    # gate compares runs tens of milliseconds long, where dispatch noise
    # is a visible fraction of the measurement.
    repeats = 3 if quick else 5
    database, select, candidates = _fusion_workload(config["groups"])

    def timed(**kwargs):
        def once():
            service = AnnotationService(database, epsilon=config["epsilon"],
                                        seed=config["seed"])
            return service.submit(select, candidates=candidates,
                                  method="afpras",
                                  adaptive=config["adaptive"], **kwargs)
        return _best_of(once, repeats)

    solo_seconds, solo_response = timed()
    fused_seconds, fused_response = timed(fusion=config["fusion"])
    if [a.certainty for a in solo_response.answers] != \
            [a.certainty for a in fused_response.answers]:
        raise SystemExit("BUG: fused answers diverged from per-group answers")

    manual_matrix = {"per-group": {}, "fused-8": {"fusion": 8},
                     f"fused-{config['fusion']}": {"fusion": config["fusion"]}}
    manual_seconds = {name: timed(**kwargs)[0]
                      for name, kwargs in manual_matrix.items()}
    best_manual = min(manual_seconds, key=manual_seconds.get)
    auto_seconds, auto_response = timed(planner="auto")
    if [a.certainty for a in solo_response.answers] != \
            [a.certainty for a in auto_response.answers]:
        raise SystemExit("BUG: planner auto changed the answers")

    row = {
        **config,
        "solo_seconds": solo_seconds,
        "fused_seconds": fused_seconds,
        "speedup": solo_seconds / max(fused_seconds, 1e-12),
        "fused_kernels": fused_response.stats.kernels_launched,
        "tuples_fused": fused_response.stats.tuples_fused,
        "manual_seconds": manual_seconds,
        "best_manual": best_manual,
        "best_manual_seconds": manual_seconds[best_manual],
        "auto_seconds": auto_seconds,
        "auto_ratio": auto_seconds / max(manual_seconds[best_manual], 1e-12),
        "auto_plan": auto_response.stats.planned,
    }
    print(f"fusion G={config['groups']:>4d} eps={config['epsilon']} "
          f"adaptive  per-group {solo_seconds*1e3:8.2f} ms   "
          f"fused {fused_seconds*1e3:8.2f} ms   "
          f"speedup {row['speedup']:6.2f}x   "
          f"({row['fused_kernels']} fused launches)   "
          f"auto {auto_seconds*1e3:8.2f} ms "
          f"({row['auto_ratio']:.2f}x best manual {best_manual})")

    # The single-pass estimate at the same epsilon, for the record: the
    # per-group sample draws dominate here, so the fused win is smaller
    # and this row never gates.
    def single_pass(**kwargs):
        def once():
            service = AnnotationService(database, epsilon=config["epsilon"],
                                        seed=config["seed"])
            return service.submit(select, candidates=candidates,
                                  method="afpras", **kwargs)
        return _best_of(once, repeats)

    flat_solo, _ = single_pass()
    flat_fused, _ = single_pass(fusion=config["fusion"])
    flat_row = {
        "groups": config["groups"], "epsilon": config["epsilon"],
        "adaptive": False, "seed": config["seed"],
        "fusion": config["fusion"], "enforced": False,
        "solo_seconds": flat_solo, "fused_seconds": flat_fused,
        "speedup": flat_solo / max(flat_fused, 1e-12),
    }
    print(f"fusion G={config['groups']:>4d} eps={config['epsilon']} "
          f"one-pass  per-group {flat_solo*1e3:8.2f} ms   "
          f"fused {flat_fused*1e3:8.2f} ms   "
          f"speedup {flat_row['speedup']:6.2f}x   (unenforced)")
    return {"scheme": "fusion", "configs": [row, flat_row]}


#: The PR 8 mutation headline: an append-heavy mixed version history over
#: the two-table join instance, replayed query-per-version through the
#: incremental MVCC path (append segments, delta-maintained frontier,
#: carried shard partitions) versus a from-scratch rebuild of every
#: version.  Occasional DELETE/UPDATE versions keep the rebuild paths in
#: the mix -- the live data plane has to win on the blend, not just on
#: pure appends.
MUTATION_HEADLINE = {"base_rows": 20_000, "versions": 12,
                     "appends_per_version": 64, "null_rate": 0.02,
                     "seed": 21, "limit": 25}

MUTATION_SQL = ("SELECT F.key FROM Fact F, Dim D "
                "WHERE F.key = D.key AND F.val * D.ref <= 25 LIMIT 25")


def _mutation_script(config) -> list:
    """The version history: mostly multi-row INSERTs, every fifth version
    a predicated DELETE or arithmetic UPDATE (which invalidate the cached
    frontier and force the epoch-bump paths)."""
    rng = np.random.default_rng(config["seed"])
    statements = []
    for version in range(config["versions"]):
        if version and version % 5 == 0:
            if version % 10 == 0:
                statements.append("DELETE FROM Fact WHERE val >= 9.9")
            else:
                # Matching is three-valued: rows whose val is a null are
                # never certainly >= 9.5, so the arithmetic only ever
                # reads concrete operands.
                statements.append(
                    "UPDATE Fact SET val = val - 0.05 WHERE val >= 9.5")
            continue
        rows = []
        for _ in range(config["appends_per_version"]):
            key = f"k{int(rng.integers(0, config['base_rows']))}"
            rows.append(f"('{key}', {float(rng.uniform(0.0, 10.0)):.6f})")
        statements.append("INSERT INTO Fact VALUES " + ", ".join(rows))
    return [parse_statement(statement) for statement in statements]


def bench_mutations(quick: bool) -> dict:
    """Incremental mutation replay vs rebuild-per-version.

    Both sides answer the identical query at every committed version and
    must return bit-identical candidates.  The incremental side pays
    ``execute_mutation`` plus a delta-maintained enumeration per version;
    the rebuild side pays a from-scratch :meth:`Database.from_dict` of
    the same content plus a cold enumeration -- which is exactly what a
    data plane without MVCC snapshots would have to do.  Statements are
    parsed outside the timed region (both sides would pay the same
    parse).
    """
    config = dict(MUTATION_HEADLINE, headline=True)
    repeats = 2
    base = _join_database(config["base_rows"], config["null_rate"],
                          config["seed"])
    select = parse_sql(MUTATION_SQL)
    statements = _mutation_script(config)

    # Pre-compute the per-version contents for the rebuild side (content
    # extraction is not what either side is selling; the rebuild itself
    # is timed).
    contents = []
    chain = base
    for statement in statements:
        chain, _, _ = execute_mutation(statement, chain)
        contents.append({name: chain.relation(name).tuples()
                         for name in chain.relation_names()})
    assert chain.data_version == len(statements)

    def incremental():
        frontier_cache = FrontierCache()
        chain = base
        results = []
        for statement in statements:
            chain, _, _ = execute_mutation(statement, chain)
            results.append(enumerate_candidates(
                select, chain, limit=config["limit"],
                frontier_cache=frontier_cache))
        return results

    def rebuild():
        results = []
        for content in contents:
            version = Database.from_dict(base.schema, content,
                                         backend="columnar")
            results.append(enumerate_candidates(select, version,
                                                limit=config["limit"]))
        return results

    incremental_seconds, incremental_results = _best_of(incremental, repeats)
    rebuild_seconds, rebuild_results = _best_of(rebuild, repeats)
    for version, (fast, slow) in enumerate(zip(incremental_results,
                                               rebuild_results)):
        assert [c.values for c in fast] == [c.values for c in slow], \
            f"version {version + 1}: incremental diverged from rebuild"
        assert [c.witnesses for c in fast] == [c.witnesses for c in slow], \
            f"version {version + 1}: witness sets diverged"
    row = {
        **config,
        "statements": len(statements),
        "final_rows": len(chain.relation("Fact")),
        "incremental_seconds": incremental_seconds,
        "rebuild_seconds": rebuild_seconds,
        "speedup": rebuild_seconds / max(incremental_seconds, 1e-12),
    }
    print(f"mutate n={config['base_rows']:>7d} "
          f"V={config['versions']} +{config['appends_per_version']}/v  "
          f"rebuild {rebuild_seconds*1e3:8.2f} ms   "
          f"incremental {incremental_seconds*1e3:8.2f} ms   "
          f"speedup {row['speedup']:6.2f}x")
    return {"scheme": "mutations", "configs": [row]}


#: The PR 9 cluster headline: the seeded loadgen workload through the
#: coordinator fronting real ``repro server`` worker subprocesses, at 1
#: worker versus N.  Scaling across workers needs cores for the worker
#: processes, so the threshold is only enforced at >= 4 CPUs; smaller
#: hosts still measure and record the curve.
CLUSTER_HEADLINE = {"requests": 96, "connections": 8, "seed": 42,
                    "adaptive_share": 0.1, "workers": 3}


def bench_cluster(quick: bool) -> dict:
    """Cluster scaling curve: coordinator + N worker subprocesses vs one.

    Every point drives the identical seeded read-only workload at the
    coordinator's front door after one warm-up pass, so worker caches are
    hot and routing is steady -- the measured quantity is how throughput
    moves as consistent-hash routing spreads query families over more
    worker processes.  The workload is the PR 5 server scenario's, so the
    1-worker point is directly comparable to ``server_headline`` (plus
    one network hop of coordinator overhead).
    """
    import tempfile

    from loadgen import build_workload, run_load

    from repro.cluster import EmbeddedCluster, worker_argv
    from repro.cluster.coordinator import defaults_from_options
    from repro.relational.csv_io import save_database
    from repro.service import ServiceOptions

    cpu_count = os.cpu_count() or 1
    scale = ExperimentScale(products=120, orders=120, markets=12, null_rate=0.15)
    database = generate_sales_database(scale, rng=7)
    config = dict(CLUSTER_HEADLINE, headline=True)
    if quick:
        config["requests"] = 48
        config["workers"] = 2
    workload = build_workload(config["seed"], config["requests"],
                              config["adaptive_share"])

    curve = []
    with tempfile.TemporaryDirectory() as tmp:
        save_database(database, tmp)
        argv = worker_argv(tmp, ["--seed", "0", "--backend", "columnar",
                                 "--epsilon", "0.1"])
        defaults = defaults_from_options(ServiceOptions(epsilon=0.1, seed=0))
        for workers in sorted({1, config["workers"]}):
            with EmbeddedCluster(worker_argv=argv, workers=workers,
                                 defaults=defaults,
                                 http=False, health_interval=1.0) as cluster:
                run_load(cluster.host, cluster.port, workload,
                         config["connections"])  # warm-up
                report = run_load(cluster.host, cluster.port, workload,
                                  config["connections"])
                stats = cluster.submit(cluster.coordinator.stats())
            point = {
                "workers": workers,
                "wall_seconds": report.wall_seconds,
                "qps": report.qps,
                "p50_ms": report.percentile(50) * 1e3,
                "p99_ms": report.percentile(99) * 1e3,
                "coalesced": stats["coordinator"]["coalesced"],
                "protocol_errors": report.protocol_errors,
                "rejected": report.rejected,
            }
            curve.append(point)
            print(f"cluster n={config['requests']:>4d} "
                  f"conns={config['connections']} workers={workers} "
                  f"(cpus={cpu_count})  "
                  f"wall {point['wall_seconds']*1e3:8.2f} ms   "
                  f"p50 {point['p50_ms']:6.2f} ms  "
                  f"p99 {point['p99_ms']:7.2f} ms  "
                  f"{point['qps']:7.1f} qps")
    row = {
        **config,
        "cpu_count": cpu_count,
        "enforced": cpu_count >= 4,
        "curve": curve,
        "speedup": curve[0]["wall_seconds"] / max(curve[-1]["wall_seconds"],
                                                  1e-12),
        "qps": curve[-1]["qps"],
        "p50_ms": curve[-1]["p50_ms"],
        "p99_ms": curve[-1]["p99_ms"],
        "protocol_errors": sum(p["protocol_errors"] for p in curve),
        "rejected": sum(p["rejected"] for p in curve),
    }
    print(f"cluster scaling 1 -> {config['workers']} workers: "
          f"{row['speedup']:.2f}x"
          + ("" if row["enforced"] else "   (unenforced on this host)"))
    return {"scheme": "cluster", "configs": [row]}


OBS_HEADLINE = {"queries": 12, "epsilon": 0.1, "seed": 2}


def bench_obs(quick: bool) -> dict:
    """Observability overhead: instrumented serving versus the bare service.

    Both sides run the identical request mix on identical fresh services;
    the instrumented side additionally carries a live
    :class:`~repro.obs.Recorder` (latency/phase histograms + slow-query
    log) and per-request span tracing.  The ratio is the PR 7 acceptance
    gate: metrics + tracing must cost at most 5% of end-to-end latency,
    and must never change answers.
    """
    from repro.obs import Recorder

    scale = ExperimentScale(products=150, orders=150, markets=20,
                            null_rate=0.15)
    database = generate_sales_database(scale, rng=7)
    config = dict(OBS_HEADLINE)
    repeats = 10 if quick else 14
    queries = [EXPERIMENT_QUERIES[name]
               for name in sorted(EXPERIMENT_QUERIES)]

    # One cold compile up front; after that every run does the same warm
    # parse/plan/enumerate/estimate work on a fresh service.  Clearing the
    # compile memo per run would measure compiler variance, not the
    # instrumentation overhead this gate is about.
    configure_compile_cache(clear=True)

    def make_service(instrumented: bool):
        return AnnotationService(
            database, epsilon=config["epsilon"],
            recorder=Recorder() if instrumented else None)

    def one_request(service, instrumented: bool, index: int):
        start = time.perf_counter()
        response = service.submit(
            queries[index % len(queries)], limit=25,
            seed=config["seed"] * 100 + index,
            trace=True if instrumented else None)
        elapsed = time.perf_counter() - start
        return elapsed, [a.certainty.value for a in response.answers]

    # Noise discipline, because this gate is a tight <= 5%: the two sides
    # run **paired per request** (bare request i, instrumented request i,
    # back to back, with the order alternating per repeat) so CPU frequency
    # and scheduler drift land on both sides of every pair instead of on
    # whichever side owned that ~100 ms block; the cyclic GC runs between
    # repeats instead of inside timed requests (the instrumented side
    # allocates more, which would otherwise bill collector pauses to it);
    # and the comparison sums **per-request minima** across repeats --
    # taking the best whole run instead would let one preempted request
    # anywhere in a block spoil that block's total.
    for instrumented in (False, True):  # warm the compile memo
        service = make_service(instrumented)
        for index in range(config["queries"]):
            one_request(service, instrumented, index)
    best = {False: [float("inf")] * config["queries"],
            True: [float("inf")] * config["queries"]}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for repeat in range(repeats):
            services = {False: make_service(False),
                        True: make_service(True)}
            answers = {False: [], True: []}
            order = (False, True) if repeat % 2 == 0 else (True, False)
            gc.collect()
            for index in range(config["queries"]):
                for instrumented in order:
                    elapsed, values = one_request(
                        services[instrumented], instrumented, index)
                    if elapsed < best[instrumented][index]:
                        best[instrumented][index] = elapsed
                    answers[instrumented].append(values)
            if answers[False] != answers[True]:
                raise AssertionError(
                    "observability perturbed answers: traced/instrumented "
                    "runs must be bit-identical to bare runs")
    finally:
        if gc_was_enabled:
            gc.enable()
    bare_seconds = sum(best[False])
    instrumented_seconds = sum(best[True])

    # The same discipline through the coordinator path (PR 10): a live
    # 2-worker cluster with trace propagation, the tsdb sampler, and fleet
    # metrics on, versus a dark cluster (observe=False strips the recorder,
    # tracing, tsdb and alert evaluation from the coordinator and every
    # worker).  Both clusters serve the identical seeded mix over real
    # sockets; the gate bounds the *distributed* instrumentation -- context
    # injection on every forwarded frame, span stitching, per-worker
    # relabelled scrapes -- not just the in-process recorder.
    #
    # One extra layer of noise discipline here: an embedded cluster is a
    # dozen threads (event loops, executor pools, the sampler) whose lazy
    # spawn order and OS placement are decided at startup -- a single
    # unlucky instantiation can sit a consistent few hundred microseconds
    # per request above its twin for its whole lifetime, which per-request
    # minima *within* that instance can never wash out.  So the comparison
    # runs as independent **rounds**, each with its own freshly built dark
    # and lit clusters and its own per-request minima, and gates on the
    # *best round's* overhead ratio: instrumentation cost is a constant
    # property of the code, scheduler contamination only ever inflates a
    # round, so the least-contaminated round is the faithful estimate and
    # a flake requires every round to be contaminated at once.
    from repro.client import ReproClient
    from repro.cluster import EmbeddedCluster

    workers = 2
    cluster_rounds = 2 if quick else 3
    cluster_repeats = max(4, repeats // 3)

    def cluster_services():
        return [AnnotationService(database, epsilon=config["epsilon"])
                for _ in range(workers)]

    round_results: list[tuple[float, float]] = []
    for cluster_round in range(cluster_rounds):
        best_cluster = {False: [float("inf")] * config["queries"],
                        True: [float("inf")] * config["queries"]}
        with EmbeddedCluster(cluster_services(), observe=False) as dark, \
                EmbeddedCluster(cluster_services(), observe=True) as lit, \
                ReproClient(dark.host, dark.port, timeout=60.0) as dark_client, \
                ReproClient(lit.host, lit.port, timeout=60.0) as lit_client:
            clients = {False: dark_client, True: lit_client}

            def cluster_request(instrumented: bool, index: int):
                start = time.perf_counter()
                result = clients[instrumented].query(
                    queries[index % len(queries)], limit=25,
                    seed=config["seed"] * 100 + index)
                elapsed = time.perf_counter() - start
                return elapsed, [(a.values, a.certainty.value)
                                 for a in result.answers]

            for instrumented in (False, True):  # warm-up both clusters
                for index in range(config["queries"]):
                    cluster_request(instrumented, index)
            gc.disable()
            try:
                for repeat in range(cluster_repeats):
                    order = (False, True) \
                        if (repeat + cluster_round) % 2 == 0 else (True, False)
                    cluster_answers = {False: [], True: []}
                    gc.collect()
                    for index in range(config["queries"]):
                        for instrumented in order:
                            elapsed, values = cluster_request(
                                instrumented, index)
                            if elapsed < best_cluster[instrumented][index]:
                                best_cluster[instrumented][index] = elapsed
                            cluster_answers[instrumented].append(values)
                    if cluster_answers[False] != cluster_answers[True]:
                        raise AssertionError(
                            "cluster observability perturbed answers: traced "
                            "coordinator runs must be bit-identical to "
                            "dark-cluster runs")
            finally:
                if gc_was_enabled:
                    gc.enable()
        round_results.append((sum(best_cluster[False]),
                              sum(best_cluster[True])))
    cluster_bare, cluster_instrumented = min(
        round_results, key=lambda pair: pair[1] / max(pair[0], 1e-12))

    row = {
        **config, "headline": True,
        "bare_seconds": bare_seconds,
        "instrumented_seconds": instrumented_seconds,
        "overhead_ratio": instrumented_seconds / max(bare_seconds, 1e-12),
        "workers": workers,
        "cluster_bare_seconds": cluster_bare,
        "cluster_instrumented_seconds": cluster_instrumented,
        "cluster_overhead_ratio":
            cluster_instrumented / max(cluster_bare, 1e-12),
    }
    print(f"obs     Q={config['queries']:>4d} eps={config['epsilon']} "
          f"bare {bare_seconds*1e3:8.2f} ms   "
          f"instrumented {instrumented_seconds*1e3:8.2f} ms   "
          f"overhead {100.0 * (row['overhead_ratio'] - 1.0):+6.2f}%")
    print(f"obs     cluster (coordinator + {workers} workers)  "
          f"bare {cluster_bare*1e3:8.2f} ms   "
          f"instrumented {cluster_instrumented*1e3:8.2f} ms   "
          f"overhead {100.0 * (row['cluster_overhead_ratio'] - 1.0):+6.2f}%")
    return {"scheme": "obs", "configs": [row]}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="single repeat per config, headline configs only "
                             "(CI smoke mode)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"JSON baseline path (default: {DEFAULT_OUTPUT})")
    args = parser.parse_args()

    schemes = [bench_afpras(args.quick), bench_fpras(args.quick),
               bench_service(args.quick), bench_join(args.quick),
               bench_sharded(args.quick), bench_server(args.quick),
               bench_fusion(args.quick), bench_obs(args.quick),
               bench_mutations(args.quick), bench_cluster(args.quick)]
    headline = next(row for row in schemes[0]["configs"] if row.get("headline"))
    service_headline = next(row for row in schemes[2]["configs"]
                            if row.get("headline"))
    join_headline = next(row for row in schemes[3]["configs"]
                         if row.get("headline"))
    sharded_headline = next(row for row in schemes[4]["configs"]
                            if row.get("headline"))
    server_headline = next(row for row in schemes[5]["configs"]
                           if row.get("headline"))
    fusion_headline = next(row for row in schemes[6]["configs"]
                           if row.get("headline"))
    obs_headline = next(row for row in schemes[7]["configs"]
                        if row.get("headline"))
    mutation_headline = next(row for row in schemes[8]["configs"]
                             if row.get("headline"))
    cluster_headline = next(row for row in schemes[9]["configs"]
                            if row.get("headline"))
    baseline = {
        "benchmark": "columnar vs row join engine, annotation service "
                     "(warm vs cold), vectorized sampling kernels "
                     "(scalar vs batched)",
        "protocol": "best-of-N wall clock, fixed seeds; service cold runs "
                    "flush every cache, warm runs repeat the identical "
                    "request; join runs share one generated snapshot "
                    "across backends",
        "quick": args.quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "headline": {
            "config": AFPRAS_HEADLINE,
            "scalar_seconds": headline["scalar_seconds"],
            "batched_seconds": headline["batched_seconds"],
            "speedup": headline["speedup"],
        },
        "service_headline": {
            "config": SERVICE_HEADLINE,
            "cold_seconds": service_headline["cold_seconds"],
            "warm_seconds": service_headline["warm_seconds"],
            "speedup": service_headline["speedup"],
        },
        "join_headline": {
            "config": {key: join_headline[key]
                       for key in ("rows_per_table", "null_rate", "seed", "limit")},
            "sql": JOIN_SQL,
            "rows_seconds": join_headline["rows_seconds"],
            "columnar_seconds": join_headline["columnar_seconds"],
            "speedup": join_headline["speedup"],
        },
        "sharded_headline": {
            "config": {key: sharded_headline[key]
                       for key in ("rows_per_table", "null_rate", "seed",
                                   "limit", "shards", "jobs")},
            "sql": JOIN_SQL,
            "cpu_count": sharded_headline["cpu_count"],
            "enforced": sharded_headline["enforced"],
            "single_core_seconds": sharded_headline["single_core_seconds"],
            "sharded_seconds": sharded_headline["sharded_seconds"],
            "speedup": sharded_headline["speedup"],
        },
        "server_headline": {
            "config": {key: server_headline[key]
                       for key in ("requests", "connections", "seed",
                                   "adaptive_share")},
            "cpu_count": server_headline["cpu_count"],
            "enforced": server_headline["enforced"],
            "serial_seconds": server_headline["serial_seconds"],
            "concurrent_seconds": server_headline["concurrent_seconds"],
            "speedup": server_headline["speedup"],
            "qps": server_headline["qps"],
            "p50_ms": server_headline["p50_ms"],
            "p99_ms": server_headline["p99_ms"],
            "coalesced": server_headline["coalesced"],
            "protocol_errors": server_headline["protocol_errors"],
        },
        "fusion_headline": {
            "config": {key: fusion_headline[key]
                       for key in ("groups", "epsilon", "adaptive", "seed",
                                   "fusion")},
            "solo_seconds": fusion_headline["solo_seconds"],
            "fused_seconds": fusion_headline["fused_seconds"],
            "speedup": fusion_headline["speedup"],
            "fused_kernels": fusion_headline["fused_kernels"],
            "auto_seconds": fusion_headline["auto_seconds"],
            "best_manual": fusion_headline["best_manual"],
            "best_manual_seconds": fusion_headline["best_manual_seconds"],
            "auto_ratio": fusion_headline["auto_ratio"],
        },
        "obs_headline": {
            "config": OBS_HEADLINE,
            "bare_seconds": obs_headline["bare_seconds"],
            "instrumented_seconds": obs_headline["instrumented_seconds"],
            "overhead_ratio": obs_headline["overhead_ratio"],
            "workers": obs_headline["workers"],
            "cluster_bare_seconds": obs_headline["cluster_bare_seconds"],
            "cluster_instrumented_seconds":
                obs_headline["cluster_instrumented_seconds"],
            "cluster_overhead_ratio": obs_headline["cluster_overhead_ratio"],
        },
        "mutation_headline": {
            "config": MUTATION_HEADLINE,
            "sql": MUTATION_SQL,
            "statements": mutation_headline["statements"],
            "incremental_seconds": mutation_headline["incremental_seconds"],
            "rebuild_seconds": mutation_headline["rebuild_seconds"],
            "speedup": mutation_headline["speedup"],
        },
        "cluster_headline": {
            "config": {key: cluster_headline[key]
                       for key in ("requests", "connections", "seed",
                                   "adaptive_share", "workers")},
            "cpu_count": cluster_headline["cpu_count"],
            "enforced": cluster_headline["enforced"],
            "curve": cluster_headline["curve"],
            "speedup": cluster_headline["speedup"],
            "qps": cluster_headline["qps"],
            "p50_ms": cluster_headline["p50_ms"],
            "p99_ms": cluster_headline["p99_ms"],
            "protocol_errors": cluster_headline["protocol_errors"],
        },
        "schemes": schemes,
    }
    args.output.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"\nkernel headline: {headline['speedup']:.2f}x "
          f"(afpras dim=32, eps=0.02); service headline: "
          f"{service_headline['speedup']:.2f}x warm-vs-cold "
          f"({SERVICE_HEADLINE['query']}); join headline: "
          f"{join_headline['speedup']:.2f}x columnar-vs-rows "
          f"(n={join_headline['rows_per_table']}); sharded headline: "
          f"{sharded_headline['speedup']:.2f}x over single-core "
          f"(K={SHARDED_HEADLINE['shards']}, jobs={SHARDED_HEADLINE['jobs']}, "
          f"cpus={sharded_headline['cpu_count']}); server headline: "
          f"{server_headline['speedup']:.2f}x concurrent-vs-serial "
          f"({SERVER_HEADLINE['connections']} connections, "
          f"p99 {server_headline['p99_ms']:.1f} ms, "
          f"{server_headline['qps']:.1f} qps); fusion headline: "
          f"{fusion_headline['speedup']:.2f}x fused-vs-per-group "
          f"(G={fusion_headline['groups']}, adaptive ladder, planner auto at "
          f"{fusion_headline['auto_ratio']:.2f}x best manual); "
          f"obs headline: "
          f"{100.0 * (obs_headline['overhead_ratio'] - 1.0):+.2f}% "
          f"metrics+tracing overhead "
          f"({100.0 * (obs_headline['cluster_overhead_ratio'] - 1.0):+.2f}% "
          f"through the coordinator); mutation headline: "
          f"{mutation_headline['speedup']:.2f}x incremental-vs-rebuild "
          f"(V={MUTATION_HEADLINE['versions']}, "
          f"+{MUTATION_HEADLINE['appends_per_version']}/version); "
          f"cluster headline: {cluster_headline['speedup']:.2f}x at "
          f"{cluster_headline['workers']} workers "
          f"({cluster_headline['qps']:.1f} qps, "
          f"p99 {cluster_headline['p99_ms']:.1f} ms); "
          f"baseline written to {args.output}")
    failed = False
    if obs_headline["overhead_ratio"] > 1.05:
        print("FAIL: metrics + tracing cost more than 5% of end-to-end "
              f"latency ({100.0 * (obs_headline['overhead_ratio'] - 1.0):.2f}% "
              "overhead on the repeated decision-support mix)")
        failed = True
    if obs_headline["cluster_overhead_ratio"] > 1.05:
        print("FAIL: cluster observability (trace propagation + fleet "
              "metrics + tsdb) costs more than 5% of end-to-end latency "
              "through the coordinator "
              f"({100.0 * (obs_headline['cluster_overhead_ratio'] - 1.0):.2f}% "
              f"overhead at {obs_headline['workers']} workers)")
        failed = True
    if fusion_headline["speedup"] <= 1.0:
        print("FAIL: fused kernel execution is not faster than per-group "
              "launches on the many-lineage workload")
        failed = True
    if fusion_headline["auto_ratio"] > 1.10:
        print("FAIL: planner auto loses more than 10% to the best manual "
              f"configuration ({fusion_headline['auto_ratio']:.2f}x vs "
              f"{fusion_headline['best_manual']})")
        failed = True
    if service_headline["speedup"] <= 1.0:
        print("FAIL: cached (warm) service path is not faster than cold")
        failed = True
    if mutation_headline["speedup"] <= 1.0:
        print("FAIL: incremental mutation replay is not faster than "
              "rebuilding every version from scratch")
        failed = True
    if join_headline["speedup"] <= 1.0:
        print("FAIL: columnar join engine is not faster than the row engine")
        failed = True
    if server_headline["protocol_errors"] or server_headline["rejected"]:
        print("FAIL: the server bench saw protocol errors or rejections "
              f"({server_headline['protocol_errors']} errors, "
              f"{server_headline['rejected']} rejected)")
        failed = True
    if server_headline["enforced"] and server_headline["speedup"] <= 1.0:
        print("FAIL: concurrent serving is not faster than serial on a "
              f"{server_headline['cpu_count']}-core host")
        failed = True
    elif not server_headline["enforced"]:
        print(f"NOTE: server concurrency threshold not enforced on this "
              f"{server_headline['cpu_count']}-core host (needs >= 2); "
              "measured for the record only")
    if cluster_headline["protocol_errors"] or cluster_headline["rejected"]:
        print("FAIL: the cluster bench saw protocol errors or rejections "
              f"({cluster_headline['protocol_errors']} errors, "
              f"{cluster_headline['rejected']} rejected)")
        failed = True
    if cluster_headline["enforced"] and cluster_headline["speedup"] <= 1.0:
        print("FAIL: the cluster is not faster at "
              f"{cluster_headline['workers']} workers than at 1 on a "
              f"{cluster_headline['cpu_count']}-core host")
        failed = True
    elif not cluster_headline["enforced"]:
        print(f"NOTE: cluster scaling threshold not enforced on this "
              f"{cluster_headline['cpu_count']}-core host (needs >= 4); "
              "measured for the record only")
    if not args.quick:
        if fusion_headline["speedup"] < 2.0:
            print("FAIL: fused execution below the 2x acceptance threshold "
                  "on the many-lineage headline")
            failed = True
        if headline["speedup"] < 5.0:
            print("WARNING: kernel headline speedup below the 5x acceptance threshold")
            failed = True
        if service_headline["speedup"] < 5.0:
            print("WARNING: service warm-vs-cold speedup below the 5x "
                  "acceptance threshold")
            failed = True
        if join_headline["speedup"] < 5.0:
            print("WARNING: columnar join speedup below the 5x acceptance "
                  "threshold")
            failed = True
        if sharded_headline["enforced"]:
            if sharded_headline["speedup"] < 2.5:
                # Warning-only until a >= 4-core run has recorded an
                # enforced committed baseline (the threshold has only ever
                # been *measured* on a 1-core container so far); set
                # REPRO_ENFORCE_SHARDED=1 to make it fatal.  The 20%
                # trajectory gate in check_regression.py starts protecting
                # the sharded headline automatically once such a baseline
                # lands.
                fatal = os.environ.get("REPRO_ENFORCE_SHARDED") == "1"
                print(f"{'FAIL' if fatal else 'WARNING'}: sharded execution "
                      "below the 2.5x acceptance threshold at >= 4 cores")
                failed = failed or fatal
        else:
            print(f"NOTE: sharded 2.5x threshold not enforced on this "
                  f"{sharded_headline['cpu_count']}-core host (needs >= 4); "
                  "measured for the record only")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
