"""Figure 1, left panel: AFPRAS runtime vs epsilon for *Competitive Advantage*.

Paper query::

    SELECT P.seg FROM Products P, Market M
    WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp * M.dis LIMIT 25

The paper reports sub-second times for eps >= 0.1 growing to a few seconds
around eps = 0.01 on its ~200K-tuple instance; the shape (cost proportional
to 1/eps^2 per candidate) is what this benchmark regenerates.
"""

from __future__ import annotations

import pytest

from figure1_common import (
    BENCHMARK_EPSILONS,
    annotate_candidates,
    bench_candidates,
    figure1_series,
    print_series,
)

QUERY = "competitive_advantage"


@pytest.mark.parametrize("epsilon", BENCHMARK_EPSILONS)
def test_afpras_annotation_time(benchmark, epsilon):
    """Timed AFPRAS pass over the query's candidates at one error level."""
    bench_candidates(QUERY)  # warm the candidate cache outside the timing loop
    benchmark.pedantic(annotate_candidates, args=(QUERY, epsilon),
                       rounds=3, iterations=1, warmup_rounds=1)


def test_print_full_series(capsys):
    """Regenerate and print the full 19-point series of the paper's figure."""
    series = figure1_series(QUERY)
    with capsys.disabled():
        print_series(QUERY, series)
    # Sanity on the shape: higher precision must not be cheaper by more than
    # noise, and the eps=0.01 point must dominate the eps=0.1 point.
    assert series[0].seconds >= series[-1].seconds * 0.8
