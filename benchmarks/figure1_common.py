"""Shared harness for regenerating Figure 1 of the paper.

Figure 1 plots, for each of the three decision-support queries, the running
time of the additive approximation scheme as a function of the error level
``eps`` (19 settings from 0.01 to 0.10).  The paper times only the
Monte-Carlo annotation phase (the query itself is evaluated once by the
database engine), so the harness here does the same: the candidate answers
and their lineage are enumerated once per query, and the benchmark measures
the AFPRAS pass over those candidates for each ``eps``.

The database scale is configurable through the ``REPRO_BENCH_SCALE``
environment variable (a multiplier on the default ~4K-tuple instance; the
paper's ~200K-tuple instance corresponds to roughly ``REPRO_BENCH_SCALE=50``)
-- the *shape* of the figure (monotone growth as eps decreases, roughly
1/eps^2) is scale independent because the sampling cost per candidate does
not depend on the data volume.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

from repro.datagen.experiments import (
    EXPERIMENT_QUERIES,
    FIGURE1_EPSILONS,
    ExperimentScale,
    generate_sales_database,
)
from repro.engine.annotate import annotate_query
from repro.engine.candidates import CandidateAnswer, enumerate_candidates
from repro.engine.sql.parser import parse_sql
from repro.relational.database import Database

#: Error levels reported in the paper's figure.
EPSILONS: tuple[float, ...] = FIGURE1_EPSILONS

#: Subset of error levels used for the timed pytest-benchmark cases (the full
#: sweep is printed by the series test of each benchmark module).
BENCHMARK_EPSILONS: tuple[float, ...] = (0.1, 0.05, 0.02, 0.01)


def bench_scale() -> ExperimentScale:
    """The benchmark database scale, controlled by ``REPRO_BENCH_SCALE``."""
    factor = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    return ExperimentScale(
        products=max(1, int(2000 * factor)),
        orders=max(1, int(2000 * factor)),
        markets=max(1, int(100 * factor)),
        null_rate=0.08,
    )


@lru_cache(maxsize=1)
def bench_database() -> Database:
    """The (cached) benchmark database."""
    return generate_sales_database(bench_scale(), rng=0)


@lru_cache(maxsize=None)
def bench_candidates(query_name: str) -> tuple[CandidateAnswer, ...]:
    """Candidate answers (with lineage) of one experiment query, cached.

    As in the paper's pipeline, the LIMIT 25 applies to the *rows* returned
    by the (naive) evaluation, so witnesses are not grouped: every returned
    row is annotated with the confidence of its own join combination.
    """
    sql = EXPERIMENT_QUERIES[query_name]
    return tuple(enumerate_candidates(parse_sql(sql), bench_database(),
                                      group_witnesses=False))


def annotate_candidates(query_name: str, epsilon: float, rng: int = 0) -> None:
    """One AFPRAS pass over the cached candidates (the timed operation)."""
    sql = EXPERIMENT_QUERIES[query_name]
    annotate_query(parse_sql(sql), bench_database(), epsilon=epsilon,
                   method="afpras", rng=rng, candidates=bench_candidates(query_name))


@dataclass(frozen=True)
class SeriesPoint:
    """One point of the Figure 1 series: error level and elapsed seconds."""

    epsilon: float
    seconds: float


def figure1_series(query_name: str,
                   epsilons: Sequence[float] = EPSILONS) -> list[SeriesPoint]:
    """Time the annotation phase for every error level (one run per level)."""
    series: list[SeriesPoint] = []
    for epsilon in epsilons:
        start = time.perf_counter()
        annotate_candidates(query_name, epsilon)
        series.append(SeriesPoint(epsilon=epsilon, seconds=time.perf_counter() - start))
    return series


def print_series(query_name: str, series: Sequence[SeriesPoint]) -> None:
    """Print the series in the layout of the paper's figure (x: eps*10^3, y: seconds)."""
    scale = bench_scale()
    candidates = bench_candidates(query_name)
    print()
    print(f"Figure 1 -- query {query_name!r}")
    print(f"  database: {scale.total_tuples} tuples "
          f"({len(bench_database().num_nulls())} numerical nulls), "
          f"{len(candidates)} candidate answers (LIMIT 25)")
    print("  eps*10^3   time (s)")
    for point in series:
        print(f"  {point.epsilon * 1000:8.0f}   {point.seconds:8.3f}")
    fastest = min(point.seconds for point in series)
    slowest = max(point.seconds for point in series)
    print(f"  shape check: time at eps=0.01 / time at eps=0.1 = "
          f"{slowest / max(fastest, 1e-9):.1f}x (paper: roughly two orders of magnitude "
          "of extra sampling, sub-second at eps=0.1, below ~10s at eps=0.01)")
