"""Ablation: the Section 9 optimisation (sample only the relevant nulls).

The paper's implementation "only samples as many coordinates of z as needed
to replace the nulls that affect the result of the input query", reporting
that this "speeds up the computation substantially".  This benchmark
quantifies that claim on our engine: the same candidate formula is measured
with the optimisation on and off while the database's total number of nulls
grows, so the gap between the two curves is exactly the saving.
"""

from __future__ import annotations

import time

import pytest

from repro.certainty import AfprasOptions, afpras_measure
from repro.constraints.atoms import Comparison, Constraint
from repro.constraints.formula import And, Atom
from repro.constraints.polynomials import Polynomial
from repro.constraints.translate import TranslationResult
from repro.relational.values import NumNull

#: Total numbers of nulls in the database; only 3 are ever relevant.
TOTAL_NULLS = (4, 16, 64, 256)
RELEVANT = 3


def padded_translation(total_nulls: int) -> TranslationResult:
    """A 3-null constraint inside a database with ``total_nulls`` nulls."""
    names = tuple(f"z_p{i}" for i in range(total_nulls))
    relevant = names[:RELEVANT]
    atoms = tuple(Atom(Constraint(Polynomial.variable(name), Comparison.GT))
                  for name in relevant)
    return TranslationResult(
        formula=And(atoms),
        all_variables=names,
        relevant_variables=relevant,
        null_by_variable={name: NumNull(name.removeprefix("z_")) for name in names},
    )


def test_ablation_table(capsys):
    rows = []
    for total in TOTAL_NULLS:
        translation = padded_translation(total)
        start = time.perf_counter()
        optimised = afpras_measure(translation,
                                   AfprasOptions(epsilon=0.05, relevant_only=True), rng=0)
        optimised_time = time.perf_counter() - start
        start = time.perf_counter()
        unoptimised = afpras_measure(translation,
                                     AfprasOptions(epsilon=0.05, relevant_only=False), rng=0)
        unoptimised_time = time.perf_counter() - start
        rows.append((total, optimised_time, unoptimised_time,
                     optimised.value, unoptimised.value))
        assert optimised.value == pytest.approx(unoptimised.value, abs=0.06)
    with capsys.disabled():
        print()
        print("Ablation: sampling only the relevant nulls (Section 9 optimisation)")
        print("  total nulls   optimised (s)   full sampling (s)   speedup")
        for total, fast, slow, _, _ in rows:
            print(f"  {total:11d}   {fast:13.3f}   {slow:17.3f}   {slow / max(fast, 1e-9):6.1f}x")
    # With 256 nulls in the database the optimisation must be clearly visible.
    assert rows[-1][2] > rows[-1][1]


@pytest.mark.parametrize("total", [16, 256])
@pytest.mark.parametrize("relevant_only", [True, False])
def test_ablation_time(benchmark, total, relevant_only):
    translation = padded_translation(total)
    options = AfprasOptions(epsilon=0.05, relevant_only=relevant_only)
    benchmark.pedantic(lambda: afpras_measure(translation, options, rng=0),
                       rounds=3, iterations=1, warmup_rounds=1)
