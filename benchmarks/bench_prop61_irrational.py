"""Proposition 6.1: closed-form (ir)rational values of the measure.

The proposition's query is ``∃x,y R(x,y) ∧ x ≥ 0 ∧ y ≤ alpha·x`` over a
single all-null tuple.  The measure is ``1/4 + arctan(alpha)/(2*pi)`` (see
EXPERIMENTS.md for the discussion of the additive constant), rational exactly
for ``alpha ∈ {0, ±1}``.  The benchmark times the exact backend and prints
the paper-vs-measured table.
"""

from __future__ import annotations

import math

import pytest

from repro.certainty import certainty
from repro.logic.builder import exists, num_var, rel
from repro.logic.formulas import Query
from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.values import NumNull

ALPHAS = (0.0, 1.0, -1.0, 0.5, 2.0, 10.0)


def single_tuple_database() -> Database:
    schema = DatabaseSchema.of(RelationSchema.of("R", x="num", y="num"))
    database = Database(schema)
    database.add("R", (NumNull("1"), NumNull("2")))
    return database


def prop61_query(alpha: float) -> Query:
    x, y = num_var("x"), num_var("y")
    return Query(head=(), body=exists([x, y], rel("R", x, y)
                                      & (x >= 0) & (y <= alpha * x)))


def test_value_table(capsys):
    database = single_tuple_database()
    with capsys.disabled():
        print()
        print("Proposition 6.1: mu = 1/4 + arctan(alpha)/(2*pi)")
        print("  alpha   measured    closed form   rational?")
        for alpha in ALPHAS:
            value = certainty(prop61_query(alpha), database, rng=0).value
            closed = 0.25 + math.atan(alpha) / (2 * math.pi)
            rational = "yes" if alpha in (0.0, 1.0, -1.0) else "no"
            print(f"  {alpha:5.1f}   {value:.6f}    {closed:.6f}     {rational}")
    for alpha in ALPHAS:
        value = certainty(prop61_query(alpha), database, rng=0).value
        assert value == pytest.approx(0.25 + math.atan(alpha) / (2 * math.pi))


@pytest.mark.parametrize("alpha", [0.0, 2.0])
def test_exact_backend_time(benchmark, alpha):
    database = single_tuple_database()
    query = prop61_query(alpha)
    benchmark.pedantic(lambda: certainty(query, database, rng=0).value,
                       rounds=5, iterations=1, warmup_rounds=1)
