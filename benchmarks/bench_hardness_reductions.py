"""Propositions 6.2 / Theorem 6.3: the measure counts propositional models.

These benchmarks exercise the executable reductions on random 3DNF/3CNF
instances: the exact (rational) measure of the reduction must equal
``#psi / 2^n``, and the AFPRAS approximates the same value within its
additive error on instances too large for exact enumeration.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.certainty import afpras_formula_measure, exact_order_measure
from repro.hardness import (
    Literal,
    PropositionalCNF,
    PropositionalDNF,
    cnf_reduction,
    count_satisfying_assignments,
    dnf_reduction,
)


def random_dnf(variables: int, terms: int, seed: int) -> PropositionalDNF:
    generator = np.random.default_rng(seed)
    names = [f"x{i}" for i in range(variables)]
    built = []
    for _ in range(terms):
        size = int(generator.integers(1, 4))
        chosen = generator.choice(variables, size=size, replace=False)
        built.append(tuple(Literal(names[int(i)], bool(generator.integers(0, 2)))
                           for i in chosen))
    return PropositionalDNF(terms=tuple(built))


def random_cnf(variables: int, clauses: int, seed: int) -> PropositionalCNF:
    generator = np.random.default_rng(seed)
    names = [f"x{i}" for i in range(variables)]
    built = []
    for _ in range(clauses):
        size = int(generator.integers(1, 4))
        chosen = generator.choice(variables, size=size, replace=False)
        built.append(tuple(Literal(names[int(i)], bool(generator.integers(0, 2)))
                           for i in chosen))
    return PropositionalCNF(clauses=tuple(built))


def test_model_counting_table(capsys):
    """Paper-vs-measured: exact measure of the reduction vs brute-force #psi."""
    rows = []
    for seed in range(4):
        dnf = random_dnf(variables=3, terms=3, seed=seed)
        reduction = dnf_reduction(dnf)
        expected = Fraction(count_satisfying_assignments(dnf), reduction.denominator)
        measured = exact_order_measure(reduction.translation())
        rows.append(("3DNF", seed, expected, measured))
        assert measured == expected
    for seed in range(4):
        cnf = random_cnf(variables=3, clauses=3, seed=seed)
        reduction = cnf_reduction(cnf)
        expected = Fraction(count_satisfying_assignments(cnf), reduction.denominator)
        measured = exact_order_measure(reduction.translation())
        rows.append(("3CNF", seed, expected, measured))
        assert measured == expected
    with capsys.disabled():
        print()
        print("Counting reductions: mu(q, D_psi) vs #psi / 2^n")
        for kind, seed, expected, measured in rows:
            print(f"  {kind} seed {seed}:  #psi/2^n = {str(expected):>6s}   "
                  f"measure = {str(measured):>6s}")


def test_afpras_on_larger_instance(capsys):
    """AFPRAS handles instances beyond the reach of exact enumeration."""
    cnf = random_cnf(variables=12, clauses=18, seed=7)
    reduction = cnf_reduction(cnf)
    expected = count_satisfying_assignments(cnf) / reduction.denominator
    translation = reduction.translation()
    measured, samples = afpras_formula_measure(
        translation.formula, translation.relevant_variables, epsilon=0.02, rng=0)
    with capsys.disabled():
        print()
        print(f"3CNF with 12 variables, 18 clauses: #psi/2^n = {expected:.4f}, "
              f"AFPRAS = {measured:.4f} ({samples} samples)")
    assert measured == pytest.approx(expected, abs=0.03)


@pytest.mark.parametrize("variables", [3, 6, 9])
def test_afpras_reduction_time(benchmark, variables):
    """Runtime of the AFPRAS on reductions of growing size."""
    cnf = random_cnf(variables=variables, clauses=2 * variables, seed=1)
    translation = cnf_reduction(cnf).translation()
    benchmark.pedantic(
        lambda: afpras_formula_measure(translation.formula,
                                       translation.relevant_variables,
                                       epsilon=0.05, rng=0),
        rounds=3, iterations=1, warmup_rounds=1)


def test_exact_enumeration_time(benchmark):
    """Runtime of the exact signed-ordering enumeration (exponential in n)."""
    dnf = random_dnf(variables=3, terms=3, seed=2)
    translation = dnf_reduction(dnf).translation()
    benchmark.pedantic(lambda: exact_order_measure(translation),
                       rounds=3, iterations=1, warmup_rounds=1)
