"""Theorem 8.1: scaling behaviour of the additive approximation scheme.

Two sweeps, matching the two parameters the scheme's cost depends on:

* the error level ``eps`` (cost proportional to ``1/eps^2`` samples), the
  same law Figure 1 exhibits; and
* the number of *relevant* nulls per candidate (cost per sample is linear in
  the formula size / dimension), which the paper's optimisation of Section 9
  keeps small in practice.
"""

from __future__ import annotations

import time

import pytest

from repro.certainty import AfprasOptions, afpras_measure
from repro.constraints.atoms import Comparison, Constraint
from repro.constraints.formula import And, Atom
from repro.constraints.polynomials import Polynomial
from repro.constraints.translate import TranslationResult
from repro.geometry.montecarlo import hoeffding_sample_size
from repro.relational.values import NumNull


def chain_translation(dimension: int) -> TranslationResult:
    """The chain ``z_0 < z_1 < ... < z_{d-1}`` over ``dimension`` nulls."""
    names = tuple(f"z_c{i}" for i in range(dimension))
    atoms = tuple(
        Atom(Constraint(Polynomial.variable(names[i]) - Polynomial.variable(names[i + 1]),
                        Comparison.LT))
        for i in range(dimension - 1))
    return TranslationResult(
        formula=And(atoms),
        all_variables=names,
        relevant_variables=names,
        null_by_variable={name: NumNull(name.removeprefix("z_")) for name in names},
    )


EPSILONS = (0.1, 0.05, 0.02, 0.01)
DIMENSIONS = (2, 4, 8, 16, 32)
ENGINES = ("scalar", "batched")


def test_engine_speedup_table(capsys):
    """Compiled batch kernels vs the scalar reference walk, same seed each."""
    rows = []
    for dimension in DIMENSIONS:
        translation = chain_translation(dimension)
        timings = {}
        values = {}
        for engine in ENGINES:
            options = AfprasOptions(epsilon=0.02, engine=engine)
            afpras_measure(translation, options, rng=0)  # warm compile cache
            start = time.perf_counter()
            values[engine] = afpras_measure(translation, options, rng=0).value
            timings[engine] = time.perf_counter() - start
        # Same seed => same directions => identical estimates across engines.
        assert values["scalar"] == values["batched"]
        rows.append((dimension, timings["scalar"], timings["batched"]))
    with capsys.disabled():
        print()
        print("AFPRAS engines at eps = 0.02 (same seed, identical estimates):")
        print("  nulls   scalar (s)   batched (s)   speedup")
        for dimension, scalar_time, batched_time in rows:
            print(f"  {dimension:5d}  {scalar_time:11.3f}  {batched_time:12.3f}"
                  f"   {scalar_time / batched_time:7.1f}x")


def test_epsilon_scaling_table(capsys):
    """Measured runtime follows the 1/eps^2 sample-size law."""
    translation = chain_translation(4)
    rows = []
    for epsilon in EPSILONS:
        start = time.perf_counter()
        afpras_measure(translation, AfprasOptions(epsilon=epsilon), rng=0)
        rows.append((epsilon, time.perf_counter() - start, hoeffding_sample_size(epsilon)))
    with capsys.disabled():
        print()
        print("AFPRAS cost vs error level (4 relevant nulls):")
        print("  eps     time (s)   samples")
        for epsilon, seconds, samples in rows:
            print(f"  {epsilon:5.3f}  {seconds:9.3f}   {samples}")
    assert rows[-1][2] > rows[0][2] * 20  # 0.01 needs >20x the samples of 0.1


def test_dimension_scaling_table(capsys):
    """Measured runtime grows roughly linearly with the number of relevant nulls."""
    rows = []
    for dimension in DIMENSIONS:
        translation = chain_translation(dimension)
        start = time.perf_counter()
        value = afpras_measure(translation, AfprasOptions(epsilon=0.05), rng=0).value
        rows.append((dimension, time.perf_counter() - start, value))
    with capsys.disabled():
        print()
        print("AFPRAS cost vs number of relevant nulls (eps = 0.05):")
        print("  nulls   time (s)   measure (exact value is 1/d!)")
        for dimension, seconds, value in rows:
            print(f"  {dimension:5d}  {seconds:9.3f}   {value:.4f}")
    # The chain ordering probability shrinks to (numerically) zero quickly.
    assert rows[0][2] == pytest.approx(0.5, abs=0.05)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("epsilon", EPSILONS)
def test_afpras_epsilon_time(benchmark, epsilon, engine):
    translation = chain_translation(4)
    benchmark.pedantic(
        lambda: afpras_measure(translation,
                               AfprasOptions(epsilon=epsilon, engine=engine), rng=0),
        rounds=3, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("dimension", [2, 8, 32])
def test_afpras_dimension_time(benchmark, dimension, engine):
    translation = chain_translation(dimension)
    benchmark.pedantic(
        lambda: afpras_measure(translation,
                               AfprasOptions(epsilon=0.05, engine=engine), rng=0),
        rounds=3, iterations=1, warmup_rounds=1)
