"""Section 10 extensions: range constraints, distributions, integer lattices.

The paper's future-work section claims the framework adapts easily to range
constraints on attributes, per-column distributions, and integer-valued
columns (where volumes become lattice-point counts).  These benchmarks
exercise the three extensions and check the consistency facts that make them
sound: the lattice measure converges to the volumetric one, and adding an
unconstraining range does not change the value.
"""

from __future__ import annotations

import pytest

from repro.certainty import (
    AfprasOptions,
    Range,
    afpras_measure,
    constrained_certainty,
    distributional_certainty,
    lattice_certainty,
)
from repro.constraints.atoms import Comparison, Constraint
from repro.constraints.formula import And, Atom
from repro.constraints.polynomials import Polynomial
from repro.constraints.translate import TranslationResult
from repro.relational.values import NumNull


def price_translation() -> TranslationResult:
    """The intro-style constraint ``price >= 8  and  0.7*rrp <= price``."""
    price = Polynomial.variable("z_price")
    rrp = Polynomial.variable("z_rrp")
    formula = And((
        Atom(Constraint(price - 8.0, Comparison.GE)),
        Atom(Constraint(0.7 * rrp - price, Comparison.LE)),
        Atom(Constraint(rrp, Comparison.GE)),
    ))
    names = ("z_price", "z_rrp")
    return TranslationResult(
        formula=formula, all_variables=names, relevant_variables=names,
        null_by_variable={name: NumNull(name.removeprefix("z_")) for name in names})


def test_extension_value_table(capsys):
    translation = price_translation()
    agnostic = afpras_measure(translation, AfprasOptions(epsilon=0.02), rng=0).value
    ranged = constrained_certainty(
        translation,
        {"z_price": Range(0.0, 1000.0), "z_rrp": Range(0.0, 1000.0)},
        epsilon=0.02, rng=0).value
    distributional = distributional_certainty(
        translation,
        {"z_price": lambda g: g.uniform(0.0, 1000.0),
         "z_rrp": lambda g: g.uniform(0.0, 1000.0)},
        epsilon=0.02, rng=0).value
    lattice = lattice_certainty(translation, radius=500.0, epsilon=0.02, rng=0).value
    with capsys.disabled():
        print()
        print("Section 10 extensions on the intro-style constraint:")
        print(f"  agnostic (asymptotic volume)           : {agnostic:.4f}")
        print(f"  range constraints (both in [0, 1000])  : {ranged:.4f}")
        print(f"  uniform distributions on [0, 1000]     : {distributional:.4f}")
        print(f"  integer lattice, radius 500            : {lattice:.4f}")
    # Range-constrained and distributional variants model the same situation
    # (both nulls uniform on [0, 1000]) and must agree with each other.
    assert ranged == pytest.approx(distributional, abs=0.04)
    # The lattice measure approximates the volumetric (agnostic) one.
    assert lattice == pytest.approx(agnostic, abs=0.04)


def test_unconstraining_range_is_a_no_op(capsys):
    translation = price_translation()
    agnostic = afpras_measure(translation, AfprasOptions(epsilon=0.02), rng=1).value
    half_bounded = constrained_certainty(
        translation, {"z_rrp": Range(lower=0.0)}, epsilon=0.02, rng=1).value
    with capsys.disabled():
        print()
        print(f"Half-bounded range rrp >= 0: {half_bounded:.4f} "
              f"(agnostic value restricted to rrp >= 0 should be twice {agnostic:.4f})")
    # Conditioning on rrp >= 0 doubles the measure of a constraint that
    # already implies rrp >= 0 (the conditioning event has probability 1/2).
    assert half_bounded == pytest.approx(2 * agnostic, abs=0.05)


@pytest.mark.parametrize("extension", ["ranges", "distributions", "lattice"])
def test_extension_time(benchmark, extension):
    translation = price_translation()
    if extension == "ranges":
        run = lambda: constrained_certainty(  # noqa: E731
            translation, {"z_price": Range(0.0, 1000.0)}, epsilon=0.05, rng=0)
    elif extension == "distributions":
        run = lambda: distributional_certainty(  # noqa: E731
            translation,
            {"z_price": lambda g: g.uniform(0.0, 1000.0),
             "z_rrp": lambda g: g.uniform(0.0, 1000.0)},
            epsilon=0.05, rng=0)
    else:
        run = lambda: lattice_certainty(translation, radius=500.0, epsilon=0.05, rng=0)  # noqa: E731
    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
