#!/usr/bin/env python
"""Flaky-test detector: a seeded sharded workload must be bit-reproducible.

Process-parallel execution is exactly the kind of change that introduces
nondeterminism quietly -- scheduling-order dependence, hash-salted dict
iteration leaking into shard placement, worker-local RNG state.  This
script runs a fixed, seeded workload through the full stack (columnar
generation, sharded process-parallel enumeration, process-executor
Monte-Carlo estimates, adaptive refinement) and folds everything
observable -- answer values, witness order, lineage digests, certainty
floats at full precision -- into one SHA-256 digest.

Two modes:

* default: run the workload twice **in this process** (fresh services,
  fresh caches each time) and fail on any digest mismatch;
* ``--digest-only``: print the digest and exit.  The nightly CI job runs
  this twice in *separate interpreters with different ``PYTHONHASHSEED``
  values* and diffs the outputs, which catches hash-randomisation
  dependence that an in-process repeat cannot.

Exit code 0 means reproducible; 1 means a diff was found (the diff is
printed per workload step).
"""

from __future__ import annotations

import argparse
import hashlib

from repro.compile import configure_compile_cache
from repro.datagen.generic import ColumnSpec, TableSpec, generate_database
from repro.engine.candidates import enumerate_candidates
from repro.engine.sql.parser import parse_sql
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.service import AnnotationService, ServiceOptions, shutdown_pools
from repro.service.canonical import canonicalise_lineage

#: The workload: sharded equi-join plus a round-robin scan, both served
#: under process-parallel enumeration and estimation at a fixed seed.
QUERIES = (
    ("join", "SELECT F.key FROM Fact F, Dim D "
             "WHERE F.key = D.key AND F.val * D.ref <= 30 LIMIT 40"),
    ("scan", "SELECT F.key FROM Fact F WHERE F.val <= 6 LIMIT 40"),
    ("theta", "SELECT F.key FROM Fact F, Dim D "
              "WHERE F.key = D.key AND F.val - D.ref < 1.5 LIMIT 40"),
)


def build_database():
    schema = DatabaseSchema.of(
        RelationSchema.of("Fact", key="base", val="num"),
        RelationSchema.of("Dim", key="base", ref="num"),
    )
    keys = tuple(f"k{i}" for i in range(200))
    specs = {
        "Fact": TableSpec(rows=3000, columns={
            "key": ColumnSpec(choices=keys, null_rate=0.05),
            "val": ColumnSpec(uniform=(0.0, 10.0), null_rate=0.15),
        }),
        "Dim": TableSpec(rows=800, columns={
            "key": ColumnSpec(choices=keys, null_rate=0.05),
            "ref": ColumnSpec(uniform=(0.0, 10.0), null_rate=0.15),
        }),
    }
    return generate_database(schema, specs, rng=20200614, backend="columnar")


def run_workload() -> dict[str, str]:
    """One cold pass over the workload; per-step hex digests."""
    configure_compile_cache(clear=True)
    database = build_database()
    service = AnnotationService(database, ServiceOptions(
        epsilon=0.25, seed=97, shards=4, jobs=2, executor="process"))
    adaptive_service = AnnotationService(database, ServiceOptions(
        epsilon=0.25, seed=97, shards=4, jobs=2, executor="process",
        adaptive=True))
    digests: dict[str, str] = {}
    for name, sql in QUERIES:
        for mode, server in (("single", service), ("adaptive", adaptive_service)):
            feed = hashlib.sha256()
            for answer in server.annotate(sql):
                feed.update(repr(answer.values).encode())
                feed.update(str(answer.witnesses).encode())
                feed.update(answer.certainty.value.hex().encode())
            digests[f"{name}/{mode}"] = feed.hexdigest()
        # Lineage is not carried on served answers, so digest it at the
        # enumeration level, through the same sharded process-parallel path.
        feed = hashlib.sha256()
        for candidate in enumerate_candidates(
                parse_sql(sql), database, shards=4, jobs=2):
            feed.update(repr(candidate.values).encode())
            feed.update(str(candidate.witnesses).encode())
            feed.update(canonicalise_lineage(candidate.lineage).digest)
        digests[f"{name}/lineage"] = feed.hexdigest()
    return digests


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--digest-only", action="store_true",
                        help="print one digest per workload step and exit "
                             "(for cross-process diffing)")
    args = parser.parse_args()

    first = run_workload()
    if args.digest_only:
        for step in sorted(first):
            print(f"{step} {first[step]}")
        shutdown_pools()
        return 0

    second = run_workload()
    shutdown_pools()
    diffs = [step for step in sorted(first) if first[step] != second[step]]
    for step in sorted(first):
        marker = "DIFF" if step in diffs else "ok"
        print(f"{step:<16} {first[step][:16]}  {second[step][:16]}  {marker}")
    if diffs:
        print(f"NONDETERMINISM: {len(diffs)} workload step(s) changed "
              "between identical seeded runs")
        return 1
    print("deterministic: two seeded runs agree bit for bit")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
