"""Worked example of the introduction: the campaign query's measure.

The paper computes the asymptotic density of its constraint system (1) as
``(pi/2 - arctan(10/7)) / (2*pi) ≈ 0.097`` (equivalently ≈ 0.388 of the
positive quadrant) and notes that lowering product id2's discount raises the
confidence.  This benchmark regenerates those numbers with every backend and
times the end-to-end query-level measure.
"""

from __future__ import annotations

import math

import pytest

from repro.certainty import afpras_formula_measure, certainty
from repro.datagen.intro import (
    EXPECTED_MEASURE_FORMULA_1,
    EXPECTED_MEASURE_QUERY,
    EXPECTED_POSITIVE_QUADRANT,
    SEGMENT,
    intro_constraint_formula,
    intro_database,
    intro_query,
)


def test_formula_1_value_table(capsys):
    """Print paper-vs-measured for the constraint system (1)."""
    formula, variables = intro_constraint_formula()
    measured, samples = afpras_formula_measure(formula, variables, epsilon=0.005, rng=0)
    with capsys.disabled():
        print()
        print("Introduction example, constraint system (1):")
        print(f"  paper      nu = {EXPECTED_MEASURE_FORMULA_1:.4f} "
              f"({EXPECTED_POSITIVE_QUADRANT:.3f} of the positive quadrant)")
        print(f"  measured   nu = {measured:.4f}   ({samples} samples, eps=0.005)")
        print(f"  query-derived closed form (inequality as displayed): "
              f"{EXPECTED_MEASURE_QUERY:.4f}")
    assert measured == pytest.approx(EXPECTED_MEASURE_FORMULA_1, abs=0.01)


def test_query_level_measure(benchmark):
    """Time the full pipeline (translation + AFPRAS) on the intro database."""
    database = intro_database()
    query = intro_query()

    def run():
        return certainty(query, database, (SEGMENT,), method="afpras",
                         epsilon=0.05, rng=0).value

    value = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert value == pytest.approx(EXPECTED_MEASURE_QUERY, abs=0.06)


def test_discount_sensitivity(capsys):
    """Lowering the discount multiplier widens the feasible cone (paper's remark)."""
    from repro.geometry.angles import planar_cone_fraction

    with capsys.disabled():
        print()
        print("Sensitivity of the intro example to the discount of product id2")
        print("  (fraction of the positive quadrant satisfying the constraints):")
        for discount in (0.9, 0.7, 0.5, 0.3):
            # Constraint system (1) with 0.7 replaced by `discount`.
            fraction = planar_cone_fraction([[0.0, -1.0], [-1.0, 0.0],
                                             [1.0, -discount]])
            print(f"  discount multiplier {discount:.1f}: "
                  f"{4 * fraction:.3f} of the positive quadrant")
    tighter = planar_cone_fraction([[0.0, -1.0], [-1.0, 0.0], [1.0, -0.5]])
    looser = planar_cone_fraction([[0.0, -1.0], [-1.0, 0.0], [1.0, -0.9]])
    assert tighter < looser
