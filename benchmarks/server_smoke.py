#!/usr/bin/env python
"""CI smoke test for the network server: a full scripted session, then drain.

Spawns ``repro server`` as a real subprocess on ephemeral ports, drives a
scripted client session over **both** transports, and asserts the SIGTERM
drain protocol ends the process with exit code 0:

* TCP NDJSON -- ping, a query, the identical query again (must be answered
  from the warm caches), an adaptive streaming query (update events before
  the result), a bad query (typed ``invalid_query`` error, connection
  stays usable), and a ``stats`` op whose report carries the single-flight
  counters;
* HTTP -- ``GET /healthz``, ``GET /stats``, ``POST /query`` (200 with
  answers), and a malformed query (400).

Run from the repository root::

    python benchmarks/server_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import urllib.error
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")


def _spawn_server(data_dir: str) -> tuple[subprocess.Popen, int, int]:
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = SRC + (os.pathsep + existing if existing else "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "server", "--data", data_dir,
         "--port", "0", "--epsilon", "0.1", "--seed", "5",
         "--backend", "columnar"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env)
    announce = process.stdout.readline().strip()
    assert announce.startswith("listening tcp="), \
        f"unexpected server banner: {announce!r} (stderr: {process.stderr.read()})"
    addresses = dict(part.split("=") for part in announce.split()[1:])
    tcp_port = int(addresses["tcp"].rsplit(":", 1)[1])
    http_port = int(addresses["http"].rsplit(":", 1)[1])
    return process, tcp_port, http_port


def _tcp_session(port: int) -> None:
    from repro.client import AdaptiveUpdateEvent, ReproClient, ServerError

    sql = "SELECT M.seg FROM Market M WHERE M.rrp >= 0 LIMIT 3"
    with ReproClient("127.0.0.1", port) as client:
        assert client.ping(), "ping must pong"
        assert client.health()["status"] == "ok"

        first = client.query(sql, seed=5)
        assert first.answers, "query must return answers"
        again = client.query(sql, seed=5)
        assert [a.values for a in again.answers] == \
            [a.values for a in first.answers]
        assert again.stats["groups_computed"] == 0, \
            "repeated query must be served from the warm caches"

        updates: list = []
        adaptive = client.query(
            "SELECT P.id FROM Products P WHERE P.rrp <= 40 LIMIT 3",
            epsilon=0.05, adaptive=True, seed=5, on_update=updates.append)
        assert adaptive.answers
        assert updates and isinstance(updates[0], AdaptiveUpdateEvent), \
            "adaptive queries must stream update events"

        try:
            client.query("SELEC nonsense")
        except ServerError as error:
            assert error.code == "invalid_query", error.code
        else:
            raise AssertionError("bad SQL must raise a typed error")
        assert client.ping(), "connection must survive a query error"

        stats = client.stats()
        assert "coalesced" in stats["server"], "stats must expose coalescing"
        assert stats["service"]["single_flight"] is not None
    print("tcp session ok")


def _http_session(port: int) -> None:
    base = f"http://127.0.0.1:{port}"
    health = json.loads(urllib.request.urlopen(base + "/healthz").read())
    assert health["status"] == "ok", health
    stats = json.loads(urllib.request.urlopen(base + "/stats").read())
    assert "server" in stats and "service" in stats

    request = urllib.request.Request(
        base + "/query",
        data=json.dumps({"sql": "SELECT M.seg FROM Market M LIMIT 2",
                         "options": {"seed": 5}}).encode(),
        headers={"Content-Type": "application/json"})
    body = json.loads(urllib.request.urlopen(request).read())
    assert body["type"] == "result" and body["answers"], body

    bad = urllib.request.Request(
        base + "/query", data=json.dumps({"sql": "SELEC nonsense"}).encode(),
        headers={"Content-Type": "application/json"})
    try:
        urllib.request.urlopen(bad)
    except urllib.error.HTTPError as error:
        assert error.code == 400, error.code
    else:
        raise AssertionError("bad SQL over HTTP must return 400")
    print("http session ok")


def main() -> int:
    sys.path.insert(0, SRC)
    with tempfile.TemporaryDirectory() as tmp:
        data_dir = os.path.join(tmp, "data")
        subprocess.run(
            [sys.executable, "-m", "repro.cli", "generate", "--out", data_dir,
             "--products", "30", "--orders", "30", "--markets", "6",
             "--null-rate", "0.2", "--seed", "1"],
            check=True, env={**os.environ, "PYTHONPATH": SRC},
            stdout=subprocess.DEVNULL)
        process, tcp_port, http_port = _spawn_server(data_dir)
        try:
            _tcp_session(tcp_port)
            _http_session(http_port)
        finally:
            process.send_signal(signal.SIGTERM)
            stdout, stderr = process.communicate(timeout=60)
        assert process.returncode == 0, \
            f"server exited {process.returncode}; stderr: {stderr}"
        assert "drained" in stdout, f"no clean drain in output: {stdout!r}"
    print("server smoke ok: clean drain, exit 0")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
