#!/usr/bin/env python
"""Seeded load generator for the repro network server.

Builds a reproducible mixed workload over the sales schema -- point
selections, arithmetic filters, a join, a slice of adaptive requests --
and drives it at a running server over N concurrent TCP connections,
recording per-request latency and a protocol-error count.  The same
workload object drives three consumers:

* the **server bench scenario** of ``run_bench.py`` (serial vs concurrent
  wall clock, p50/p99 latency, QPS);
* the **nightly soak** (``server_soak.py``): loop the workload for a
  duration and assert zero protocol errors;
* the **determinism tests**, which replay the identical workload through a
  local :class:`~repro.service.AnnotationService` and require bit-identical
  answers.

Requests are split round-robin across connections, preserving the seeded
order within each connection; every request carries an explicit seed, so
the servable results are a pure function of the workload -- not of timing,
interleaving, or connection count.

Standalone usage (against an already-running server)::

    PYTHONPATH=src python benchmarks/loadgen.py --port 7464 \
        --connections 8 --requests 200 --seed 42
"""

from __future__ import annotations

import argparse
import json
import threading
import time
from dataclasses import dataclass, field

import numpy as np

#: Query templates over the sales schema; ``{t}`` is a threshold, ``{k}``
#: a LIMIT.  The parameter space is deliberately small so a seeded draw
#: repeats queries -- that is what exercises the caches and the
#: single-flight coalescing under concurrency.
_TEMPLATES = (
    "SELECT M.seg FROM Market M WHERE M.rrp >= {t} LIMIT {k}",
    "SELECT P.id FROM Products P WHERE P.rrp <= {t} LIMIT {k}",
    "SELECT P.id FROM Products P WHERE P.rrp * P.dis <= {t} LIMIT {k}",
    "SELECT O.id FROM Orders O WHERE O.q * O.dis >= {t} LIMIT {k}",
    "SELECT P.seg FROM Products P, Market M "
    "WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp LIMIT {k}",
)

_THRESHOLDS = (10, 20, 30, 40)
_LIMITS = (3, 5, 8)
_EPSILONS = (0.1, 0.2)


def build_workload(seed: int, size: int, adaptive_share: float = 0.1,
                   mutation_share: float = 0.0, tag: int = 0) -> list[dict]:
    """A reproducible list of ``{"sql": ..., "options": {...}}`` requests.

    With ``mutation_share > 0`` a slice of entries become INSERT
    statements (``{"mutate": sql}``), giving the cluster soak a mixed
    read/write stream.  ``tag`` is baked into the generated row ids, so
    repeating the workload across soak rounds (``tag=round``) never
    collides with rows an earlier round already committed.
    """
    generator = np.random.default_rng(seed)
    workload = []
    for index in range(size):
        if mutation_share and generator.random() < mutation_share:
            quantity = int(generator.integers(1, 50))
            discount = round(float(generator.random()), 3)
            workload.append({"mutate": (
                f"INSERT INTO Orders VALUES "
                f"('lg-{tag}-{index}', 'p{int(generator.integers(20))}', "
                f"{quantity}, {discount})")})
            continue
        template = _TEMPLATES[int(generator.integers(len(_TEMPLATES)))]
        sql = template.format(t=_THRESHOLDS[int(generator.integers(len(_THRESHOLDS)))],
                              k=_LIMITS[int(generator.integers(len(_LIMITS)))])
        options = {
            "epsilon": _EPSILONS[int(generator.integers(len(_EPSILONS)))],
            "seed": int(seed),
            "adaptive": bool(generator.random() < adaptive_share),
        }
        workload.append({"sql": sql, "options": options})
    return workload


@dataclass
class LoadReport:
    """What one load run measured."""

    connections: int
    requests: int
    wall_seconds: float
    latencies: list[float] = field(default_factory=list)
    #: Typed server errors (overloaded/draining) -- backpressure, expected
    #: under deliberate overload, fatal in the soak.
    rejected: int = 0
    #: Everything else: transport drops, garbled frames, unexpected events.
    protocol_errors: int = 0

    @property
    def completed(self) -> int:
        return len(self.latencies)

    @property
    def qps(self) -> float:
        return self.completed / self.wall_seconds if self.wall_seconds else 0.0

    def percentile(self, q: float) -> float:
        if not self.latencies:
            return float("nan")
        return float(np.percentile(np.asarray(self.latencies), q))

    def as_dict(self) -> dict:
        return {
            "connections": self.connections,
            "requests": self.requests,
            "completed": self.completed,
            "wall_seconds": self.wall_seconds,
            "qps": self.qps,
            "p50_ms": self.percentile(50) * 1e3,
            "p99_ms": self.percentile(99) * 1e3,
            "rejected": self.rejected,
            "protocol_errors": self.protocol_errors,
        }


def _drive_connection(host: str, port: int, requests: list[dict],
                      report: LoadReport, lock: threading.Lock) -> None:
    from repro.client import ClientError, OverloadedError, ReproClient

    try:
        client = ReproClient(host, port)
    except ClientError:
        with lock:
            report.protocol_errors += len(requests)
        return
    try:
        for request in requests:
            started = time.perf_counter()
            try:
                if "mutate" in request:
                    client.mutate(request["mutate"])
                else:
                    client.query(request["sql"], **request["options"])
            except OverloadedError:
                with lock:
                    report.rejected += 1
                continue
            except ClientError:
                with lock:
                    report.protocol_errors += 1
                continue
            elapsed = time.perf_counter() - started
            with lock:
                report.latencies.append(elapsed)
    finally:
        client.close()


def run_load(host: str, port: int, workload: list[dict],
             connections: int) -> LoadReport:
    """Drive ``workload`` over ``connections`` parallel TCP connections."""
    report = LoadReport(connections=connections, requests=len(workload),
                        wall_seconds=0.0)
    lock = threading.Lock()
    shares = [workload[index::connections] for index in range(connections)]
    threads = [
        threading.Thread(target=_drive_connection,
                         args=(host, port, share, report, lock), daemon=True)
        for share in shares if share]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.wall_seconds = time.perf_counter() - started
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--connections", type=int, default=8)
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--adaptive-share", type=float, default=0.1)
    parser.add_argument("--mutation-share", type=float, default=0.0,
                        help="fraction of requests that are INSERT "
                             "statements (mixed read/write stream)")
    parser.add_argument("--duration", type=float, default=None,
                        help="loop the workload until this many seconds "
                             "have elapsed (soak mode)")
    args = parser.parse_args()

    workload = build_workload(args.seed, args.requests, args.adaptive_share,
                              mutation_share=args.mutation_share)
    if args.duration is None:
        report = run_load(args.host, args.port, workload, args.connections)
        print(json.dumps(report.as_dict(), indent=2))
        return 1 if report.protocol_errors else 0

    # Soak mode: repeat the workload until the clock runs out, folding the
    # rounds into one report.
    total = LoadReport(connections=args.connections, requests=0,
                       wall_seconds=0.0)
    deadline = time.monotonic() + args.duration
    rounds = 0
    while time.monotonic() < deadline:
        if args.mutation_share:
            # Fresh row ids per round: replayed INSERTs must never
            # collide with rows an earlier round committed.
            workload = build_workload(args.seed, args.requests,
                                      args.adaptive_share,
                                      mutation_share=args.mutation_share,
                                      tag=rounds)
        report = run_load(args.host, args.port, workload, args.connections)
        total.requests += report.requests
        total.wall_seconds += report.wall_seconds
        total.latencies.extend(report.latencies)
        total.rejected += report.rejected
        total.protocol_errors += report.protocol_errors
        rounds += 1
    payload = total.as_dict()
    payload["rounds"] = rounds
    print(json.dumps(payload, indent=2))
    return 1 if total.protocol_errors else 0


if __name__ == "__main__":
    import os
    import sys

    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
    raise SystemExit(main())
