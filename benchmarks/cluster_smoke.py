#!/usr/bin/env python
"""CI smoke test for the cluster tier: coordinator + 2 workers, end to end.

Spawns ``repro cluster start --workers 2`` as a real subprocess (which in
turn spawns two ``repro server`` worker subprocesses), then drives the
scripted session the acceptance criteria name:

* **TCP** -- ping/health (fleet counts), a query, the identical query
  again answered from a warm worker cache, a mutation broadcast (the
  cluster status must show every worker at the committed version), and
  aggregated ``stats`` carrying coordinator + per-worker sections;
* **HTTP** -- ``GET /healthz``, ``GET /stats``, ``GET /cluster``,
  ``POST /query``;
* **observability** -- one query must leave one stitched cross-process
  trace (coordinator + worker spans under a single propagated trace id,
  parent links intact, Chrome-loadable export), ``history`` must
  aggregate every worker's tsdb ring, and the alert report must carry
  the full SLO state table (shape only; CI hosts may burn budget);
* **failover** -- SIGKILL one worker (pid from the cluster status) and
  require queries to keep succeeding on the surviving replica, then wait
  for the supervisor to respawn the dead worker and replay it the
  mutation log back to the barrier version;
* **rolling restart** -- the ``repro cluster drain`` verb restarts every
  local worker one at a time while the fleet stays serving;
* **drain** -- SIGTERM to the coordinator must print ``drained`` and
  exit 0.

Run from the repository root::

    python benchmarks/cluster_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")

SQL = "SELECT M.seg FROM Market M WHERE M.rrp >= 0 LIMIT 3"
MUTATION = "INSERT INTO Orders VALUES ('smoke-1', 'p1', 7, 0.5)"


def _env() -> dict:
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = SRC + (os.pathsep + existing if existing else "")
    return env


def _spawn_cluster(data_dir: str) -> tuple[subprocess.Popen, int, int]:
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "cluster", "start",
         "--data", data_dir, "--workers", "2", "--port", "0",
         "--epsilon", "0.1", "--seed", "5", "--backend", "columnar",
         "--health-interval", "0.3"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=_env())
    announce = process.stdout.readline().strip()
    assert announce.startswith("listening tcp="), (
        f"unexpected coordinator banner: {announce!r} "
        f"(stderr: {process.stderr.read()})")
    addresses = dict(part.split("=") for part in announce.split()[1:])
    tcp_port = int(addresses["tcp"].rsplit(":", 1)[1])
    http_port = int(addresses["http"].rsplit(":", 1)[1])
    return process, tcp_port, http_port


def _tcp_session(port: int) -> None:
    from repro.client import ReproClient

    with ReproClient("127.0.0.1", port) as client:
        assert client.ping(), "ping must pong"
        health = client.health()
        assert health["status"] == "ok", health
        assert health["role"] == "coordinator", health
        assert health["workers"] == 2 and health["workers_healthy"] == 2

        first = client.query(SQL, seed=5)
        assert first.answers, "query must return answers"
        again = client.query(SQL, seed=5)
        assert [a.values for a in again.answers] == \
            [a.values for a in first.answers]
        assert again.stats["groups_computed"] == 0, \
            "repeated query must hit the owning worker's warm caches"

        outcome = client.mutate(MUTATION)
        assert outcome.data_version == 1, outcome

        status = client.cluster()
        versions = [worker["data_version"]
                    for worker in status["workers"]]
        assert versions == [1, 1], \
            f"mutation must be committed on every worker, got {versions}"
        assert status["coordinator"]["barrier_version"] == 1

        stats = client.stats()
        assert "coordinator" in stats and "workers" in stats, stats.keys()
        assert len(stats["workers"]) == 2
        assert "server" in stats and "service" in stats, \
            "aggregated stats must keep the single-server shape"

        metrics = client.metrics()
        assert "repro_cluster_requests_total" in metrics
        assert 'worker="w0"' in metrics and 'worker="w1"' in metrics
    print("tcp session ok")


def _http_session(port: int) -> None:
    base = f"http://127.0.0.1:{port}"
    health = json.loads(urllib.request.urlopen(base + "/healthz").read())
    assert health["status"] == "ok", health
    stats = json.loads(urllib.request.urlopen(base + "/stats").read())
    assert "coordinator" in stats and "workers" in stats
    cluster = json.loads(urllib.request.urlopen(base + "/cluster").read())
    assert len(cluster["workers"]) == 2, cluster

    request = urllib.request.Request(
        base + "/query",
        data=json.dumps({"sql": SQL, "options": {"seed": 5}}).encode(),
        headers={"Content-Type": "application/json"})
    body = json.loads(urllib.request.urlopen(request).read())
    assert body["type"] == "result" and body["answers"], body
    print("http session ok")


def _observability_session(port: int, http_port: int) -> None:
    from repro.client import ReproClient

    with ReproClient("127.0.0.1", port) as client:
        # One query through the coordinator must yield one stitched
        # cross-process trace: coordinator spans + the owning worker's
        # spans under a single propagated trace id, parent links intact.
        result = client.query(SQL, seed=5)
        trace_id = result.trace_id
        assert trace_id and len(trace_id) == 32, \
            f"coordinator must stamp a trace id on results, got {trace_id!r}"

        stitched = client.trace(trace_id)
        processes = stitched["processes"]
        labels = [group["process"] for group in processes]
        assert len(processes) >= 2, \
            f"trace must stitch coordinator + worker spans, got {labels}"
        assert labels[0].startswith("coordinator"), labels
        assert any(label.startswith("worker:") for label in labels), labels
        spans = {span["span_id"]
                 for group in processes for span in group["spans"]}
        for group in processes:
            for span in group["spans"]:
                parent = span["parent_id"]
                assert not parent or parent in spans, \
                    f"dangling parent link {parent} in {group['process']}"

        export = client.trace_export(trace_id)
        chrome = export["chrome"]
        assert chrome["otherData"]["trace_id"] == trace_id
        assert any(event.get("ph") == "X" for event in chrome["traceEvents"])

        # Fleet metrics history: the coordinator's own ring plus one
        # relabelled ring per worker.
        history = client.history()
        assert history["snapshots"], "coordinator tsdb must have snapshots"
        assert sorted(history["workers"]) == ["w0", "w1"], \
            f"history must aggregate every worker, got {history.keys()}"
        for payload in history["workers"].values():
            newest = payload["snapshots"][-1]["samples"]
            assert any(key.startswith("repro_server_requests_total")
                       for key in newest), newest

        # Alert probe payload structure (smoke asserts shape, not state:
        # a cold CI host can legitimately burn error budget).
        report = client.alerts()
        assert isinstance(report["firing"], bool), report
        states = {(alert["slo"], alert["severity"])
                  for alert in report["alerts"]}
        assert len(states) == len(report["alerts"]) >= 4, states

    # The same surfaces over HTTP, the way dashboards scrape them.
    base = f"http://127.0.0.1:{http_port}"
    history = json.loads(urllib.request.urlopen(base + "/history").read())
    assert history["snapshots"] and "workers" in history
    alerts = json.loads(urllib.request.urlopen(base + "/alerts").read())
    assert "firing" in alerts and "alerts" in alerts
    doc = json.loads(urllib.request.urlopen(
        base + f"/trace?id={trace_id}").read())
    assert doc["otherData"]["trace_id"] == trace_id
    print("observability ok (stitched trace, fleet history, alert probe)")


def _failover_session(port: int) -> None:
    from repro.client import ReproClient

    with ReproClient("127.0.0.1", port, timeout=120.0) as client:
        # Kill the worker that owns the smoke query's family, so the next
        # request genuinely exercises the failover path (not a worker that
        # never saw traffic).
        routed = client.stats()["coordinator"]["routed"]
        owner_id = max(routed, key=routed.get)
        status = client.cluster()
        victim = next(worker for worker in status["workers"]
                      if worker["id"] == owner_id)
        os.kill(victim["pid"], signal.SIGKILL)

        # Queries must keep succeeding throughout: the victim's families
        # fail over to the surviving replica.
        for _ in range(5):
            result = client.query(SQL, seed=5)
            assert result.answers, "queries must survive a worker kill"

        # The supervisor must respawn the victim and replay it the
        # mutation log before it rejoins at the barrier version.
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            status = client.cluster()
            states = {worker["id"]: (worker["state"], worker["data_version"])
                      for worker in status["workers"]}
            if status["coordinator"]["respawns"] >= 1 \
                    and states[victim["id"]] == ("healthy", 1):
                break
            time.sleep(0.3)
        else:
            raise AssertionError(
                f"worker {victim['id']} never rejoined at the barrier "
                f"version: {states}")
        assert status["coordinator"]["worker_deaths"] >= 1
        assert client.query(SQL, seed=5).answers
    print("failover ok (kill, retry, respawn, replay)")


def _rolling_restart(port: int) -> None:
    from repro.client import ReproClient

    with ReproClient("127.0.0.1", port, timeout=300.0) as client:
        payload = client.cluster_drain()
        assert sorted(payload["restarted"]) == ["w0", "w1"], payload
        assert payload["barrier_version"] == 1, payload
        status = client.cluster()
        assert all(worker["state"] == "healthy"
                   and worker["data_version"] == 1
                   for worker in status["workers"]), status
        assert client.query(SQL, seed=5).answers
    print("rolling restart ok")


def main() -> int:
    sys.path.insert(0, SRC)
    with tempfile.TemporaryDirectory() as tmp:
        data_dir = os.path.join(tmp, "data")
        subprocess.run(
            [sys.executable, "-m", "repro.cli", "generate", "--out", data_dir,
             "--products", "30", "--orders", "30", "--markets", "6",
             "--null-rate", "0.2", "--seed", "1"],
            check=True, env=_env(), stdout=subprocess.DEVNULL)
        process, tcp_port, http_port = _spawn_cluster(data_dir)
        try:
            _tcp_session(tcp_port)
            _http_session(http_port)
            _observability_session(tcp_port, http_port)
            _failover_session(tcp_port)
            _rolling_restart(tcp_port)
        finally:
            process.send_signal(signal.SIGTERM)
            stdout, stderr = process.communicate(timeout=120)
        assert process.returncode == 0, \
            f"coordinator exited {process.returncode}; stderr: {stderr}"
        assert "drained" in stdout, f"no clean drain in output: {stdout!r}"
    print("cluster smoke ok: failover + rolling drain, exit 0")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
