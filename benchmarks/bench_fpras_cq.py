"""Theorem 7.1: the multiplicative FPRAS for CQ(+,<) queries.

The paper proves the existence of an FPRAS for conjunctive queries with
linear constraints but evaluates only the additive scheme.  This benchmark
compares the two (and the exact backend, where available) on generated
CQ(+,<) instances: the values must agree within the schemes' guarantees, and
the timing shows the price of the union-of-cones machinery relative to plain
direction sampling.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.certainty import (
    AfprasOptions,
    FprasOptions,
    afpras_measure,
    exact_measure,
    fpras_measure,
)
from repro.certainty.exact import ExactComputationError
from repro.constraints.atoms import Comparison, Constraint
from repro.constraints.formula import And, Atom, Or, disjunction
from repro.constraints.polynomials import Polynomial
from repro.constraints.translate import TranslationResult
from repro.relational.values import NumNull


def random_linear_translation(dimension: int, disjuncts: int, atoms_per_disjunct: int,
                              seed: int) -> TranslationResult:
    """A random DNF of linear constraints over ``dimension`` nulls."""
    generator = np.random.default_rng(seed)
    names = tuple(f"z_n{i}" for i in range(dimension))
    parts = []
    for _ in range(disjuncts):
        atoms = []
        for _ in range(atoms_per_disjunct):
            coefficients = generator.uniform(-1.0, 1.0, size=dimension)
            polynomial = Polynomial.constant(float(generator.uniform(-1.0, 1.0)))
            for name, coefficient in zip(names, coefficients):
                polynomial = polynomial + float(coefficient) * Polynomial.variable(name)
            atoms.append(Atom(Constraint(polynomial, Comparison.LE)))
        parts.append(And(tuple(atoms)))
    formula = disjunction(parts)
    return TranslationResult(
        formula=formula,
        all_variables=names,
        relevant_variables=names,
        null_by_variable={name: NumNull(name.removeprefix("z_")) for name in names},
    )


def test_agreement_table(capsys):
    """FPRAS vs AFPRAS (vs exact in 2-D) on random CQ(+,<) formulae."""
    rows = []
    for dimension, seed in ((2, 0), (2, 1), (3, 2), (4, 3)):
        translation = random_linear_translation(dimension, disjuncts=2,
                                                atoms_per_disjunct=2, seed=seed)
        multiplicative = fpras_measure(translation, FprasOptions(epsilon=0.03), rng=seed)
        additive = afpras_measure(translation, AfprasOptions(epsilon=0.02), rng=seed)
        try:
            reference = exact_measure(translation).value
        except ExactComputationError:
            reference = None
        rows.append((dimension, seed, multiplicative.value, additive.value, reference))
        assert multiplicative.value == pytest.approx(additive.value, abs=0.06)
        if reference is not None:
            assert multiplicative.value == pytest.approx(reference, abs=0.05)
            assert additive.value == pytest.approx(reference, abs=0.04)
    with capsys.disabled():
        print()
        print("CQ(+,<): FPRAS (multiplicative) vs AFPRAS (additive) vs exact")
        print("  dim  seed   FPRAS    AFPRAS   exact")
        for dimension, seed, fpras_value, afpras_value, reference in rows:
            exact_text = f"{reference:.4f}" if reference is not None else "   n/a"
            print(f"  {dimension:3d}  {seed:4d}   {fpras_value:.4f}   "
                  f"{afpras_value:.4f}   {exact_text}")


@pytest.mark.parametrize("engine", ["scalar", "batched"])
@pytest.mark.parametrize("dimension", [2, 3, 5])
def test_fpras_time(benchmark, dimension, engine):
    translation = random_linear_translation(dimension, disjuncts=3,
                                            atoms_per_disjunct=2, seed=dimension)
    benchmark.pedantic(
        lambda: fpras_measure(translation,
                              FprasOptions(epsilon=0.05, engine=engine), rng=0),
        rounds=3, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("dimension", [2, 3, 5])
def test_afpras_time_on_same_input(benchmark, dimension):
    translation = random_linear_translation(dimension, disjuncts=3,
                                            atoms_per_disjunct=2, seed=dimension)
    benchmark.pedantic(
        lambda: afpras_measure(translation, AfprasOptions(epsilon=0.05), rng=0),
        rounds=3, iterations=1, warmup_rounds=1)
