#!/usr/bin/env python
"""Nightly load soak: sustained traffic, zero protocol errors, stable RSS.

Spawns ``repro server`` as a subprocess, loops the seeded loadgen workload
at N concurrent connections for ``--duration`` seconds, samples the server
process's resident set size from ``/proc/<pid>/status`` throughout, then
drains with SIGTERM.  The job fails if

* any request died with a protocol error (transport drop, garbled frame,
  unexpected event) or was rejected under backpressure -- the soak load is
  sized well inside the admission limit, so a rejection is a bug;
* the server's RSS grew past ``first_sample * 1.5 + 32 MiB`` -- the
  caches are bounded LRUs and flights are removed when they land, so
  steady-state traffic must reach a memory plateau;
* SIGTERM did not produce a clean drain and exit code 0.

Usage::

    python benchmarks/server_soak.py --duration 60 --connections 8
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")

#: Allowed RSS growth over the first sample: half again plus slack for
#: caches that legitimately fill early (compile memo, plan cache).
RSS_GROWTH_FACTOR = 1.5
RSS_GROWTH_SLACK_KB = 32 * 1024


def _rss_kb(pid: int) -> int:
    with open(f"/proc/{pid}/status") as status:
        for line in status:
            if line.startswith("VmRSS:"):
                return int(line.split()[1])
    raise RuntimeError(f"no VmRSS for pid {pid}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=60.0)
    parser.add_argument("--connections", type=int, default=8)
    parser.add_argument("--requests", type=int, default=120,
                        help="workload size per soak round")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    sys.path.insert(0, SRC)
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    from loadgen import LoadReport, build_workload, run_load

    workload = build_workload(args.seed, args.requests)
    with tempfile.TemporaryDirectory() as tmp:
        data_dir = os.path.join(tmp, "data")
        env = {**os.environ, "PYTHONPATH": SRC}
        subprocess.run(
            [sys.executable, "-m", "repro.cli", "generate", "--out", data_dir,
             "--products", "120", "--orders", "120", "--markets", "12",
             "--null-rate", "0.15", "--seed", "7"],
            check=True, env=env, stdout=subprocess.DEVNULL)
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "server", "--data", data_dir,
             "--port", "0", "--no-http", "--seed", "0",
             "--backend", "columnar", "--workers", str(args.connections)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env)
        announce = process.stdout.readline().strip()
        assert announce.startswith("listening tcp="), announce
        port = int(announce.split()[1].rsplit(":", 1)[1])

        total = LoadReport(connections=args.connections, requests=0,
                           wall_seconds=0.0)
        rss_samples: list[int] = []
        deadline = time.monotonic() + args.duration
        rounds = 0
        while time.monotonic() < deadline:
            report = run_load("127.0.0.1", port, workload, args.connections)
            total.requests += report.requests
            total.wall_seconds += report.wall_seconds
            total.latencies.extend(report.latencies)
            total.rejected += report.rejected
            total.protocol_errors += report.protocol_errors
            rss_samples.append(_rss_kb(process.pid))
            rounds += 1

        process.send_signal(signal.SIGTERM)
        stdout, stderr = process.communicate(timeout=60)

    summary = total.as_dict()
    summary.update({
        "rounds": rounds,
        "rss_first_kb": rss_samples[0],
        "rss_last_kb": rss_samples[-1],
        "rss_peak_kb": max(rss_samples),
        "exit_code": process.returncode,
        "drained": "drained" in stdout,
    })
    print(json.dumps(summary, indent=2))

    failures = []
    if total.protocol_errors:
        failures.append(f"{total.protocol_errors} protocol errors")
    if total.rejected:
        failures.append(f"{total.rejected} rejected requests")
    rss_limit = rss_samples[0] * RSS_GROWTH_FACTOR + RSS_GROWTH_SLACK_KB
    if max(rss_samples) > rss_limit:
        failures.append(f"RSS grew from {rss_samples[0]} kB to "
                        f"{max(rss_samples)} kB (limit {rss_limit:.0f} kB)")
    if process.returncode != 0 or "drained" not in stdout:
        failures.append(f"unclean shutdown (exit {process.returncode}, "
                        f"stderr: {stderr.strip()!r})")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
