#!/usr/bin/env python
"""CI perf-regression gate: fresh bench run vs. the committed trajectory.

The ``BENCH_PR*.json`` files committed at the repository root record the
perf story each PR bought -- kernel batching (PR 1), service caching
(PR 2), the columnar join engine (PR 3), sharded process-parallel
execution (PR 4).  Nothing used to *enforce* that trajectory: a PR could
quietly hand a headline win back.  This gate compares a freshly measured
bench JSON against the most recent committed baseline and fails when any
shared headline scenario regresses by more than ``--tolerance`` (20% by
default).

Headlines are compared by their **speedup ratios**, not wall-clock
seconds: a ratio divides out the machine, so a laptop, a CI runner and the
box that produced the committed baseline all gate against the same
quantity.  Entries marked ``"enforced": false`` by the bench (e.g. the
sharded headline on a host with fewer than 4 cores, where process
parallelism cannot show itself) are reported but never gate, on either
side of the comparison.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py --quick --output fresh.json
    python benchmarks/check_regression.py --fresh fresh.json
    python benchmarks/check_regression.py --fresh fresh.json \
        --baseline BENCH_PR3.json --tolerance 0.1
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Baseline keys that carry a gated scenario: ``headline`` (the PR 1
#: kernel scenario) plus every ``*_headline`` sibling later PRs added.
_HEADLINE_PATTERN = re.compile(r"^(headline|[a-z0-9_]+_headline)$")


def latest_baseline(root: Path = REPO_ROOT) -> Path:
    """The highest-numbered committed ``BENCH_PR<N>.json``."""
    candidates = []
    for path in root.glob("BENCH_PR*.json"):
        match = re.fullmatch(r"BENCH_PR(\d+)\.json", path.name)
        if match:
            candidates.append((int(match.group(1)), path))
    if not candidates:
        raise SystemExit(f"no BENCH_PR*.json baseline found under {root}")
    return max(candidates)[1]


def headline_speedups(baseline: dict) -> dict[str, dict]:
    """Every gated scenario of a bench JSON: ``name -> headline entry``."""
    return {
        key: value
        for key, value in baseline.items()
        if _HEADLINE_PATTERN.match(key)
        and isinstance(value, dict) and "speedup" in value
    }


def compare(fresh: dict, baseline: dict, tolerance: float) -> list[str]:
    """Human-readable failure lines; empty means the gate passes."""
    failures: list[str] = []
    fresh_headlines = headline_speedups(fresh)
    baseline_headlines = headline_speedups(baseline)
    shared = sorted(set(fresh_headlines) & set(baseline_headlines))
    if not shared:
        failures.append("no shared headline scenarios between the two runs; "
                        "the gate cannot vouch for anything")
        return failures
    for name in shared:
        fresh_entry = fresh_headlines[name]
        baseline_entry = baseline_headlines[name]
        fresh_speedup = float(fresh_entry["speedup"])
        baseline_speedup = float(baseline_entry["speedup"])
        floor = baseline_speedup * (1.0 - tolerance)
        enforced = fresh_entry.get("enforced", True) and \
            baseline_entry.get("enforced", True)
        verdict = "ok" if fresh_speedup >= floor else "REGRESSED"
        if not enforced:
            verdict = "skipped (not enforced on this host)"
        print(f"{name:<20} baseline {baseline_speedup:8.2f}x   "
              f"fresh {fresh_speedup:8.2f}x   floor {floor:8.2f}x   {verdict}")
        if enforced and fresh_speedup < floor:
            failures.append(
                f"{name}: {fresh_speedup:.2f}x is below the regression floor "
                f"{floor:.2f}x (baseline {baseline_speedup:.2f}x, "
                f"tolerance {tolerance:.0%})")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh", type=Path, required=True,
                        help="bench JSON produced by this run")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="committed baseline to gate against "
                             "(default: the latest BENCH_PR*.json)")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional headline slowdown "
                             "(default 0.2 = 20%%)")
    args = parser.parse_args()
    if not 0.0 <= args.tolerance < 1.0:
        raise SystemExit(f"--tolerance must be in [0, 1), got {args.tolerance}")

    baseline_path = args.baseline if args.baseline is not None else latest_baseline()
    fresh = json.loads(args.fresh.read_text())
    baseline = json.loads(baseline_path.read_text())
    print(f"gating {args.fresh} against {baseline_path} "
          f"(tolerance {args.tolerance:.0%})")
    failures = compare(fresh, baseline, args.tolerance)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("perf-regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
