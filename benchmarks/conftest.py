"""Shared configuration for the benchmark suite."""

from __future__ import annotations

import sys
from pathlib import Path

# The benchmark modules import helpers from this directory (figure1_common);
# make sure it is importable regardless of how pytest was invoked.
sys.path.insert(0, str(Path(__file__).resolve().parent))
