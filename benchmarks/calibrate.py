#!/usr/bin/env python
"""Measure the planner's cost-model coefficients on this machine.

The cost-based planner (:mod:`repro.service.planner`) ships conservative
built-in coefficients; this script replaces them with *measured* values --
per-row enumeration costs of both engines, the fixed columnar and
per-shard overheads, the fixed cost of one compiled-kernel launch, the
marginal per-sample and per-fused-group costs, and the dispatch overheads
of the two executors -- and writes them to ``benchmarks/calibration.json``,
where :meth:`CostModel.load` finds them (or any path named by
``$REPRO_CALIBRATION``).

Every key written matches a ``DEFAULT_COEFFICIENTS`` key by name, so a
partial or interrupted calibration still merges cleanly over the
defaults.  Measured values are floored at a tiny positive epsilon: a
coefficient of zero would make the planner blind to that cost.

Usage::

    PYTHONPATH=src python benchmarks/calibrate.py              # full run
    PYTHONPATH=src python benchmarks/calibrate.py --quick      # coarse run
    PYTHONPATH=src python benchmarks/calibrate.py --output /tmp/cal.json
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.constraints.atoms import Comparison, Constraint
from repro.constraints.formula import And, Atom
from repro.constraints.polynomials import Polynomial
from repro.constraints.translate import TranslationResult
from repro.datagen.generic import ColumnSpec, TableSpec, generate_database
from repro.engine.candidates import enumerate_candidates
from repro.engine.sql.parser import parse_sql
from repro.geometry.montecarlo import hoeffding_sample_size
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.values import NumNull
from repro.service import canonicalise, process_map, run_tasks
from repro.service.fused import FusedTask, decide_fused_batch
from repro.service.planner import DEFAULT_COEFFICIENTS
from repro.service.rng import root_sequence

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "calibration.json"

#: Coefficients are floored here: zero would blind the planner to a cost.
FLOOR = 1e-9

#: The union-bound failure budget every measurement samples at.
DELTA = 0.05


def _best_of(callable_, repeats: int) -> float:
    """Minimum wall-clock of ``repeats`` runs after one warm-up."""
    callable_()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _identity(payload):
    """Module-level no-op for the process-pool dispatch measurement."""
    return payload


def _enumeration_database(rows: int):
    schema = DatabaseSchema.of(RelationSchema.of("T0", key="base", x0="num"))
    specs = {"T0": TableSpec(rows=rows, columns={
        "key": ColumnSpec(choices=("a", "b", "c", "d")),
        "x0": ColumnSpec(uniform=(-1.0, 1.0), null_rate=0.05),
    })}
    return generate_database(schema, specs, rng=17)


def _scaled_translation(index: int) -> TranslationResult:
    """A dim-1 linear lineage with its own constant (its own skeleton)."""
    name = f"z_cal{index}"
    poly = (Polynomial.variable(name) * (1.0 + index * 0.001)
            - Polynomial.constant(1.0))
    return TranslationResult(
        formula=Atom(Constraint(poly, Comparison.LE)),
        all_variables=(name,),
        relevant_variables=(name,),
        null_by_variable={name: NumNull(f"cal{index}")},
    )


def _chain_translation(dimension: int) -> TranslationResult:
    names = tuple(f"z_chain{i}" for i in range(dimension))
    atoms = tuple(
        Atom(Constraint(
            Polynomial.variable(names[i]) - Polynomial.variable(names[i + 1]),
            Comparison.LT))
        for i in range(dimension - 1))
    return TranslationResult(
        formula=And(atoms),
        all_variables=names,
        relevant_variables=names,
        null_by_variable={name: NumNull(name.removeprefix("z_"))
                          for name in names},
    )


def _task(translation: TranslationResult, index: int) -> FusedTask:
    digest = canonicalise(translation.formula,
                          tuple(translation.relevant_variables)).digest
    return FusedTask(translation=translation, digest=digest,
                     replica=(index,))


def _decide(tasks, epsilon: float) -> None:
    decide_fused_batch(tasks, epsilon=epsilon, delta=DELTA, adaptive=False,
                       root=root_sequence(0), coarse=0.5, factor=2.0)


def calibrate(quick: bool) -> dict[str, float]:
    repeats = 2 if quick else 4
    measured: dict[str, float] = {}

    # -- enumeration: per-row costs and fixed overheads ---------------------
    small_rows = 5_000 if quick else 20_000
    big_rows = 20_000 if quick else 120_000
    select = parse_sql("SELECT A.key FROM T0 A WHERE A.x0 <= 0.5")
    small = _enumeration_database(small_rows)
    big = _enumeration_database(big_rows)

    rows_seconds = _best_of(
        lambda: enumerate_candidates(select, big), repeats)
    measured["rows_row_cost"] = max(rows_seconds / big_rows, FLOOR)

    small_columnar = small.with_backend("columnar")
    big_columnar = big.with_backend("columnar")
    small_seconds = _best_of(
        lambda: enumerate_candidates(select, small_columnar), repeats)
    big_seconds = _best_of(
        lambda: enumerate_candidates(select, big_columnar), repeats)
    per_row = max((big_seconds - small_seconds) / (big_rows - small_rows),
                  FLOOR)
    measured["columnar_row_cost"] = per_row
    measured["columnar_overhead"] = max(
        small_seconds - per_row * small_rows, FLOOR)

    shards = 4
    sharded_seconds = _best_of(
        lambda: enumerate_candidates(select, big_columnar, shards=shards),
        repeats)
    measured["shard_overhead"] = max(
        (sharded_seconds - measured["columnar_overhead"]
         - per_row * big_rows) / shards,
        FLOOR)

    # -- estimation: sampling, launch, and fused marginal costs -------------
    # A deep estimate makes the launch cost negligible against sampling.
    chain = [_task(_chain_translation(8), 0)]
    deep_epsilon = 0.05 if quick else 0.02
    deep_samples = hoeffding_sample_size(deep_epsilon, DELTA)
    deep_seconds = _best_of(lambda: _decide(chain, deep_epsilon), repeats)
    sample_coeff = max(deep_seconds / (deep_samples * 8), FLOOR)
    measured["sample_coeff"] = sample_coeff

    # Many shallow estimates make the launch cost dominate: one launch per
    # group, a handful of samples each.
    group_count = 128 if quick else 256
    shallow_epsilon = 0.3
    shallow_samples = hoeffding_sample_size(shallow_epsilon, DELTA)
    groups = [_task(_scaled_translation(index), index)
              for index in range(group_count)]
    solo_seconds = _best_of(
        lambda: [_decide([task], shallow_epsilon) for task in groups],
        repeats)
    kernel_launch = max(
        solo_seconds / group_count - shallow_samples * sample_coeff, FLOOR)
    measured["kernel_launch"] = kernel_launch

    # The fused pass pays one launch for the whole batch plus a marginal
    # per-group cost (stream draws, block stacking).
    fused_seconds = _best_of(lambda: _decide(groups, shallow_epsilon),
                             repeats)
    measured["fused_group_coeff"] = max(
        (fused_seconds - kernel_launch
         - group_count * shallow_samples * sample_coeff) / group_count,
        FLOOR)

    # -- executor dispatch overheads ---------------------------------------
    thread_tasks = [lambda: None] * 2_000
    thread_seconds = _best_of(lambda: run_tasks(thread_tasks, jobs=2),
                              repeats)
    measured["thread_task"] = max(thread_seconds / len(thread_tasks), FLOOR)

    payloads = list(range(32 if quick else 64))
    process_seconds = _best_of(
        lambda: process_map(_identity, payloads, jobs=2, chunksize=1),
        repeats)
    measured["process_task"] = max(process_seconds / len(payloads), FLOOR)

    return measured


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads, fewer repeats")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"where to write the JSON (default: "
                             f"{DEFAULT_OUTPUT})")
    args = parser.parse_args()

    measured = calibrate(args.quick)
    missing = set(DEFAULT_COEFFICIENTS) - set(measured)
    if missing:
        raise SystemExit(f"BUG: calibration left coefficients unmeasured: "
                         f"{sorted(missing)}")
    print(f"{'coefficient':<20} {'default':>12} {'measured':>12}")
    for key in DEFAULT_COEFFICIENTS:
        ratio = measured[key] / DEFAULT_COEFFICIENTS[key]
        print(f"{key:<20} {DEFAULT_COEFFICIENTS[key]:>12.3e} "
              f"{measured[key]:>12.3e}   ({ratio:>6.2f}x default)")
    args.output.write_text(json.dumps(measured, indent=2, sort_keys=True)
                           + "\n")
    print(f"\ncalibration written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
