"""Figure 1, middle panel: AFPRAS runtime vs epsilon for *Never Knowingly Undersold*.

Paper query (with the join predicate restored, see EXPERIMENTS.md)::

    SELECT P.id FROM Products P, Orders O, Market M
    WHERE P.seg = M.seg AND O.pr = P.id
      AND P.rrp * P.dis * (O.dis / O.q) <= 0.5 * M.rrp * M.dis LIMIT 25
"""

from __future__ import annotations

import pytest

from figure1_common import (
    BENCHMARK_EPSILONS,
    annotate_candidates,
    bench_candidates,
    figure1_series,
    print_series,
)

QUERY = "never_knowingly_undersold"


@pytest.mark.parametrize("epsilon", BENCHMARK_EPSILONS)
def test_afpras_annotation_time(benchmark, epsilon):
    """Timed AFPRAS pass over the query's candidates at one error level."""
    bench_candidates(QUERY)
    benchmark.pedantic(annotate_candidates, args=(QUERY, epsilon),
                       rounds=3, iterations=1, warmup_rounds=1)


def test_print_full_series(capsys):
    """Regenerate and print the full 19-point series of the paper's figure."""
    series = figure1_series(QUERY)
    with capsys.disabled():
        print_series(QUERY, series)
    assert series[0].seconds >= series[-1].seconds * 0.8
