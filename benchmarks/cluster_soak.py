#!/usr/bin/env python
"""Nightly cluster soak: mixed traffic over 3 workers with a mid-run kill.

Spawns ``repro cluster start --workers 3`` as a subprocess and loops a
seeded **mixed** workload (reads plus a slice of INSERTs; every round
gets a fresh id tag so replays never conflict) at N concurrent
connections for ``--duration`` seconds.  Halfway through, one worker is
SIGKILLed mid-traffic -- the coordinator must fail its families over to
live replicas while the supervisor respawns it and replays the mutation
log.  The job fails if

* any request was lost or duplicated: every request must come back as
  exactly one completed response (zero protocol errors, zero
  backpressure rejections -- the coordinator absorbs worker deaths, so a
  client-visible failure is a bug);
* the killed worker was not respawned back to ``healthy`` at the fleet's
  barrier version, or the fleet's versions diverged;
* the coordinator's RSS grew past ``first_sample * 1.5 + 32 MiB`` --
  flights and the connection pools are bounded, so steady-state traffic
  must reach a memory plateau;
* SIGTERM did not produce a clean drain and exit code 0.

Usage::

    python benchmarks/cluster_soak.py --duration 60 --workers 3
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")

RSS_GROWTH_FACTOR = 1.5
RSS_GROWTH_SLACK_KB = 32 * 1024


def _rss_kb(pid: int) -> int:
    with open(f"/proc/{pid}/status") as status:
        for line in status:
            if line.startswith("VmRSS:"):
                return int(line.split()[1])
    raise RuntimeError(f"no VmRSS for pid {pid}")


def _kill_one_worker(port: int, killed: dict) -> None:
    """SIGKILL the busiest worker mid-traffic (runs on a timer thread)."""
    from repro.client import ReproClient

    try:
        with ReproClient("127.0.0.1", port, timeout=30.0) as client:
            routed = client.stats()["coordinator"]["routed"]
            owner_id = max(routed, key=routed.get)
            status = client.cluster()
            victim = next(worker for worker in status["workers"]
                          if worker["id"] == owner_id)
            os.kill(victim["pid"], signal.SIGKILL)
            killed["id"] = victim["id"]
    except Exception as error:  # surfaced as a gate failure at the end
        killed["error"] = repr(error)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=60.0)
    parser.add_argument("--workers", type=int, default=3)
    parser.add_argument("--connections", type=int, default=6)
    parser.add_argument("--requests", type=int, default=120,
                        help="workload size per soak round")
    parser.add_argument("--mutation-share", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    sys.path.insert(0, SRC)
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    from loadgen import LoadReport, build_workload, run_load

    from repro.client import ReproClient

    with tempfile.TemporaryDirectory() as tmp:
        data_dir = os.path.join(tmp, "data")
        env = {**os.environ, "PYTHONPATH": SRC}
        subprocess.run(
            [sys.executable, "-m", "repro.cli", "generate", "--out", data_dir,
             "--products", "120", "--orders", "120", "--markets", "12",
             "--null-rate", "0.15", "--seed", "7"],
            check=True, env=env, stdout=subprocess.DEVNULL)
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "cluster", "start",
             "--data", data_dir, "--workers", str(args.workers),
             "--port", "0", "--no-http", "--seed", "0",
             "--backend", "columnar", "--health-interval", "0.5"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env)
        announce = process.stdout.readline().strip()
        assert announce.startswith("listening tcp="), announce
        port = int(announce.split()[1].rsplit(":", 1)[1])

        killed: dict = {}
        killer = threading.Timer(args.duration / 2,
                                 _kill_one_worker, args=(port, killed))
        killer.daemon = True
        killer.start()

        total = LoadReport(connections=args.connections, requests=0,
                           wall_seconds=0.0)
        rss_samples: list[int] = []
        deadline = time.monotonic() + args.duration
        rounds = 0
        while time.monotonic() < deadline:
            workload = build_workload(args.seed, args.requests,
                                      mutation_share=args.mutation_share,
                                      tag=rounds)
            report = run_load("127.0.0.1", port, workload, args.connections)
            total.requests += report.requests
            total.wall_seconds += report.wall_seconds
            total.latencies.extend(report.latencies)
            total.rejected += report.rejected
            total.protocol_errors += report.protocol_errors
            rss_samples.append(_rss_kb(process.pid))
            rounds += 1
        killer.cancel()

        # Post-soak fleet audit: the killed worker must be back, every
        # worker at the same (barrier) data version.
        fleet: dict = {}
        try:
            with ReproClient("127.0.0.1", port, timeout=60.0) as client:
                deadline = time.monotonic() + 60.0
                while time.monotonic() < deadline:
                    status = client.cluster()
                    coordinator = status["coordinator"]
                    states = {worker["id"]: worker["state"]
                              for worker in status["workers"]}
                    versions = {worker["id"]: worker["data_version"]
                                for worker in status["workers"]}
                    fleet = {"states": states, "versions": versions,
                             "respawns": coordinator["respawns"],
                             "barrier_version":
                                 coordinator["barrier_version"]}
                    if all(state == "healthy" for state in states.values()) \
                            and len(set(versions.values())) == 1:
                        break
                    time.sleep(0.5)
        except Exception as error:
            fleet = {"error": repr(error)}

        process.send_signal(signal.SIGTERM)
        stdout, stderr = process.communicate(timeout=120)

    summary = total.as_dict()
    summary.update({
        "rounds": rounds,
        "killed_worker": killed,
        "fleet": fleet,
        "rss_first_kb": rss_samples[0],
        "rss_last_kb": rss_samples[-1],
        "rss_peak_kb": max(rss_samples),
        "exit_code": process.returncode,
        "drained": "drained" in stdout,
    })
    print(json.dumps(summary, indent=2))

    failures = []
    if total.protocol_errors:
        failures.append(f"{total.protocol_errors} protocol errors")
    if total.rejected:
        failures.append(f"{total.rejected} rejected requests")
    if total.completed != total.requests:
        failures.append(f"lost/duplicated requests: {total.completed} "
                        f"completed of {total.requests}")
    if "id" not in killed:
        failures.append(f"mid-run worker kill never happened: {killed}")
    if fleet.get("error") or not fleet.get("states"):
        failures.append(f"fleet audit failed: {fleet}")
    else:
        if fleet["respawns"] < 1:
            failures.append("killed worker was never respawned")
        if any(state != "healthy" for state in fleet["states"].values()):
            failures.append(f"fleet not healthy after soak: {fleet['states']}")
        if len(set(fleet["versions"].values())) != 1:
            failures.append(f"fleet versions diverged: {fleet['versions']}")
    rss_limit = rss_samples[0] * RSS_GROWTH_FACTOR + RSS_GROWTH_SLACK_KB
    if max(rss_samples) > rss_limit:
        failures.append(f"RSS grew from {rss_samples[0]} kB to "
                        f"{max(rss_samples)} kB (limit {rss_limit:.0f} kB)")
    if process.returncode != 0 or "drained" not in stdout:
        failures.append(f"unclean shutdown (exit {process.returncode}, "
                        f"stderr: {stderr.strip()!r})")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
